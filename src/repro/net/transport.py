"""Live BGP transport: asyncio TCP speaker driving the RFC 4271 FSM.

The simulator (:mod:`repro.sim`) bypasses session establishment; this
module provides the real thing — TCP connections carrying actual BGP
wire messages through :class:`repro.bgp.fsm.SessionFsm` — so two
daemons (or a daemon and any external BGP speaker) can interoperate
over sockets.  Used by the interop integration tests and the
``live_session`` example.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from ..bgp.constants import MessageType
from ..bgp.fsm import Action, FsmEvent, FsmState, SessionFsm
from ..bgp.messages import (
    BgpMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    split_stream,
)
from ..bgp.prefix import format_ipv4, parse_ipv4

__all__ = ["BgpSession", "BgpSpeaker"]


class BgpSession:
    """One TCP connection run through the session FSM."""

    def __init__(
        self,
        speaker: "BgpSpeaker",
        peer_name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.speaker = speaker
        self.peer_name = peer_name
        self.reader = reader
        self.writer = writer
        daemon = speaker.daemon
        self.fsm = SessionFsm(
            daemon.asn, daemon.router_id, hold_time=speaker.hold_time
        )
        self.established = asyncio.Event()
        self.closed = asyncio.Event()
        self._keepalive_task: Optional[asyncio.Task] = None

    # -- plumbing ------------------------------------------------------

    def _send(self, message: BgpMessage) -> None:
        self.writer.write(message.encode())

    def send_raw(self, data: bytes) -> None:
        """Raw bytes from the daemon (already wire format)."""
        if not self.writer.is_closing():
            self.writer.write(data)

    def _apply(self, actions) -> None:
        for action, payload in actions:
            if action in (Action.SEND_OPEN, Action.SEND_KEEPALIVE, Action.SEND_NOTIFICATION):
                self._send(payload)
            elif action == Action.SESSION_ESTABLISHED:
                self.speaker.daemon.session_up(self.peer_name)
                self.established.set()
                self._keepalive_task = asyncio.get_event_loop().create_task(
                    self._keepalive_loop()
                )
            elif action == Action.SESSION_DOWN:
                self.speaker.daemon.session_down(self.peer_name)
                self.closed.set()
            elif action == Action.DELIVER_UPDATE:
                self.speaker.daemon.receive_message(self.peer_name, payload)

    async def _keepalive_loop(self) -> None:
        interval = max(1.0, self.fsm.negotiated_hold_time / 3.0)
        try:
            while self.fsm.state == FsmState.ESTABLISHED:
                await asyncio.sleep(interval)
                self._apply(self.fsm.process(FsmEvent.KEEPALIVE_TIMER_EXPIRES))
                await self.writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            pass

    # -- lifecycle ----------------------------------------------------------

    async def run(self, initiate: bool) -> None:
        """Drive the session until it closes.

        ``initiate`` — we are the active opener (send OPEN first).
        """
        fsm = self.fsm
        fsm.process(FsmEvent.MANUAL_START)
        if initiate:
            self._apply(fsm.process(FsmEvent.TCP_CONNECTED))
        else:
            # Passive open: the FSM still moves through Connect.
            self._apply(fsm.process(FsmEvent.TCP_CONNECTED))
        await self.writer.drain()

        buffer = bytearray()
        try:
            while not self.closed.is_set():
                data = await self.reader.read(65536)
                if not data:
                    self._apply(fsm.process(FsmEvent.TCP_FAILED))
                    break
                buffer.extend(data)
                for message in split_stream(buffer):
                    self._apply(fsm.process(FsmEvent.MESSAGE_RECEIVED, message))
                await self.writer.drain()
        except ConnectionError:
            self._apply(fsm.process(FsmEvent.TCP_FAILED))
        finally:
            if self._keepalive_task is not None:
                self._keepalive_task.cancel()
            self.closed.set()
            if not self.writer.is_closing():
                self.writer.close()

    async def stop(self) -> None:
        self._apply(self.fsm.process(FsmEvent.MANUAL_STOP))
        try:
            await self.writer.drain()
        except ConnectionError:
            pass
        self.closed.set()
        if not self.writer.is_closing():
            self.writer.close()


class BgpSpeaker:
    """TCP front end for one daemon: listens and/or dials peers.

    The daemon's neighbors must be configured with
    :meth:`register_neighbor` (which wires ``send_fn`` into the live
    session) before sessions come up.
    """

    def __init__(self, daemon, host: str = "127.0.0.1", port: int = 1790, hold_time: int = 90):
        self.daemon = daemon
        self.host = host
        self.port = port
        self.hold_time = hold_time
        self.sessions: Dict[str, BgpSession] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._session_tasks: Dict[str, asyncio.Task] = {}

    def register_neighbor(self, peer_name: str, peer_asn: int) -> None:
        """Configure the daemon-side neighbor; bytes route to the live
        session once one exists."""

        def send(data: bytes) -> None:
            session = self.sessions.get(peer_name)
            if session is not None:
                session.send_raw(data)

        self.daemon.add_neighbor(peer_name, peer_asn, send)

    # -- passive side ------------------------------------------------------

    async def listen(self) -> None:
        self._server = await asyncio.start_server(
            self._on_accept, self.host, self.port
        )

    async def _on_accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        # Identify the peer by the OPEN it sends; until then park the
        # session under its socket address.
        session = BgpSession(self, peer_name="", reader=reader, writer=writer)
        # Passive open: wait for the peer's OPEN to learn who it is.
        session.fsm.process(FsmEvent.MANUAL_START)
        session._apply(session.fsm.process(FsmEvent.TCP_CONNECTED))
        await writer.drain()
        buffer = bytearray()
        try:
            while not session.closed.is_set():
                data = await reader.read(65536)
                if not data:
                    session._apply(session.fsm.process(FsmEvent.TCP_FAILED))
                    break
                buffer.extend(data)
                for message in split_stream(buffer):
                    if isinstance(message, OpenMessage) and not session.peer_name:
                        session.peer_name = format_ipv4(message.router_id)
                        self.sessions[session.peer_name] = session
                    session._apply(
                        session.fsm.process(FsmEvent.MESSAGE_RECEIVED, message)
                    )
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            session._apply(session.fsm.process(FsmEvent.TCP_FAILED))
        finally:
            session.closed.set()
            if not writer.is_closing():
                writer.close()

    # -- active side ---------------------------------------------------------

    async def connect(self, peer_name: str, host: str, port: int) -> BgpSession:
        """Dial a peer; returns once the session object exists (use
        ``session.established.wait()`` for Established)."""
        reader, writer = await asyncio.open_connection(host, port)
        session = BgpSession(self, peer_name, reader, writer)
        self.sessions[peer_name] = session
        task = asyncio.get_event_loop().create_task(session.run(initiate=True))
        self._session_tasks[peer_name] = task
        return session

    async def close(self) -> None:
        for session in list(self.sessions.values()):
            await session.stop()
        for task in self._session_tasks.values():
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
