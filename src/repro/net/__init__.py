"""Live asyncio TCP transport speaking RFC 4271 wire format."""

from .transport import BgpSession, BgpSpeaker

__all__ = ["BgpSession", "BgpSpeaker"]
