"""Embedded datasets (offline substitutes for external sources)."""

from .bgp_rfcs import BGP_RFCS, BgpRfc, delay_years

__all__ = ["BGP_RFCS", "BgpRfc", "delay_years"]
