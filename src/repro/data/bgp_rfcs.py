"""Fig. 1 dataset: standardization delay of the last 40 BGP RFCs.

The paper plots, for the 40 most recent BGP-related RFCs (as of 2020),
the delay between the publication of the *first IETF draft* and the
published RFC, reporting a median of 3.5 years and a tail reaching ten
years.  Offline we cannot query the IETF datatracker, so this module
embeds a curated snapshot: RFC number, title, first-draft date and
publication date, month precision, assembled from the datatracker
history of the IDR/SIDR/GROW working groups.  Dates are approximate to
the month; the CDF shape (median ≈ 3.5 y, max ≈ 10 y) is the
reproduction target, per DESIGN.md's substitution table.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

__all__ = ["BgpRfc", "BGP_RFCS", "delay_years"]


class BgpRfc(NamedTuple):
    number: int
    title: str
    first_draft: str  # YYYY-MM
    published: str  # YYYY-MM


#: The 40 most recent BGP-related RFCs preceding the paper (mid-2020),
#: newest first.
BGP_RFCS: List[BgpRfc] = [
    BgpRfc(8810, "Revision of BGP Communities Attribute Registry", "2019-10", "2020-08"),
    BgpRfc(8671, "Support for Adj-RIB-Out in BMP", "2016-11", "2019-11"),
    BgpRfc(8669, "Segment Routing Prefix SID Extensions for BGP", "2014-10", "2019-12"),
    BgpRfc(8654, "Extended Message Support for BGP", "2011-08", "2019-10"),
    BgpRfc(8538, "NOTIFICATION Support for BGP Graceful Restart", "2014-03", "2019-03"),
    BgpRfc(8503, "BGP/MPLS Layer 3 VPN Multicast Management Information Base", "2010-03", "2018-12"),
    BgpRfc(8388, "Usage and Applicability of BGP MPLS-Based Ethernet VPN", "2014-10", "2018-12"),
    BgpRfc(8326, "Graceful BGP Session Shutdown", "2014-07", "2018-03"),
    BgpRfc(8277, "Using BGP to Bind MPLS Labels to Address Prefixes", "2016-04", "2017-10"),
    BgpRfc(8212, "Default External BGP (EBGP) Route Propagation Behavior", "2015-10", "2017-07"),
    BgpRfc(8205, "BGPsec Protocol Specification", "2011-07", "2017-09"),
    BgpRfc(8203, "BGP Administrative Shutdown Communication", "2016-06", "2017-07"),
    BgpRfc(8097, "BGP Prefix Origin Validation State Extended Community", "2011-11", "2017-03"),
    BgpRfc(8092, "BGP Large Communities Attribute", "2016-06", "2017-02"),
    BgpRfc(7999, "BLACKHOLE Community", "2015-10", "2016-10"),
    BgpRfc(7964, "Solutions for BGP Persistent Route Oscillation", "2011-01", "2016-09"),
    BgpRfc(7947, "Internet Exchange BGP Route Server", "2012-10", "2016-09"),
    BgpRfc(7911, "Advertisement of Multiple Paths in BGP", "2010-08", "2016-07"),
    BgpRfc(7854, "BGP Monitoring Protocol (BMP)", "2005-08", "2016-06"),
    BgpRfc(7705, "Autonomous System Migration Mechanisms for BGP", "2014-01", "2015-11"),
    BgpRfc(7607, "Codification of AS 0 Processing", "2014-08", "2015-08"),
    BgpRfc(7606, "Revised Error Handling for BGP UPDATE Messages", "2010-11", "2015-08"),
    BgpRfc(7313, "Enhanced Route Refresh Capability for BGP-4", "2010-04", "2014-07"),
    BgpRfc(7311, "Accumulated IGP Metric Attribute for BGP", "2010-02", "2014-08"),
    BgpRfc(7300, "Reservation of Last Autonomous System (AS) Numbers", "2013-08", "2014-07"),
    BgpRfc(7196, "Making Route Flap Damping Usable", "2011-07", "2014-05"),
    BgpRfc(7153, "IANA Registries for BGP Extended Communities", "2013-04", "2014-03"),
    BgpRfc(6996, "Autonomous System Reservation for Private Use", "2012-07", "2013-07"),
    BgpRfc(6811, "BGP Prefix Origin Validation", "2011-02", "2013-01"),
    BgpRfc(6810, "The RPKI to Router Protocol", "2011-02", "2013-01"),
    BgpRfc(6793, "BGP Support for Four-Octet AS Number Space", "2002-12", "2012-12"),
    BgpRfc(6774, "Distribution of Diverse BGP Paths", "2010-10", "2012-11"),
    BgpRfc(6472, "Recommendation for Not Using AS_SET and AS_CONFED_SET", "2010-07", "2011-12"),
    BgpRfc(6396, "MRT Routing Information Export Format", "2002-06", "2011-10"),
    BgpRfc(6368, "Internal BGP as the PE-CE Protocol", "2006-10", "2011-09"),
    BgpRfc(6286, "AS-Wide Unique BGP Identifier for BGP-4", "2003-12", "2011-06"),
    BgpRfc(5668, "4-Octet AS Specific BGP Extended Community", "2008-03", "2009-10"),
    BgpRfc(5575, "Dissemination of Flow Specification Rules", "2004-07", "2009-08"),
    BgpRfc(5492, "Capabilities Advertisement with BGP-4", "2006-10", "2009-02"),
    BgpRfc(5291, "Outbound Route Filtering Capability for BGP-4", "2001-06", "2008-08"),
]


def _parse(date: str) -> Tuple[int, int]:
    year, month = date.split("-")
    return int(year), int(month)


def delay_years(rfc: BgpRfc) -> float:
    """Draft-to-RFC delay in (fractional) years."""
    draft_year, draft_month = _parse(rfc.first_draft)
    pub_year, pub_month = _parse(rfc.published)
    months = (pub_year - draft_year) * 12 + (pub_month - draft_month)
    if months < 0:
        raise ValueError(f"RFC {rfc.number}: published before first draft")
    return months / 12.0
