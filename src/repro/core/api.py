"""The xBGP API: helper implementations shared by every host.

Each helper pulls the current :class:`ExecutionContext` from the VM it
is servicing and delegates host-specific work to the
:class:`HostImplementation` glue.  All BGP payload bytes cross this
boundary in network byte order (the neutral representation); struct
headers use little-endian fields per the eBPF load convention.
"""

from __future__ import annotations

import math
import struct
from typing import Optional

from ..bgp.prefix import Prefix, PrefixDecodeError
from ..ebpf.helpers import HelperError, HelperTable
from .abi import (
    ARG_MESSAGE,
    ARG_PREFIX,
    ARG_ROUTE_BEST,
    ARG_ROUTE_NEW,
    HELPER_IDS,
    MAP_NO_ENTRY,
    pack_arg,
    pack_nexthop_info,
    pack_peer_info,
)
from .context import ExecutionContext, NextRequested

__all__ = ["build_helper_table"]


def _ctx(vm) -> ExecutionContext:
    # Plain attribute access (VirtualMachine initialises ``ctx`` to
    # None); helpers run a few times per route, so the getattr-with-
    # default form was measurable.
    ctx = vm.ctx
    if ctx is None:
        raise HelperError("helper called outside an insertion point")
    return ctx


def _state(vm):
    state = vm.program_state
    if state is None:
        raise HelperError("extension has no program state")
    return state


#: Pre-built delegation signal.  ``next()`` fires on most runs of a
#: filter-style extension; reusing one exception instance skips the
#: per-raise allocation (the traceback is rewritten on every raise).
_NEXT = NextRequested()


def build_helper_table() -> HelperTable:
    """Build the full xBGP helper table.

    The VMM narrows this to each bytecode's manifest-declared subset
    with :meth:`HelperTable.restricted`.
    """
    table = HelperTable()
    ids = HELPER_IDS

    # -- control flow ---------------------------------------------------

    def helper_next(vm, *args) -> int:
        _ctx(vm).next_requested = True
        raise _NEXT

    # -- argument / peer access ------------------------------------------

    def get_arg(vm, arg_id, *args) -> int:
        ctx = _ctx(vm)
        payload: Optional[bytes] = None
        if arg_id == ARG_MESSAGE:
            payload = ctx.message
        elif arg_id == ARG_PREFIX:
            payload = ctx.prefix.encode() if ctx.prefix is not None else None
        elif arg_id == ARG_ROUTE_NEW and ctx.route is not None:
            payload = ctx.host.encode_route_attributes(ctx, ctx.route)
        elif arg_id == ARG_ROUTE_BEST and ctx.best_route is not None:
            payload = ctx.host.encode_route_attributes(ctx, ctx.best_route)
        if payload is None:
            return 0
        return vm.memory.alloc_bytes(pack_arg(payload))

    def get_peer_info(vm, *args) -> int:
        ctx = _ctx(vm)
        if ctx.neighbor is None:
            return 0
        return vm.memory.alloc_bytes(pack_peer_info(ctx.neighbor, ctx.host.hot_path))

    def get_prefix(vm, *args) -> int:
        ctx = _ctx(vm)
        if ctx.prefix is None:
            return 0
        return vm.memory.alloc_bytes(pack_arg(ctx.prefix.encode()))

    def get_src_peer_info(vm, *args) -> int:
        """Peer info of the neighbor the route in scope was *learned
        from* (on export, ``get_peer_info`` reports the destination)."""
        ctx = _ctx(vm)
        source = getattr(ctx.route, "source", None)
        if source is None:
            source = ctx.hidden.get("source")
        if source is None:
            return 0
        return vm.memory.alloc_bytes(pack_peer_info(source, ctx.host.hot_path))

    # -- attribute access -------------------------------------------------

    def get_attr(vm, code, *args) -> int:
        ctx = _ctx(vm)
        packed = ctx.host.get_attr_packed(ctx, int(code))
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "get_attr", code=int(code), found=packed is not None)
        if packed is None:
            return 0
        return vm.memory.alloc_bytes(packed)

    def set_attr(vm, code, flags, data_ptr, length, *args) -> int:
        ctx = _ctx(vm)
        value = vm.memory.read_bytes(data_ptr, length) if length else b""
        ok = ctx.host.set_attr(ctx, int(code), int(flags), value)
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "set_attr", code=int(code), value=value, ok=ok)
        return 1 if ok else 0

    def add_attr(vm, code, flags, data_ptr, length, *args) -> int:
        ctx = _ctx(vm)
        value = vm.memory.read_bytes(data_ptr, length) if length else b""
        ok = ctx.host.add_attr(ctx, int(code), int(flags), value)
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "add_attr", code=int(code), value=value, ok=ok)
        return 1 if ok else 0

    def remove_attr(vm, code, *args) -> int:
        ctx = _ctx(vm)
        ok = ctx.host.remove_attr(ctx, int(code))
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "remove_attr", code=int(code), ok=ok)
        return 1 if ok else 0

    # -- topology / configuration -------------------------------------------

    def get_nexthop(vm, *args) -> int:
        ctx = _ctx(vm)
        address, metric, reachable = ctx.host.get_nexthop(ctx)
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(
                ctx, "get_nexthop", address=address, metric=metric, reachable=reachable
            )
        return vm.memory.alloc_bytes(pack_nexthop_info(address, metric, reachable))

    def get_xtra(vm, key_ptr, *args) -> int:
        ctx = _ctx(vm)
        key = vm.memory.read_cstring(key_ptr).decode("ascii", "replace")
        value = ctx.host.get_xtra(ctx, key)
        if value is None:
            return 0
        return vm.memory.alloc_bytes(pack_arg(value))

    # -- output ------------------------------------------------------------

    def write_buf(vm, data_ptr, length, *args) -> int:
        ctx = _ctx(vm)
        if ctx.out_buffer is None:
            raise HelperError("write_buf outside BGP_ENCODE_MESSAGE")
        if length:
            ctx.out_buffer.extend(vm.memory.read_bytes(data_ptr, length))
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "write_buf", length=int(length))
        return int(length)

    # -- memory utilities -----------------------------------------------------

    def ebpf_memcpy(vm, dst, src, length, *args) -> int:
        if length:
            vm.memory.write_bytes(dst, vm.memory.read_bytes(src, length))
        return int(dst)

    def ebpf_print(vm, str_ptr, *args) -> int:
        ctx = _ctx(vm)
        text = vm.memory.read_cstring(str_ptr).decode("ascii", "replace")
        ctx.host.log(f"[xbgp] {text}")
        return 0

    def ctx_malloc(vm, size, *args) -> int:
        return vm.memory.alloc(int(size))

    def ctx_shmnew(vm, key, size, *args) -> int:
        return _state(vm).shm_new(int(key), int(size))

    def ctx_shmget(vm, key, *args) -> int:
        return _state(vm).shm_get(int(key))

    # -- RIB -------------------------------------------------------------------

    def rib_announce(vm, prefix_ptr, next_hop, *args) -> int:
        ctx = _ctx(vm)
        header = vm.memory.read_bytes(prefix_ptr, 1)
        nbytes = (header[0] + 7) // 8
        raw = vm.memory.read_bytes(prefix_ptr, 1 + nbytes)
        try:
            prefix, _ = Prefix.decode(raw)
        except PrefixDecodeError as exc:
            raise HelperError(f"rib_announce: {exc}") from exc
        ok = ctx.host.rib_announce(ctx, prefix, int(next_hop))
        prov = ctx.host.provenance
        if prov is not None:
            prov.record_api(ctx, "rib_announce", prefix=str(prefix), ok=ok)
        return 1 if ok else 0

    # -- maps --------------------------------------------------------------------

    def map_new(vm, *args) -> int:
        return _state(vm).map_new()

    def map_update(vm, map_id, key, value, *args) -> int:
        try:
            _state(vm).map_update(int(map_id), int(key), int(value))
        except KeyError as exc:
            raise HelperError(str(exc)) from exc
        return 0

    def map_lookup(vm, map_id, key, *args) -> int:
        try:
            value = _state(vm).map_lookup(int(map_id), int(key))
        except KeyError as exc:
            raise HelperError(str(exc)) from exc
        return MAP_NO_ENTRY if value is None else value

    def map_lookup_idx(vm, map_id, key, index, *args) -> int:
        try:
            value = _state(vm).map_lookup(int(map_id), int(key), int(index))
        except KeyError as exc:
            raise HelperError(str(exc)) from exc
        return MAP_NO_ENTRY if value is None else value

    def map_size(vm, map_id, *args) -> int:
        try:
            return _state(vm).map_size(int(map_id))
        except KeyError as exc:
            raise HelperError(str(exc)) from exc

    # -- arithmetic -----------------------------------------------------------------

    def sqrt64(vm, value, *args) -> int:
        return math.isqrt(int(value))

    table.register(ids["next"], "next", helper_next)
    table.register(ids["get_arg"], "get_arg", get_arg)
    table.register(ids["get_peer_info"], "get_peer_info", get_peer_info)
    table.register(ids["get_attr"], "get_attr", get_attr)
    table.register(ids["set_attr"], "set_attr", set_attr)
    table.register(ids["add_attr"], "add_attr", add_attr)
    table.register(ids["remove_attr"], "remove_attr", remove_attr)
    table.register(ids["get_nexthop"], "get_nexthop", get_nexthop)
    table.register(ids["get_xtra"], "get_xtra", get_xtra)
    table.register(ids["write_buf"], "write_buf", write_buf)
    table.register(ids["ebpf_memcpy"], "ebpf_memcpy", ebpf_memcpy)
    table.register(ids["ebpf_print"], "ebpf_print", ebpf_print)
    table.register(ids["ctx_malloc"], "ctx_malloc", ctx_malloc)
    table.register(ids["ctx_shmnew"], "ctx_shmnew", ctx_shmnew)
    table.register(ids["ctx_shmget"], "ctx_shmget", ctx_shmget)
    table.register(ids["rib_announce"], "rib_announce", rib_announce)
    table.register(ids["get_prefix"], "get_prefix", get_prefix)
    table.register(ids["get_src_peer_info"], "get_src_peer_info", get_src_peer_info)
    table.register(ids["map_new"], "map_new", map_new)
    table.register(ids["map_update"], "map_update", map_update)
    table.register(ids["map_lookup"], "map_lookup", map_lookup)
    table.register(ids["map_lookup_idx"], "map_lookup_idx", map_lookup_idx)
    table.register(ids["map_size"], "map_size", map_size)
    table.register(ids["sqrt64"], "sqrt64", sqrt64)
    return table
