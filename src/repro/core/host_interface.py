"""The contract a BGP implementation fulfils to become xBGP-compliant.

This is the "adding the xBGP API" part of §2.1: each host implements
these operations against *its own* internal data structures, converting
to and from the neutral network-byte-order representation.  The helper
functions in :mod:`repro.core.api` are host-independent; they call into
this interface with the current :class:`ExecutionContext`.

PyFRR's glue (``repro.frr.xbgp_glue``) is bigger than PyBIRD's
(``repro.bird.xbgp_glue``) for the same reasons FRRouting's was bigger
than BIRD's in the paper: FRR-style internals store attributes parsed
into host byte order and lack a generic dynamic-attribute API, so the
glue must translate representations and bolt that API on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

from ..bgp.attributes import PathAttribute
from ..bgp.prefix import Prefix
from .context import ExecutionContext

__all__ = ["HostImplementation"]


class HostImplementation(ABC):
    """Host-side operations backing the xBGP helper functions."""

    #: Implementation name (``"frr"`` / ``"bird"``), used in logs and
    #: in the LoC accounting experiment.
    name: str = "abstract"

    #: Whether the helper layer may use this PR's marshalling caches
    #: (peer-info memo, packed-attribute cache).  Daemons flip it off
    #: for the hot-path ablation's legacy arm; standalone hosts keep
    #: the default.
    hot_path: bool = True

    #: Per-route provenance tracker
    #: (:class:`repro.telemetry.provenance.ProvenanceTracker`), or None
    #: when provenance is off.  Installed by the daemon's
    #: ``enable_provenance``; the VMM and the helper layer record
    #: through it with a single None check per hook site.
    provenance = None

    # -- attribute access (neutral representation in/out) ---------------

    @abstractmethod
    def get_attr(self, ctx: ExecutionContext, code: int) -> Optional[PathAttribute]:
        """Return the attribute ``code`` of the route in scope, or None."""

    @abstractmethod
    def set_attr(
        self, ctx: ExecutionContext, code: int, flags: int, value: bytes
    ) -> bool:
        """Create or replace attribute ``code`` on the route in scope."""

    @abstractmethod
    def add_attr(
        self, ctx: ExecutionContext, code: int, flags: int, value: bytes
    ) -> bool:
        """Attach a new attribute; fails (False) if ``code`` exists.

        This is the operation the paper had to *rewrite host internals*
        for: stock implementations refuse attributes no standard
        defines.  Hosts here must accept arbitrary codes.
        """

    @abstractmethod
    def remove_attr(self, ctx: ExecutionContext, code: int) -> bool:
        """Delete attribute ``code``; False when absent."""

    def get_attr_packed(self, ctx: ExecutionContext, code: int) -> Optional[bytes]:
        """Attribute ``code`` as ready-to-copy ``get_attr`` helper bytes
        (``pack_attr`` header + network-order payload), or None.

        The default builds the struct from :meth:`get_attr` on every
        call; hosts with immutable/interned attribute storage override
        this to memoize the packed bytes on the attribute object so a
        repeat ``get_attr`` on an unchanged attribute is a cache hit.
        """
        from .abi import pack_attr

        attribute = self.get_attr(ctx, code)
        if attribute is None:
            return None
        return pack_attr(attribute.type_code, attribute.flags, attribute.value)

    # -- topology / configuration ------------------------------------------

    @abstractmethod
    def get_nexthop(self, ctx: ExecutionContext) -> Tuple[int, int, bool]:
        """(address, igp_metric, reachable) for the route's next hop."""

    @abstractmethod
    def get_xtra(self, ctx: ExecutionContext, key: str) -> Optional[bytes]:
        """Router-local extra configuration (e.g. GeoLoc coordinates)."""

    # -- RIB access -----------------------------------------------------------

    @abstractmethod
    def rib_announce(
        self, ctx: ExecutionContext, prefix: Prefix, next_hop: int
    ) -> bool:
        """Inject a route into the RIB (uses hidden context arguments)."""

    # -- route serialization ------------------------------------------------

    def encode_route_attributes(self, ctx: ExecutionContext, route) -> bytes:
        """The route's attributes as a wire-format block (neutral form).

        Used by ``get_arg`` at the BGP_DECISION point so bytecode can
        inspect candidate routes without per-attribute helper calls.
        """
        from ..bgp.attributes import encode_attributes

        return encode_attributes(route.attribute_list())

    # -- diagnostics ------------------------------------------------------------

    def log(self, message: str) -> None:
        """Receive ``ebpf_print`` output and VMM error notifications."""
        # Default: keep a bounded in-memory log; daemons override.
