"""Manifests: the deployment unit of an xBGP program.

§2.1: "the VMM is initialized with a manifest containing the extension
bytecodes and the points where they must be inserted.  Different
extension codes can be attached to the same insertion point, and the
manifest defines in which order they are executed.  The manifest also
lists the different xBGP API functions that the bytecode uses."

A manifest here is JSON::

    {
      "name": "geoloc",
      "codes": [
        {"name": "geoloc_receive",
         "insertion_point": "BGP_RECEIVE_MESSAGE",
         "seq": 0,
         "helpers": ["get_peer_info", "get_arg", "add_attr"],
         "source": "u64 run(...) { ... }"},
        {"name": "geoloc_export", ..., "bytecode": "b7000000..."}
      ],
      "maps": {"roa": [[key, value], ...]},
      "constants": {"MAX_METRIC": 50}
    }

Codes carry either xc ``source`` (compiled at load) or hex ``bytecode``
(pre-assembled).  Either way, the loaded program is plain eBPF.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..ebpf.isa import decode_program, encode_program
from ..xc import compile_source
from .abi import HELPER_IDS, PLUGIN_CONSTANTS
from .extension import DEFAULT_SHARED_SIZE, ExtensionCode, XbgpProgram
from .insertion_points import InsertionPoint

__all__ = ["Manifest", "ManifestError"]


class ManifestError(ValueError):
    """Malformed manifest content."""


class Manifest:
    """Parsed manifest, loadable into an :class:`XbgpProgram`."""

    def __init__(
        self,
        name: str,
        codes: List[Dict[str, Any]],
        maps: Optional[Dict[str, List[List[int]]]] = None,
        constants: Optional[Dict[str, int]] = None,
        shared_size: int = DEFAULT_SHARED_SIZE,
    ):
        self.name = name
        self.codes = codes
        self.maps = maps or {}
        self.constants = constants or {}
        self.shared_size = shared_size
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise ManifestError("manifest needs a name")
        if not self.codes:
            raise ManifestError("manifest lists no extension codes")
        seen = set()
        for spec in self.codes:
            for field in ("name", "insertion_point", "helpers"):
                if field not in spec:
                    raise ManifestError(f"code missing {field!r}: {spec}")
            if spec["name"] in seen:
                raise ManifestError(f"duplicate code name {spec['name']!r}")
            seen.add(spec["name"])
            if ("source" in spec) == ("bytecode" in spec):
                raise ManifestError(
                    f"{spec['name']}: exactly one of source/bytecode required"
                )
            try:
                InsertionPoint.parse(spec["insertion_point"])
            except (KeyError, ValueError) as exc:
                raise ManifestError(
                    f"{spec['name']}: bad insertion point "
                    f"{spec['insertion_point']!r}"
                ) from exc
            unknown = [h for h in spec["helpers"] if h not in HELPER_IDS]
            if unknown:
                raise ManifestError(f"{spec['name']}: unknown helpers {unknown}")

    # -- (de)serialization -------------------------------------------------

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ManifestError("manifest must be a JSON object")
        return cls(
            name=data.get("name", ""),
            codes=data.get("codes", []),
            maps=data.get("maps"),
            constants=data.get("constants"),
            shared_size=data.get("shared_size", DEFAULT_SHARED_SIZE),
        )

    @classmethod
    def from_file(cls, path: str) -> "Manifest":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "codes": self.codes,
                "maps": self.maps,
                "constants": self.constants,
                "shared_size": self.shared_size,
            },
            indent=2,
        )

    # -- loading ---------------------------------------------------------------

    def load(self) -> XbgpProgram:
        """Compile/decode every code and build the :class:`XbgpProgram`."""
        map_data = {
            name: _entries_to_map(name, entries)
            for name, entries in self.maps.items()
        }
        program = XbgpProgram(
            self.name, [], map_data=map_data, shared_size=self.shared_size
        )
        compile_constants = dict(PLUGIN_CONSTANTS)
        compile_constants.update(program.map_constants())
        compile_constants.update(self.constants)
        codes = []
        for spec in self.codes:
            point = InsertionPoint.parse(spec["insertion_point"])
            from_source = "source" in spec
            if from_source:
                instructions = compile_source(
                    spec["source"], HELPER_IDS, compile_constants
                )
            else:
                try:
                    instructions = decode_program(bytes.fromhex(spec["bytecode"]))
                except ValueError as exc:
                    raise ManifestError(f"{spec['name']}: bad bytecode: {exc}") from exc
            codes.append(
                ExtensionCode(
                    spec["name"],
                    instructions,
                    spec["helpers"],
                    point,
                    seq=spec.get("seq", 0),
                    # xc-compiled code follows the segregated frame
                    # layout; raw bytecode gets the conservative JIT.
                    layout_hint=from_source,
                )
            )
        program.codes = codes
        return program


def _entries_to_map(name: str, entries) -> Dict[int, List[int]]:
    table: Dict[int, List[int]] = {}
    for entry in entries:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ManifestError(f"map {name!r}: entries must be [key, value] pairs")
        key, value = int(entry[0]), int(entry[1])
        table.setdefault(key, []).append(value)
    return table
