"""Extension codes, xBGP programs and their shared state.

An *extension code* is one bytecode blob attached to one insertion
point.  An *xBGP program* is a named group of extension codes that
together implement a feature (the GeoLoc program of Fig. 2 has four
codes on four insertion points).  Codes of the same program share a
persistent memory space and a set of maps; codes of different programs
are fully isolated from one another.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence

from ..ebpf.isa import Instruction
from ..ebpf.memory import MemoryRegion, SandboxViolation
from .insertion_points import InsertionPoint

__all__ = [
    "ExtensionCode",
    "NativeExtensionCode",
    "XbgpProgram",
    "ProgramState",
    "SHARED_BASE",
    "DEFAULT_SHARED_SIZE",
]

SHARED_BASE = 0x4000_0000
DEFAULT_SHARED_SIZE = 1 << 16


class ExtensionCode:
    """One eBPF bytecode blob plus its attachment metadata.

    ``layout_hint`` asserts the bytecode follows the xc frame
    convention (scalars/blocks segregated) — compiler-provided metadata
    the JIT may trust, in the spirit of BTF.  Raw hand-written bytecode
    should leave it False.
    """

    __slots__ = (
        "name",
        "instructions",
        "helper_names",
        "insertion_point",
        "seq",
        "layout_hint",
    )

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        helper_names: Sequence[str],
        insertion_point: InsertionPoint,
        seq: int = 0,
        layout_hint: bool = False,
    ):
        self.name = name
        self.instructions = list(instructions)
        self.helper_names = list(helper_names)
        self.insertion_point = insertion_point
        self.seq = seq
        self.layout_hint = layout_hint

    @property
    def is_native(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"ExtensionCode({self.name!r}, {self.insertion_point.name}, "
            f"seq={self.seq}, {len(self.instructions)} insns)"
        )


class NativeExtensionCode:
    """A Python-callable extension, used by the ablation benchmarks to
    separate "plugin architecture cost" from "eBPF interpretation cost".

    The callable receives ``(ctx, host)`` and returns a u64 result, or
    raises :class:`repro.core.context.NextRequested` to delegate.
    """

    __slots__ = ("name", "fn", "insertion_point", "seq", "helper_names")

    def __init__(
        self,
        name: str,
        fn: Callable,
        insertion_point: InsertionPoint,
        seq: int = 0,
    ):
        self.name = name
        self.fn = fn
        self.insertion_point = insertion_point
        self.seq = seq
        self.helper_names: List[str] = []

    @property
    def is_native(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"NativeExtensionCode({self.name!r}, {self.insertion_point.name})"


class ProgramState:
    """Shared persistent state of one xBGP program.

    * ``shared`` — a :class:`MemoryRegion` mapped into every VM of the
      program at the same virtual address (``ctx_shmnew``/``ctx_shmget``
      hand out chunks of it);
    * ``maps`` — eBPF-map-like key/value stores living host side and
      reached through the ``map_*`` helpers; the manifest may preload
      them (ROA tables, the valley-free level pairs…).
    """

    def __init__(self, shared_size: int = DEFAULT_SHARED_SIZE):
        self.shared = MemoryRegion(SHARED_BASE, shared_size, writable=True, label="shm")
        self._shm_offsets: Dict[int, int] = {}
        self._shm_used = 0
        self.maps: Dict[int, Dict[int, List[int]]] = {}
        self._next_map_id = 1

    # -- shared memory ---------------------------------------------------

    def shm_new(self, key: int, size: int) -> int:
        """Allocate ``size`` shared bytes under ``key``; return VM address."""
        if key in self._shm_offsets:
            raise SandboxViolation(f"shm key {key} already allocated")
        aligned = (size + 7) & ~7
        if self._shm_used + aligned > len(self.shared.data):
            raise SandboxViolation("shared memory exhausted")
        offset = self._shm_used
        self._shm_used += aligned
        self._shm_offsets[key] = offset
        return self.shared.base + offset

    def shm_get(self, key: int) -> int:
        """VM address for ``key``, or 0 when never allocated."""
        offset = self._shm_offsets.get(key)
        return 0 if offset is None else self.shared.base + offset

    # -- maps ----------------------------------------------------------------

    def map_new(self) -> int:
        map_id = self._next_map_id
        self._next_map_id += 1
        self.maps[map_id] = {}
        return map_id

    def map_update(self, map_id: int, key: int, value: int) -> None:
        table = self.maps.get(map_id)
        if table is None:
            raise KeyError(f"no map {map_id}")
        table.setdefault(key, []).append(value)

    def map_lookup(self, map_id: int, key: int, index: int = 0) -> Optional[int]:
        table = self.maps.get(map_id)
        if table is None:
            raise KeyError(f"no map {map_id}")
        values = table.get(key)
        if values is None or index >= len(values):
            return None
        return values[index]

    def map_size(self, map_id: int) -> int:
        table = self.maps.get(map_id)
        if table is None:
            raise KeyError(f"no map {map_id}")
        return len(table)


class XbgpProgram:
    """A named group of extension codes plus preloaded map data."""

    def __init__(
        self,
        name: str,
        codes: Sequence[object],
        map_data: Optional[Dict[str, Dict[int, List[int]]]] = None,
        shared_size: int = DEFAULT_SHARED_SIZE,
    ):
        self.name = name
        self.codes = list(codes)
        self.shared_size = shared_size
        self.map_data = dict(map_data or {})
        #: Map name -> id, assigned in sorted-name order at state build
        #: time so plugins can be compiled against stable ``MAP_<NAME>``
        #: constants.
        self.map_ids: Dict[str, int] = {}

    def build_state(self) -> ProgramState:
        """Instantiate the program's shared state, preloading maps."""
        state = ProgramState(self.shared_size)
        for map_name in sorted(self.map_data):
            map_id = state.map_new()
            self.map_ids[map_name] = map_id
            for key, values in self.map_data[map_name].items():
                for value in values:
                    state.map_update(map_id, key, value)
        return state

    def map_constants(self) -> Dict[str, int]:
        """``MAP_<NAME> -> id`` constants for compiling plugin sources."""
        if not self.map_ids:
            # Assign ids deterministically without building state yet.
            for index, map_name in enumerate(sorted(self.map_data), start=1):
                self.map_ids[map_name] = index
        return {
            f"MAP_{name.upper()}": map_id for name, map_id in self.map_ids.items()
        }

    def __repr__(self) -> str:
        return f"XbgpProgram({self.name!r}, {len(self.codes)} codes)"
