"""libxbgp: the vendor-neutral xBGP layer.

Public surface:

* :class:`InsertionPoint` — where extension codes attach;
* :class:`ExecutionContext` — what one invocation can see;
* :class:`HostImplementation` — what a BGP daemon implements to become
  xBGP-compliant;
* :class:`VirtualMachineManager` — loads manifests, verifies bytecode,
  executes chains with ``next()`` semantics and native fallback;
* :class:`Manifest` / :class:`XbgpProgram` / :class:`ExtensionCode` —
  the deployment artifacts;
* :data:`HELPER_IDS` / :data:`PLUGIN_CONSTANTS` — the ABI.
"""

from .abi import FILTER_ACCEPT, FILTER_REJECT, HELPER_IDS, MAP_NO_ENTRY, PLUGIN_CONSTANTS
from .api import build_helper_table
from .context import ExecutionContext, NextRequested
from .extension import ExtensionCode, NativeExtensionCode, ProgramState, XbgpProgram
from .host_interface import HostImplementation
from .insertion_points import InsertionPoint
from .manifest import Manifest, ManifestError
from .vmm import AttachError, VirtualMachineManager, VmmConfig

__all__ = [
    "FILTER_ACCEPT",
    "FILTER_REJECT",
    "HELPER_IDS",
    "MAP_NO_ENTRY",
    "PLUGIN_CONSTANTS",
    "build_helper_table",
    "ExecutionContext",
    "NextRequested",
    "ExtensionCode",
    "NativeExtensionCode",
    "ProgramState",
    "XbgpProgram",
    "HostImplementation",
    "InsertionPoint",
    "Manifest",
    "ManifestError",
    "AttachError",
    "VirtualMachineManager",
    "VmmConfig",
]
