"""Execution contexts for xBGP API calls.

§2.1: "Each API function is called with a context of execution.  This
context is hidden within the extension code but visible in the host BGP
implementation."  The context tells helper implementations which host,
peer, route or message the bytecode is operating on, carries the
*hidden arguments* the host passed when reaching the insertion point,
and records the ``next()`` delegation signal.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..bgp.peer import Neighbor
from ..bgp.prefix import Prefix
from .insertion_points import InsertionPoint

__all__ = ["ExecutionContext", "NextRequested"]


class NextRequested(Exception):
    """Raised by the ``next`` helper to end the current extension code
    and delegate the operation to the next code in the chain (or the
    host's native implementation)."""


class ExecutionContext:
    """Everything one insertion-point invocation exposes to helpers.

    Which fields are populated depends on the insertion point:

    ================== ========================================these====
    point               populated fields
    ================== ==============================================
    RECEIVE_MESSAGE     neighbor, message, route (being built)
    INBOUND_FILTER      neighbor, route, prefix
    DECISION            prefix, route (candidate), best_route
    OUTBOUND_FILTER     neighbor, route, prefix
    ENCODE_MESSAGE      neighbor, route, prefix, out_buffer
    ================== ==============================================

    ``hidden`` carries host-private arguments that helper glue may use
    but that are invisible to the extension code (the paper's RIB
    example) — e.g. PyFRR stashes its interned attribute set there.
    """

    __slots__ = (
        "host",
        "insertion_point",
        "neighbor",
        "route",
        "best_route",
        "prefix",
        "message",
        "out_buffer",
        "hidden",
        "next_requested",
        "error",
        "faulted_extension",
        "span",
    )

    def __init__(
        self,
        host: Any,
        insertion_point: InsertionPoint,
        neighbor: Optional[Neighbor] = None,
        route: Any = None,
        best_route: Any = None,
        prefix: Optional[Prefix] = None,
        message: Optional[bytes] = None,
        out_buffer: Optional[bytearray] = None,
        hidden: Optional[Dict[str, Any]] = None,
    ):
        self.host = host
        self.insertion_point = insertion_point
        self.neighbor = neighbor
        self.route = route
        self.best_route = best_route
        self.prefix = prefix
        self.message = message
        self.out_buffer = out_buffer
        self.hidden = hidden or {}
        self.next_requested = False
        #: Human-readable "<extension>: <error>" set when a code aborts.
        self.error: Optional[str] = None
        #: Name of the extension code that faulted mid-chain, so hosts
        #: and traces can attribute the failure without parsing
        #: ``error``'s flattened string.
        self.faulted_extension: Optional[str] = None
        #: (trace, span) ref of the extension run currently executing
        #: against this context — set by the VMM when the host's
        #: provenance tracker is on, None otherwise.  Helpers and glue
        #: can use it to tie their own records into the causal chain.
        self.span = None

    def __repr__(self) -> str:
        return (
            f"ExecutionContext({self.insertion_point.name}, "
            f"peer={self.neighbor!r}, prefix={self.prefix})"
        )
