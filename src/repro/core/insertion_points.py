"""The xBGP insertion points (the green circles of Fig. 2).

Each point names one operation of the abstract BGP machine where the
VMM may substitute or augment the host's native code:

* ``BGP_RECEIVE_MESSAGE`` — an UPDATE arrived and was parsed; extension
  code may rewrite/extend its attributes before import processing.
* ``BGP_INBOUND_FILTER`` — one route from the UPDATE is considered for
  the Adj-RIB-In; verdict is accept/reject; the route may be rewritten.
* ``BGP_DECISION`` — two candidate routes are compared; extension code
  may override the RFC 4271 ranking.
* ``BGP_OUTBOUND_FILTER`` — a Loc-RIB route is considered for export to
  one peer; verdict is accept/reject; the route may be rewritten.
* ``BGP_ENCODE_MESSAGE`` — the host serializes an UPDATE for a peer;
  extension code may append attribute bytes with ``write_buf``.

Other insertion points might be defined to support other types of BGP
extensions (§2 of the paper); adding a member here plus a host glue
call site is all it takes.
"""

from __future__ import annotations

import enum

__all__ = ["InsertionPoint"]


class InsertionPoint(enum.Enum):
    BGP_RECEIVE_MESSAGE = "bgp_receive_message"
    BGP_INBOUND_FILTER = "bgp_inbound_filter"
    BGP_DECISION = "bgp_decision"
    BGP_OUTBOUND_FILTER = "bgp_outbound_filter"
    BGP_ENCODE_MESSAGE = "bgp_encode_message"

    @classmethod
    def parse(cls, name: str) -> "InsertionPoint":
        """Accept either the enum name or its value string."""
        try:
            return cls[name]
        except KeyError:
            return cls(name.lower())
