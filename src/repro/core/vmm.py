"""The Virtual Machine Manager — libxbgp's multiplexer (§2.1).

The host implementation calls :meth:`VirtualMachineManager.run` instead
of its native function at every insertion point.  The VMM:

1. checks whether extension codes are attached to that point — if not,
   it executes the host's default function;
2. otherwise runs the first code in manifest order;
3. a code either *returns a result* (which the VMM hands back to the
   host) or calls ``next()`` to delegate to the following code, falling
   back to the default function at chain end;
4. execution is monitored: a sandbox violation, a blown instruction
   budget or a helper error aborts the code, notifies the host and
   falls back to the default function.

Monitoring goes beyond the paper's bare fallback: every run is
recorded against a :class:`repro.telemetry.Telemetry` instance —
per-(insertion point, extension) execution/error/fallback counters,
latency histograms, executed-instruction and helper-call totals, and a
structured trace of enter/exit/next/fallback events.  A quarantine
policy (circuit breaker) can detach a crash-looping extension after N
consecutive errors so the rest of the chain and the native path keep
the router converging; see :mod:`repro.telemetry.health`.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..ebpf.helpers import HelperError, HelperTable
from ..ebpf.memory import SandboxViolation, VmMemory
from ..ebpf.verifier import VerifierConfig, VerifierError, verify
from ..ebpf.vm import ExecutionError, VirtualMachine
from ..telemetry import QuarantinePolicy, Telemetry
from .api import build_helper_table
from .context import ExecutionContext, NextRequested
from .extension import ExtensionCode, NativeExtensionCode, ProgramState, XbgpProgram
from .host_interface import HostImplementation
from .insertion_points import InsertionPoint

__all__ = ["VmmConfig", "VirtualMachineManager", "AttachError"]


class AttachError(Exception):
    """A program could not be attached (verification or lookup failed)."""


def _timed_run(run_fn, observe):
    """The single timing seam for monitored extension runs.

    Every path that measures a run — the general traced loop, the
    pre-bound fast closures, and profiled execution — funnels through
    here: ``observe`` is composed once at attach/enable time (histogram
    update, profiler ``note_run``), so adding an observer never touches
    the run sites.  The ``finally`` also times exceptions that re-raise
    out of the VMM (internal bugs on the bytecode path) — a deliberate
    simplification over raise-before-observe, keeping the fast and
    general paths symmetric.
    """
    start = perf_counter()
    try:
        return run_fn()
    finally:
        observe(perf_counter() - start)


class VmmConfig:
    """Resource limits applied to every attached extension code.

    ``tier`` selects the execution engine for attached bytecode:
    ``"interp"`` (reference interpreter), ``"jit"`` (translated
    dispatch loop) or ``"native"`` (structured native-tier compile,
    falling back per program to the JIT when the compiler declines —
    see :mod:`repro.ebpf.native`).  ``engine=`` is kept as a deprecated
    alias; reading ``config.engine`` returns the tier.

    ``telemetry=False`` strips all instrumentation from the execution
    hot path (the ablation benchmark's uninstrumented arm);
    ``quarantine`` configures the circuit breaker (default: never
    quarantine, matching the paper's always-retry fallback).

    ``fast_path`` enables the single-code specialized run closure and
    ``lazy_heap`` the zero-fill-free VM heap reset; both default on and
    exist only so the hot-path ablation benchmark can measure the
    pre-overhaul arms.  Neither changes observable semantics.
    """

    __slots__ = (
        "step_budget",
        "heap_size",
        "allow_loops",
        "max_instructions",
        "tier",
        "telemetry",
        "quarantine",
        "fast_path",
        "lazy_heap",
    )

    def __init__(
        self,
        step_budget: int = 1_000_000,
        heap_size: int = 1 << 16,
        allow_loops: bool = True,
        max_instructions: int = 65536,
        engine: Optional[str] = None,
        telemetry: bool = True,
        quarantine: Optional[QuarantinePolicy] = None,
        fast_path: bool = True,
        lazy_heap: bool = True,
        tier: Optional[str] = None,
    ):
        if tier is None:
            tier = engine if engine is not None else "jit"
        elif engine is not None and engine != tier:
            raise ValueError(
                f"engine= is a deprecated alias of tier=; got engine={engine!r} "
                f"but tier={tier!r}"
            )
        if tier not in ("jit", "interp", "native"):
            raise ValueError(f"bad tier {tier!r}")
        self.step_budget = step_budget
        self.heap_size = heap_size
        self.allow_loops = allow_loops
        self.max_instructions = max_instructions
        self.tier = tier
        self.telemetry = telemetry
        self.quarantine = quarantine
        self.fast_path = fast_path
        self.lazy_heap = lazy_heap

    @property
    def engine(self) -> str:
        """Deprecated alias for :attr:`tier`."""
        return self.tier


class _Attached:
    """One attached extension code with its persistent VM and stats.

    The telemetry handles (counters, histogram, breaker state) are
    resolved once at attach time so the execution hot path pays one
    attribute update per event instead of a registry lookup.
    """

    __slots__ = (
        "code",
        "vm",
        "state",
        "executions",
        "errors",
        "fallbacks",
        "health",
        "m_exec",
        "m_err",
        "m_fallback",
        "m_next",
        "m_insns",
        "m_helpers",
        "hist",
        "observe",
        "profile",
    )

    def __init__(self, code, vm: Optional[VirtualMachine], state: ProgramState):
        self.code = code
        self.vm = vm
        self.state = state
        self.executions = 0
        self.errors = 0
        self.fallbacks = 0
        self.health = None
        self.m_exec = None
        self.m_err = None
        self.m_fallback = None
        self.m_next = None
        self.m_insns = None
        self.m_helpers = None
        self.hist = None
        #: The composed per-run observer passed to :func:`_timed_run`
        #: (histogram observe, plus profiler bookkeeping while a
        #: profiler is enabled).  ``None`` means the run is not timed.
        self.observe = None
        #: The extension's VmProfile while a profiler is enabled.
        self.profile = None


class VirtualMachineManager:
    """Attach xBGP programs to a host and execute them at runtime."""

    def __init__(
        self,
        host: HostImplementation,
        config: Optional[VmmConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.host = host
        self.config = config or VmmConfig()
        self.helper_table: HelperTable = build_helper_table()
        self._chains: Dict[InsertionPoint, List[_Attached]] = {}
        #: Specialized run closures for points with exactly one attached
        #: code (the overwhelmingly common deployment shape): the chain
        #: loop, per-run attribute lookups and telemetry-handle fetches
        #: are resolved once at attach time.  Rebuilt by :meth:`_rebind`
        #: on every attach/detach; absent entries fall back to the
        #: general chain walk.
        self._fast: Dict[InsertionPoint, Callable[[ExecutionContext, Callable[[], int]], int]] = {}
        self._programs: Dict[str, XbgpProgram] = {}
        self.fallbacks = 0
        self._point_fallbacks: Dict[InsertionPoint, int] = {}
        #: The active Profiler, or None.  Like provenance, a profiler
        #: disqualifies the fast path while installed and is free when
        #: absent; see :meth:`enable_profiling`.
        self.profiler = None
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry:
            self.telemetry = Telemetry(policy=self.config.quarantine)
        else:
            self.telemetry = None

    # -- attachment -----------------------------------------------------

    def attach_program(self, program: XbgpProgram) -> None:
        """Verify and attach every extension code of ``program``.

        Verification enforces the manifest contract: each bytecode may
        only call the helpers it declared.  Any verification failure
        rejects the whole program (no partial attachment).
        """
        if program.name in self._programs:
            raise AttachError(f"program {program.name!r} already attached")
        state = program.build_state()
        attached: List[_Attached] = []
        for code in program.codes:
            if isinstance(code, NativeExtensionCode):
                attached.append(_Attached(code, None, state))
                continue
            if not isinstance(code, ExtensionCode):
                raise AttachError(f"unsupported code object {code!r}")
            try:
                helpers = self.helper_table.restricted(code.helper_names)
            except KeyError as exc:
                raise AttachError(f"{code.name}: {exc}") from exc
            verifier_config = VerifierConfig(
                max_instructions=self.config.max_instructions,
                allow_loops=self.config.allow_loops,
                allowed_helpers=set(helpers.ids()),
            )
            try:
                verify(code.instructions, verifier_config)
            except VerifierError as exc:
                raise AttachError(f"{code.name}: verification failed: {exc}") from exc
            memory = VmMemory(
                heap_size=self.config.heap_size,
                lazy_zero=self.config.lazy_heap,
                fast_access=self.config.lazy_heap,
            )
            memory.attach(state.shared)
            vm = VirtualMachine(
                code.instructions,
                helpers,
                memory=memory,
                step_budget=self.config.step_budget,
                tier=self.config.tier,
                trusted_layout=code.layout_hint,
            )
            vm.program_state = state
            vm.prepare()  # pay translation cost at attach, not first run
            attached.append(_Attached(code, vm, state))
        touched = set()
        for item in attached:
            if self.telemetry is not None:
                self._instrument(item)
            if self.profiler is not None:
                self._profile_item(item)
            chain = self._chains.setdefault(item.code.insertion_point, [])
            chain.append(item)
            chain.sort(key=lambda entry: entry.code.seq)
            touched.add(item.code.insertion_point)
        self._programs[program.name] = program
        for point in touched:
            self._rebind(point)

    def _instrument(self, item: _Attached) -> None:
        """Bind the telemetry handles this code updates on every run."""
        registry = self.telemetry.registry
        point = item.code.insertion_point.value
        name = item.code.name
        labels = {"point": point, "extension": name}
        item.health = self.telemetry.health.state_for(point, name)
        item.m_exec = registry.counter(
            "xbgp_extension_executions", "extension code invocations", **labels
        )
        item.m_err = registry.counter(
            "xbgp_extension_errors", "aborted extension runs", **labels
        )
        item.m_fallback = registry.counter(
            "xbgp_extension_fallbacks", "fallbacks to native caused by this code", **labels
        )
        item.m_next = registry.counter(
            "xbgp_extension_next", "next() delegations", **labels
        )
        item.m_insns = registry.counter(
            "xbgp_extension_instructions", "eBPF instructions executed", **labels
        )
        item.m_helpers = registry.counter(
            "xbgp_extension_helper_calls", "helper functions invoked", **labels
        )
        item.hist = registry.histogram(
            "xbgp_extension_run_seconds", "per-run latency", **labels
        )
        item.observe = item.hist.observe

    def detach_program(self, name: str) -> None:
        """Remove every extension code of program ``name``.

        Quarantine state bound to the detached codes is discarded too:
        re-attaching a fixed extension under the same name must start
        with a fresh (closed) breaker, not inherit its predecessor's
        open circuit.
        """
        program = self._programs.pop(name, None)
        if program is None:
            raise KeyError(name)
        codes = set(id(code) for code in program.codes)
        for point, chain in self._chains.items():
            removed = [item for item in chain if id(item.code) in codes]
            if not removed:
                continue
            chain[:] = [item for item in chain if id(item.code) not in codes]
            if self.telemetry is not None:
                for item in removed:
                    self.telemetry.health.discard(point.value, item.code.name)
            self._rebind(point)

    def _rebind(self, point: InsertionPoint) -> None:
        """Rebuild (or drop) the specialized closure for ``point``.

        Provenance and profiling disqualify the fast path: the
        specialized closures deliberately do not consult the tracker or
        profiler per run (that is what keeps the off state free), so
        while either is installed the general loop — which carries
        their hooks — must run.
        """
        chain = self._chains.get(point)
        if (
            not self.config.fast_path
            or not chain
            or len(chain) != 1
            or self.host.provenance is not None
            or self.profiler is not None
        ):
            self._fast.pop(point, None)
            return
        if self.telemetry is not None:
            self._fast[point] = self._bind_traced_fast(chain, chain[0])
        else:
            self._fast[point] = self._bind_plain_fast(chain, chain[0])

    def rebind_all(self) -> None:
        """Re-evaluate every specialized closure.

        Called after anything the pre-bound closures do not re-check per
        run changes — toggling the host's provenance tracker or this
        manager's profiler on or off.
        """
        for point in list(self._chains):
            self._rebind(point)

    # -- profiling ---------------------------------------------------------

    def enable_profiling(self, profiler) -> None:
        """Install ``profiler`` and route runs through the profiled seam.

        Creates one :class:`~repro.telemetry.profiler.VmProfile` per
        attached code (swapping each VM onto its profiled execution
        path), composes the per-run observer to also feed the profile,
        and rebinds every specialized closure away — the same gating
        discipline as ``enable_provenance``: on pays for what it
        measures, off is free.
        """
        if profiler is None:
            raise ValueError("enable_profiling requires a Profiler")
        self.profiler = profiler
        for chain in self._chains.values():
            for item in chain:
                self._profile_item(item)
        self.rebind_all()

    def disable_profiling(self) -> None:
        """Remove the profiler and restore the fast path."""
        if self.profiler is None:
            return
        self.profiler = None
        for chain in self._chains.values():
            for item in chain:
                item.profile = None
                item.observe = item.hist.observe if item.hist is not None else None
                if item.vm is not None:
                    item.vm.set_profile(None)
        self.rebind_all()

    def _profile_item(self, item: _Attached) -> None:
        """Bind ``item`` to its profile and compose its run observer.

        The observer samples the heap bump pointer *after* the run
        (``reset_heap`` precedes each run, so ``heap_used`` at observe
        time is exactly this run's allocation high watermark).
        """
        point = item.code.insertion_point.value
        profile = self.profiler.profile_for(point, item.code.name, item.vm)
        item.profile = profile
        note_run = profile.note_run
        base = item.hist.observe if item.hist is not None else None
        if item.vm is not None:
            item.vm.set_profile(profile)
            # set_profile re-translates compiled tiers and the native
            # compiler's verdict may differ under profiling, so refresh
            # the tier attribution captured at profile creation.
            profile.engine = item.vm.tier_used or item.vm.tier
            profile.fallback_reason = item.vm.native_fallback_reason
            memory = item.vm.memory
            if base is not None:

                def observe(elapsed, _base=base, _note=note_run, _memory=memory):
                    _base(elapsed)
                    _note(elapsed, _memory.heap_used)

            else:

                def observe(elapsed, _note=note_run, _memory=memory):
                    _note(elapsed, _memory.heap_used)

        else:
            if base is not None:

                def observe(elapsed, _base=base, _note=note_run):
                    _base(elapsed)
                    _note(elapsed, 0)

            else:

                def observe(elapsed, _note=note_run):
                    _note(elapsed, 0)

        item.observe = observe

    def attached_codes(self, point: InsertionPoint) -> List[str]:
        """Names of the codes attached to ``point``, in execution order."""
        return [item.code.name for item in self._chains.get(point, [])]

    def active(self, point: InsertionPoint) -> bool:
        """O(1): is any extension code attached at ``point``?

        Daemons use this to skip context construction (and, at the
        encode point, building the neutral wire copy) when nothing is
        attached — semantics are identical because an empty chain always
        reduces to ``default_fn()``.
        """
        return bool(self._chains.get(point))

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-code execution, error and caused-fallback counters."""
        result: Dict[str, Dict[str, int]] = {}
        for chain in self._chains.values():
            for item in chain:
                result[item.code.name] = {
                    "executions": item.executions,
                    "errors": item.errors,
                    "fallbacks": item.fallbacks,
                }
        return result

    def point_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-insertion-point aggregates, including fallback counts."""
        result: Dict[str, Dict[str, int]] = {}
        for point, chain in self._chains.items():
            entry = {
                "executions": 0,
                "errors": 0,
                "fallbacks": self._point_fallbacks.get(point, 0),
            }
            for item in chain:
                entry["executions"] += item.executions
                entry["errors"] += item.errors
            result[point.value] = entry
        for point, count in self._point_fallbacks.items():
            if point.value not in result:
                result[point.value] = {"executions": 0, "errors": 0, "fallbacks": count}
        return result

    def tiers(self) -> Dict[str, Dict[str, object]]:
        """Per-code execution-tier attribution.

        Maps code name to the tier the config requested, the tier the
        code actually runs on (the native compiler may decline a
        program and fall back to the JIT) and, when it fell back, why.
        Host-native (pyext) codes report tier ``"host"``.
        """
        result: Dict[str, Dict[str, object]] = {}
        for chain in self._chains.values():
            for item in chain:
                if item.vm is None:
                    result[item.code.name] = {
                        "requested": "host",
                        "used": "host",
                        "fallback_reason": None,
                    }
                    continue
                entry: Dict[str, object] = {
                    "requested": item.vm.tier,
                    "used": item.vm.tier_used,
                    "fallback_reason": item.vm.native_fallback_reason,
                }
                info = item.vm.native_info
                if info is not None:
                    entry["native"] = {
                        "structured_blocks": len(info.structured_blocks),
                        "bail_blocks": sorted(info.bail_blocks),
                        "bail_sites": info.bail_sites,
                        "loops": info.loops,
                        "direct_stack_ops": info.direct_stack_ops,
                    }
                result[item.code.name] = entry
        return result

    def quarantined_codes(self) -> List[str]:
        """Names of codes currently detached by the circuit breaker."""
        if self.telemetry is None:
            return []
        return [
            health.name
            for health in self.telemetry.health.quarantined()
            if health.state == "open"
        ]

    # -- execution ---------------------------------------------------------

    def run(
        self,
        ctx: ExecutionContext,
        default_fn: Callable[[], int],
    ) -> int:
        """Execute the chain at ``ctx.insertion_point``.

        ``default_fn`` is the host's native implementation of the
        operation; it runs when nothing is attached, when every code
        delegates with ``next()``, or when a code errors out.

        Single-code points dispatch through a closure specialized at
        attach time (see :meth:`_rebind`); multi-code chains and
        quarantine-open states take the general loop.
        """
        fast = self._fast.get(ctx.insertion_point)
        if fast is not None:
            return fast(ctx, default_fn)
        chain = self._chains.get(ctx.insertion_point)
        if not chain:
            return default_fn()
        if self.telemetry is not None:
            return self._run_traced(chain, ctx, default_fn)
        return self._run_plain(chain, ctx, default_fn)

    def runner(
        self, point: InsertionPoint
    ) -> Callable[[ExecutionContext, Callable[[], int]], int]:
        """Resolve :meth:`run`'s dispatch for ``point`` once.

        Batch pipelines call this once per UPDATE vector and invoke the
        returned callable per route, saving the per-call dict probes of
        :meth:`run`.  The binding stays valid for the whole batch: the
        fast closure re-checks quarantine state on every invocation, and
        the events that would change the dispatch (attach/detach,
        provenance or profiling toggles) cannot happen mid-batch.
        """
        fast = self._fast.get(point)
        if fast is not None:
            return fast
        chain = self._chains.get(point)
        if not chain:
            return lambda ctx, default_fn: default_fn()
        if self.telemetry is not None:
            run_traced = self._run_traced
            return lambda ctx, default_fn: run_traced(chain, ctx, default_fn)
        run_plain = self._run_plain
        return lambda ctx, default_fn: run_plain(chain, ctx, default_fn)

    def _note_fallback(self, item: _Attached, ctx: ExecutionContext, exc: Exception) -> None:
        """Bookkeeping shared by both paths when a code aborts the chain."""
        item.errors += 1
        item.fallbacks += 1
        self.fallbacks += 1
        point = ctx.insertion_point
        self._point_fallbacks[point] = self._point_fallbacks.get(point, 0) + 1
        ctx.error = f"{item.code.name}: {exc}"
        ctx.faulted_extension = item.code.name
        self.host.log(f"[vmm] {ctx.error}; falling back to native")

    def _run_plain(
        self,
        chain: List[_Attached],
        ctx: ExecutionContext,
        default_fn: Callable[[], int],
    ) -> int:
        """Uninstrumented execution (seed semantics, no telemetry cost).

        When a profiler is enabled without telemetry, ``item.observe``
        still carries the profile bookkeeping, so runs are timed through
        the :func:`_timed_run` seam; otherwise no clock is read.
        """
        prov = self.host.provenance
        point = ctx.insertion_point.value
        host = self.host
        for item in chain:
            item.executions += 1
            ctx.next_requested = False
            observe = item.observe
            if prov is not None:
                prov.vmm_enter(ctx, point, item.code.name)
            if item.code.is_native:
                try:
                    if observe is not None:
                        fn = item.code.fn
                        result = _timed_run(lambda: fn(ctx, host), observe)
                    else:
                        result = item.code.fn(ctx, self.host)
                except NextRequested:
                    if prov is not None:
                        prov.vmm_exit(ctx, point, item.code.name, "next")
                    continue
                except Exception as exc:  # noqa: BLE001 - must never crash the host
                    self._note_fallback(item, ctx, exc)
                    if prov is not None:
                        prov.vmm_exit(ctx, point, item.code.name, "error", error=str(exc))
                        prov.vmm_fallback(ctx, point, item.code.name, str(exc))
                    return default_fn()
                if prov is not None:
                    prov.vmm_exit(
                        ctx, point, item.code.name, "return",
                        verdict=result if isinstance(result, int) else None,
                    )
                return result
            vm = item.vm
            vm.ctx = ctx
            vm.memory.reset_heap()
            try:
                if observe is not None:
                    result = _timed_run(vm.run, observe)
                else:
                    result = vm.run(r1=0)
            except NextRequested:
                if prov is not None:
                    prov.vmm_exit(ctx, point, item.code.name, "next")
                continue
            except (SandboxViolation, ExecutionError, HelperError) as exc:
                self._note_fallback(item, ctx, exc)
                if prov is not None:
                    prov.vmm_exit(ctx, point, item.code.name, "error", error=str(exc))
                    prov.vmm_fallback(ctx, point, item.code.name, str(exc))
                return default_fn()
            if prov is not None:
                prov.vmm_exit(
                    ctx, point, item.code.name, "return",
                    verdict=result if isinstance(result, int) else None,
                )
            return result
        if prov is not None:
            prov.vmm_native(ctx, point)
        return default_fn()

    def _run_traced(
        self,
        chain: List[_Attached],
        ctx: ExecutionContext,
        default_fn: Callable[[], int],
    ) -> int:
        """Instrumented execution: metrics, trace and quarantine.

        Timing goes through :func:`_timed_run` with the observer
        composed at attach/enable time (``item.observe``): histogram
        only in plain telemetry, histogram + profile bookkeeping while
        a profiler is enabled.
        """
        telemetry = self.telemetry
        trace = telemetry.trace
        health_engine = telemetry.health
        prov = self.host.provenance
        point = ctx.insertion_point.value
        host = self.host
        for item in chain:
            health = item.health
            if health.state != "closed" and not health_engine.allow(health):
                trace.record("skip", point, item.code.name, reason="quarantined")
                if prov is not None:
                    prov.vmm_skip(ctx, point, item.code.name)
                continue
            item.executions += 1
            item.m_exec.inc()
            ctx.next_requested = False
            trace.record("enter", point, item.code.name)
            if prov is not None:
                prov.vmm_enter(ctx, point, item.code.name)
            vm = item.vm
            if vm is not None:
                vm.ctx = ctx
                vm.memory.reset_heap()
                run_fn = vm.run
            else:
                fn = item.code.fn
                run_fn = lambda: fn(ctx, host)  # noqa: E731 - bound per item run
            try:
                result = _timed_run(run_fn, item.observe)
            except NextRequested:
                item.m_next.inc()
                if vm is not None:
                    item.m_insns.inc(vm.steps_executed)
                    item.m_helpers.inc(vm.helper_calls)
                health_engine.record_success(health)
                trace.record("next", point, item.code.name)
                trace.record("exit", point, item.code.name, outcome="next")
                if prov is not None:
                    prov.vmm_exit(ctx, point, item.code.name, "next")
                continue
            except Exception as exc:  # noqa: BLE001 - must never crash the host
                if vm is not None and not isinstance(
                    exc, (SandboxViolation, ExecutionError, HelperError)
                ):
                    raise  # bytecode path: only sandbox faults are absorbed
                item.m_err.inc()
                item.m_fallback.inc()
                if vm is not None:
                    item.m_insns.inc(vm.steps_executed)
                    item.m_helpers.inc(vm.helper_calls)
                self._note_fallback(item, ctx, exc)
                health_engine.record_error(health)
                trace.record(
                    "exit", point, item.code.name, outcome="error", error=str(exc)
                )
                trace.record(
                    "fallback", point, item.code.name, error=ctx.error
                )
                if prov is not None:
                    prov.vmm_exit(ctx, point, item.code.name, "error", error=str(exc))
                    prov.vmm_fallback(ctx, point, item.code.name, str(exc))
                telemetry.registry.counter(
                    "xbgp_vmm_fallbacks", "chain fallbacks to native", point=point
                ).inc()
                return default_fn()
            if vm is not None:
                item.m_insns.inc(vm.steps_executed)
                item.m_helpers.inc(vm.helper_calls)
            health_engine.record_success(health)
            trace.record(
                "exit",
                point,
                item.code.name,
                outcome="return",
                verdict=result if isinstance(result, int) else None,
            )
            if prov is not None:
                prov.vmm_exit(
                    ctx, point, item.code.name, "return",
                    verdict=result if isinstance(result, int) else None,
                )
            return result
        trace.record("default", point)
        if prov is not None:
            prov.vmm_native(ctx, point)
        return default_fn()

    # -- single-code fast path ---------------------------------------------

    def _bind_plain_fast(
        self, chain: List[_Attached], item: _Attached
    ) -> Callable[[ExecutionContext, Callable[[], int]], int]:
        """Uninstrumented single-code closure (telemetry disabled)."""
        note_fallback = self._note_fallback
        if item.vm is None:
            fn = item.code.fn
            host = self.host

            def run_fast(ctx: ExecutionContext, default_fn: Callable[[], int]) -> int:
                item.executions += 1
                ctx.next_requested = False
                try:
                    return fn(ctx, host)
                except NextRequested:
                    return default_fn()
                except Exception as exc:  # noqa: BLE001 - must never crash the host
                    note_fallback(item, ctx, exc)
                    return default_fn()

            return run_fast

        vm = item.vm
        reset_heap = vm.memory.reset_heap
        if vm.jit:
            vm.prepare()
            vm_run = vm._jit_run
            budget_error = vm._budget_error
            budget_message = f"instruction budget ({vm.step_budget}) exceeded"
        else:
            vm_run = vm.run
            budget_error = ()
            budget_message = ""

        def run_fast(ctx: ExecutionContext, default_fn: Callable[[], int]) -> int:
            item.executions += 1
            ctx.next_requested = False
            vm.ctx = ctx
            reset_heap()
            try:
                return vm_run()
            except NextRequested:
                return default_fn()
            except (SandboxViolation, ExecutionError, HelperError) as exc:
                note_fallback(item, ctx, exc)
                return default_fn()
            except budget_error as exc:
                note_fallback(item, ctx, ExecutionError(exc.pc, budget_message))
                return default_fn()

        return run_fast

    def _bind_traced_fast(
        self, chain: List[_Attached], item: _Attached
    ) -> Callable[[ExecutionContext, Callable[[], int]], int]:
        """Instrumented single-code closure.

        Byte-for-byte the same metrics, trace events and quarantine
        protocol as :meth:`_run_traced` on a one-item chain — the
        telemetry handles, trace recorder and breaker state are simply
        pre-bound instead of re-fetched per run.  Any non-closed breaker
        state defers to the general loop, which owns the probation
        (``allow``) protocol.
        """
        telemetry = self.telemetry
        trace_record = telemetry.trace.record
        trace_fast = telemetry.trace.record_fast
        health_engine = telemetry.health
        health = item.health
        point = item.code.insertion_point.value
        name = item.code.name
        hist = item.hist
        boundaries = hist.boundaries

        def observe(elapsed: float) -> None:
            # Histogram.observe inlined once per binding: the single
            # hist-update site both closures hand to _timed_run.
            hist.counts[bisect_left(boundaries, elapsed)] += 1
            hist.sum += elapsed
            hist.count += 1

        m_exec = item.m_exec
        m_err = item.m_err
        m_fallback = item.m_fallback
        m_next = item.m_next
        m_insns = item.m_insns
        m_helpers = item.m_helpers
        registry_counter = telemetry.registry.counter

        def fallback_inc() -> None:
            # Created on first fallback, like _run_traced, so the series
            # only materialises once a fallback actually happens.
            registry_counter(
                "xbgp_vmm_fallbacks", "chain fallbacks to native", point=point
            ).inc()

        note_fallback = self._note_fallback
        run_traced = self._run_traced

        if item.vm is None:
            fn = item.code.fn
            host = self.host

            def run_fast(ctx: ExecutionContext, default_fn: Callable[[], int]) -> int:
                if health.state != "closed":
                    return run_traced(chain, ctx, default_fn)
                item.executions += 1
                m_exec.value += 1
                ctx.next_requested = False
                trace_fast("enter", point, name)
                try:
                    result = _timed_run(lambda: fn(ctx, host), observe)
                except NextRequested:
                    m_next.value += 1
                    health_engine.record_success(health)
                    trace_fast("next", point, name)
                    trace_fast("exit", point, name)["outcome"] = "next"
                    trace_record("default", point)
                    return default_fn()
                except Exception as exc:  # noqa: BLE001 - must never crash the host
                    m_err.inc()
                    m_fallback.inc()
                    note_fallback(item, ctx, exc)
                    health_engine.record_error(health)
                    trace_record("exit", point, name, outcome="error", error=str(exc))
                    trace_record("fallback", point, name, error=ctx.error)
                    fallback_inc()
                    return default_fn()
                health_engine.record_success(health)
                event = trace_fast("exit", point, name)
                event["outcome"] = "return"
                event["verdict"] = result if isinstance(result, int) else None
                return result

            return run_fast

        vm = item.vm
        reset_heap = vm.memory.reset_heap
        # Call the translated function directly (one frame less than
        # VirtualMachine.run); the budget-error translation run() would
        # have done moves into the except clause below.  The generated
        # code publishes steps_executed/helper_calls on every outcome,
        # so run()'s counter zeroing is not needed.
        if vm.jit:
            vm.prepare()
            vm_run = vm._jit_run
            budget_error = vm._budget_error
            budget_message = f"instruction budget ({vm.step_budget}) exceeded"
        else:
            vm_run = vm.run
            budget_error = ()
            budget_message = ""

        def run_fast(ctx: ExecutionContext, default_fn: Callable[[], int]) -> int:
            if health.state != "closed":
                return run_traced(chain, ctx, default_fn)
            item.executions += 1
            m_exec.value += 1
            ctx.next_requested = False
            trace_fast("enter", point, name)
            vm.ctx = ctx
            reset_heap()
            try:
                result = _timed_run(vm_run, observe)
            except NextRequested:
                m_next.value += 1
                m_insns.value += vm.steps_executed
                m_helpers.value += vm.helper_calls
                health_engine.record_success(health)
                trace_fast("next", point, name)
                trace_fast("exit", point, name)["outcome"] = "next"
                trace_record("default", point)
                return default_fn()
            except (SandboxViolation, ExecutionError, HelperError) as exc:
                m_err.inc()
                m_fallback.inc()
                m_insns.inc(vm.steps_executed)
                m_helpers.inc(vm.helper_calls)
                note_fallback(item, ctx, exc)
                health_engine.record_error(health)
                trace_record("exit", point, name, outcome="error", error=str(exc))
                trace_record("fallback", point, name, error=ctx.error)
                fallback_inc()
                return default_fn()
            except budget_error as exc:
                wrapped = ExecutionError(exc.pc, budget_message)
                m_err.inc()
                m_fallback.inc()
                m_insns.inc(vm.steps_executed)
                m_helpers.inc(vm.helper_calls)
                note_fallback(item, ctx, wrapped)
                health_engine.record_error(health)
                trace_record("exit", point, name, outcome="error", error=str(wrapped))
                trace_record("fallback", point, name, error=ctx.error)
                fallback_inc()
                return default_fn()
            m_insns.value += vm.steps_executed
            m_helpers.value += vm.helper_calls
            health_engine.record_success(health)
            event = trace_fast("exit", point, name)
            event["outcome"] = "return"
            event["verdict"] = result if isinstance(result, int) else None
            return result

        return run_fast
