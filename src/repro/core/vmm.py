"""The Virtual Machine Manager — libxbgp's multiplexer (§2.1).

The host implementation calls :meth:`VirtualMachineManager.run` instead
of its native function at every insertion point.  The VMM:

1. checks whether extension codes are attached to that point — if not,
   it executes the host's default function;
2. otherwise runs the first code in manifest order;
3. a code either *returns a result* (which the VMM hands back to the
   host) or calls ``next()`` to delegate to the following code, falling
   back to the default function at chain end;
4. execution is monitored: a sandbox violation, a blown instruction
   budget or a helper error aborts the code, notifies the host and
   falls back to the default function.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ebpf.helpers import HelperError, HelperTable
from ..ebpf.memory import SandboxViolation, VmMemory
from ..ebpf.verifier import VerifierConfig, VerifierError, verify
from ..ebpf.vm import ExecutionError, VirtualMachine
from .api import build_helper_table
from .context import ExecutionContext, NextRequested
from .extension import ExtensionCode, NativeExtensionCode, ProgramState, XbgpProgram
from .host_interface import HostImplementation
from .insertion_points import InsertionPoint

__all__ = ["VmmConfig", "VirtualMachineManager", "AttachError"]


class AttachError(Exception):
    """A program could not be attached (verification or lookup failed)."""


class VmmConfig:
    """Resource limits applied to every attached extension code."""

    __slots__ = ("step_budget", "heap_size", "allow_loops", "max_instructions", "engine")

    def __init__(
        self,
        step_budget: int = 1_000_000,
        heap_size: int = 1 << 16,
        allow_loops: bool = True,
        max_instructions: int = 65536,
        engine: str = "jit",
    ):
        if engine not in ("jit", "interp"):
            raise ValueError(f"bad engine {engine!r}")
        self.step_budget = step_budget
        self.heap_size = heap_size
        self.allow_loops = allow_loops
        self.max_instructions = max_instructions
        self.engine = engine


class _Attached:
    """One attached extension code with its persistent VM and stats."""

    __slots__ = ("code", "vm", "state", "executions", "errors")

    def __init__(self, code, vm: Optional[VirtualMachine], state: ProgramState):
        self.code = code
        self.vm = vm
        self.state = state
        self.executions = 0
        self.errors = 0


class VirtualMachineManager:
    """Attach xBGP programs to a host and execute them at runtime."""

    def __init__(self, host: HostImplementation, config: Optional[VmmConfig] = None):
        self.host = host
        self.config = config or VmmConfig()
        self.helper_table: HelperTable = build_helper_table()
        self._chains: Dict[InsertionPoint, List[_Attached]] = {}
        self._programs: Dict[str, XbgpProgram] = {}
        self.fallbacks = 0

    # -- attachment -----------------------------------------------------

    def attach_program(self, program: XbgpProgram) -> None:
        """Verify and attach every extension code of ``program``.

        Verification enforces the manifest contract: each bytecode may
        only call the helpers it declared.  Any verification failure
        rejects the whole program (no partial attachment).
        """
        if program.name in self._programs:
            raise AttachError(f"program {program.name!r} already attached")
        state = program.build_state()
        attached: List[_Attached] = []
        for code in program.codes:
            if isinstance(code, NativeExtensionCode):
                attached.append(_Attached(code, None, state))
                continue
            if not isinstance(code, ExtensionCode):
                raise AttachError(f"unsupported code object {code!r}")
            try:
                helpers = self.helper_table.restricted(code.helper_names)
            except KeyError as exc:
                raise AttachError(f"{code.name}: {exc}") from exc
            verifier_config = VerifierConfig(
                max_instructions=self.config.max_instructions,
                allow_loops=self.config.allow_loops,
                allowed_helpers=set(helpers.ids()),
            )
            try:
                verify(code.instructions, verifier_config)
            except VerifierError as exc:
                raise AttachError(f"{code.name}: verification failed: {exc}") from exc
            memory = VmMemory(heap_size=self.config.heap_size)
            memory.attach(state.shared)
            vm = VirtualMachine(
                code.instructions,
                helpers,
                memory=memory,
                step_budget=self.config.step_budget,
                jit=self.config.engine == "jit",
                trusted_layout=code.layout_hint,
            )
            vm.program_state = state
            vm.prepare()  # pay translation cost at attach, not first run
            attached.append(_Attached(code, vm, state))
        for item in attached:
            chain = self._chains.setdefault(item.code.insertion_point, [])
            chain.append(item)
            chain.sort(key=lambda entry: entry.code.seq)
        self._programs[program.name] = program

    def detach_program(self, name: str) -> None:
        """Remove every extension code of program ``name``."""
        program = self._programs.pop(name, None)
        if program is None:
            raise KeyError(name)
        codes = set(id(code) for code in program.codes)
        for chain in self._chains.values():
            chain[:] = [item for item in chain if id(item.code) not in codes]

    def attached_codes(self, point: InsertionPoint) -> List[str]:
        """Names of the codes attached to ``point``, in execution order."""
        return [item.code.name for item in self._chains.get(point, [])]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-code execution and error counters."""
        result: Dict[str, Dict[str, int]] = {}
        for chain in self._chains.values():
            for item in chain:
                result[item.code.name] = {
                    "executions": item.executions,
                    "errors": item.errors,
                }
        return result

    # -- execution ---------------------------------------------------------

    def run(
        self,
        ctx: ExecutionContext,
        default_fn: Callable[[], int],
    ) -> int:
        """Execute the chain at ``ctx.insertion_point``.

        ``default_fn`` is the host's native implementation of the
        operation; it runs when nothing is attached, when every code
        delegates with ``next()``, or when a code errors out.
        """
        chain = self._chains.get(ctx.insertion_point)
        if not chain:
            return default_fn()
        for item in chain:
            item.executions += 1
            ctx.next_requested = False
            if item.code.is_native:
                try:
                    return item.code.fn(ctx, self.host)
                except NextRequested:
                    continue
                except Exception as exc:  # noqa: BLE001 - must never crash the host
                    item.errors += 1
                    ctx.error = f"{item.code.name}: {exc}"
                    self.host.log(f"[vmm] {ctx.error}; falling back to native")
                    self.fallbacks += 1
                    return default_fn()
            vm = item.vm
            vm.ctx = ctx
            vm.memory.reset_heap()
            try:
                return vm.run(r1=0)
            except NextRequested:
                continue
            except (SandboxViolation, ExecutionError, HelperError) as exc:
                item.errors += 1
                ctx.error = f"{item.code.name}: {exc}"
                self.host.log(f"[vmm] {ctx.error}; falling back to native")
                self.fallbacks += 1
                return default_fn()
        return default_fn()
