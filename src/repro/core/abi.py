"""The xBGP ABI: helper ids, in-VM struct layouts and plugin constants.

This module *is* the vendor-neutral contract.  Bytecode compiled against
these helper ids and struct offsets runs unmodified on every host that
registers the same API (PyFRR and PyBIRD here; FRRouting and BIRD in the
paper).  Changing anything in this file is an ABI break.

Struct fields are little-endian (eBPF loads are little-endian); BGP
*payload* bytes (attribute values, message bytes) stay in network byte
order, exactly as §2.1 prescribes for the neutral representation.
"""

from __future__ import annotations

import struct
from typing import Dict

from ..bgp.constants import SessionType
from ..bgp.peer import Neighbor

__all__ = [
    "HELPER_IDS",
    "PLUGIN_CONSTANTS",
    "PEER_INFO_SIZE",
    "NEXTHOP_INFO_SIZE",
    "ATTR_HEADER_SIZE",
    "ARG_HEADER_SIZE",
    "pack_peer_info",
    "pack_nexthop_info",
    "pack_attr",
    "pack_arg",
    "MAP_NO_ENTRY",
    "FILTER_ACCEPT",
    "FILTER_REJECT",
    "ARG_MESSAGE",
    "ARG_PREFIX",
    "ARG_ROUTE_NEW",
    "ARG_ROUTE_BEST",
]

#: Stable helper call numbers.  Ids below 64 are reserved for the xBGP
#: core API; hosts must not add vendor-specific helpers in that range.
HELPER_IDS: Dict[str, int] = {
    "next": 1,
    "get_arg": 2,
    "get_peer_info": 3,
    "get_attr": 4,
    "set_attr": 5,
    "add_attr": 6,
    "remove_attr": 7,
    "get_nexthop": 8,
    "get_xtra": 9,
    "write_buf": 10,
    "ebpf_memcpy": 11,
    "ebpf_print": 12,
    "ctx_malloc": 13,
    "ctx_shmnew": 14,
    "ctx_shmget": 15,
    "rib_announce": 16,
    "get_prefix": 17,
    "get_src_peer_info": 18,
    "map_new": 20,
    "map_update": 21,
    "map_lookup": 22,
    "map_lookup_idx": 23,
    "map_size": 24,
    "sqrt64": 30,
}

#: Sentinel returned by map lookups when the key is absent.
MAP_NO_ENTRY = 0xFFFFFFFFFFFFFFFF

#: Filter verdicts (insertion points BGP_INBOUND_FILTER / BGP_OUTBOUND_FILTER).
FILTER_ACCEPT = 0
FILTER_REJECT = 1

#: ``get_arg`` argument ids.
ARG_MESSAGE = 1  # the raw BGP message being received / encoded
ARG_PREFIX = 2  # the 5-byte wire prefix of the route under consideration
ARG_ROUTE_NEW = 3  # BGP_DECISION: candidate route attributes
ARG_ROUTE_BEST = 4  # BGP_DECISION: current best attributes

#: Names plugins can use as integer literals in xc source.
PLUGIN_CONSTANTS: Dict[str, int] = {
    "IBGP_SESSION": int(SessionType.IBGP_SESSION),
    "EBGP_SESSION": int(SessionType.EBGP_SESSION),
    "LOCAL_SESSION": int(SessionType.LOCAL_SESSION),
    "FILTER_ACCEPT": FILTER_ACCEPT,
    "FILTER_REJECT": FILTER_REJECT,
    "MAP_NO_ENTRY_LO": MAP_NO_ENTRY & 0xFFFFFFFF,
    "ARG_MESSAGE": ARG_MESSAGE,
    "ARG_PREFIX": ARG_PREFIX,
    "ARG_ROUTE_NEW": ARG_ROUTE_NEW,
    "ARG_ROUTE_BEST": ARG_ROUTE_BEST,
    # Attribute type codes plugins commonly touch.
    "ATTR_ORIGIN": 1,
    "ATTR_AS_PATH": 2,
    "ATTR_NEXT_HOP": 3,
    "ATTR_MED": 4,
    "ATTR_LOCAL_PREF": 5,
    "ATTR_COMMUNITIES": 8,
    "ATTR_ORIGINATOR_ID": 9,
    "ATTR_CLUSTER_LIST": 10,
    "ATTR_GEOLOC": 243,
    # Attribute flag bits.
    "FLAG_OPTIONAL": 0x80,
    "FLAG_TRANSITIVE": 0x40,
    "FLAG_PARTIAL": 0x20,
    # Origin validation states (RFC 6811).
    "ROV_VALID": 0,
    "ROV_NOT_FOUND": 1,
    "ROV_INVALID": 2,
}


# -- struct layouts ----------------------------------------------------

#: ``struct ubpf_peer_info`` — 36 bytes:
#:   0  u32 peer_type      (1 = iBGP, 2 = eBGP)
#:   4  u32 peer_as
#:   8  u32 peer_router_id
#:  12  u32 local_as
#:  16  u32 local_router_id
#:  20  u32 peer_addr      (IPv4, host int)
#:  24  u32 local_addr
#:  28  u32 rr_client      (0/1)
#:  32  u32 cluster_id
PEER_INFO_SIZE = 36
_PEER_INFO = struct.Struct("<9I")


def pack_peer_info(neighbor: Neighbor, cached: bool = True) -> bytes:
    # Memoized on the Neighbor: peers are long-lived and their fields
    # rarely change, but helpers ask for this struct on every route.
    # Neighbor.__setattr__ clears _packed_info on any field change.
    # ``cached=False`` re-packs every call (the hot-path ablation's
    # legacy arm, which predates this memo).
    packed = neighbor._packed_info if cached else None
    if packed is None:
        packed = _PEER_INFO.pack(
            int(neighbor.session_type),
            neighbor.peer_asn,
            neighbor.peer_router_id,
            neighbor.local_asn,
            neighbor.local_router_id,
            neighbor.peer_address,
            neighbor.local_address,
            1 if neighbor.rr_client else 0,
            neighbor.cluster_id,
        )
        object.__setattr__(neighbor, "_packed_info", packed)
    return packed


#: ``struct ubpf_nexthop`` — 12 bytes:
#:   0  u32 addr
#:   4  u32 igp_metric
#:   8  u32 reachable (0/1)
NEXTHOP_INFO_SIZE = 12
_NEXTHOP_INFO = struct.Struct("<3I")


def pack_nexthop_info(address: int, igp_metric: int, reachable: bool) -> bytes:
    return _NEXTHOP_INFO.pack(address, igp_metric & 0xFFFFFFFF, 1 if reachable else 0)


#: Attribute view returned by ``get_attr`` — 4-byte header + payload:
#:   0  u8  code
#:   1  u8  flags
#:   2  u16 length  (little-endian)
#:   4  u8  data[length]  (network byte order, as on the wire)
ATTR_HEADER_SIZE = 4


def pack_attr(code: int, flags: int, value: bytes) -> bytes:
    return struct.pack("<BBH", code & 0xFF, flags & 0xFF, len(value)) + value


#: Argument block returned by ``get_arg`` — 4-byte length + payload:
#:   0  u32 length (little-endian)
#:   4  u8  data[length]
ARG_HEADER_SIZE = 4


def pack_arg(payload: bytes) -> bytes:
    return struct.pack("<I", len(payload)) + payload
