"""Batched UPDATE ingestion.

:class:`BatchProcessor` sits between a transport and a daemon: it
reassembles the TCP byte stream exactly like
``daemon.receive_raw`` would, but accumulates decoded UPDATE messages
per peer and hands them to ``daemon.process_update_batch`` in vectors.
Non-UPDATE control traffic (route refresh, keepalive) flushes the
pending batch first so relative ordering on a session is preserved.

The daemons guarantee that the final Adj-RIB-In/Loc-RIB/Adj-RIB-Out
state after a batched feed is identical to the sequential path; only
transient downstream traffic collapses (an announce superseded within
one batch is never advertised).  Anything that changes daemon
configuration mid-stream must call :meth:`BatchProcessor.flush` first —
the fuzz host oracle's batched arm does exactly that before replaying
peer-config writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bgp.messages import UpdateMessage, split_stream
from ..bgp.prefix import parse_ipv4
from ..telemetry.events import EventLog

__all__ = ["BatchProcessor"]


class BatchProcessor:
    """Feed raw BGP bytes to ``daemon`` in UPDATE batches of
    ``batch_size`` messages per peer.

    With the daemon's telemetry on, every flush increments the
    ``xbgp_batches_flushed`` counter and feeds the ``xbgp_batch_size``
    histogram; an attached :class:`EventLog` additionally gets one
    schema'd ``batch_flush`` event per flush.
    """

    def __init__(
        self,
        daemon,
        batch_size: int = 64,
        events: Optional[EventLog] = None,
    ) -> None:
        self.daemon = daemon
        self.batch_size = max(1, int(batch_size))
        self.events = events
        self._buffers: Dict[str, bytearray] = {}
        self._pending: Dict[str, List[UpdateMessage]] = {}
        #: Counters the sharded replay reports per worker.
        self.batches_flushed = 0
        self.updates_batched = 0
        telemetry = getattr(getattr(daemon, "vmm", None), "telemetry", None)
        if telemetry is not None:
            registry = telemetry.registry
            self._flush_counter = registry.counter(
                "xbgp_batches_flushed", "UPDATE batches handed to the daemon"
            )
            self._size_histogram = registry.histogram(
                "xbgp_batch_size",
                "UPDATE messages per flushed batch",
                buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256],
            )
        else:
            self._flush_counter = None
            self._size_histogram = None

    def receive_raw(self, peer_address: str, data: bytes) -> None:
        """Buffer ``data`` from ``peer_address``; flush full batches."""
        buffer = self._buffers.get(peer_address)
        if buffer is None:
            buffer = self._buffers[peer_address] = bytearray()
        buffer.extend(data)
        for message in split_stream(buffer):
            if isinstance(message, UpdateMessage):
                pending = self._pending.setdefault(peer_address, [])
                pending.append(message)
                if len(pending) >= self.batch_size:
                    self._flush_peer(peer_address)
            else:
                # Control traffic keeps its position in the stream.
                self._flush_peer(peer_address)
                self.daemon.receive_message(peer_address, message)

    def flush(self) -> None:
        """Process every pending UPDATE immediately."""
        for peer_address in list(self._pending):
            self._flush_peer(peer_address)

    def _flush_peer(self, peer_address: str) -> None:
        pending = self._pending.get(peer_address)
        if not pending:
            return
        self._pending[peer_address] = []
        neighbor = self.daemon.neighbors.get(parse_ipv4(peer_address))
        if neighbor is None:
            # Mirror receive_message's per-message accounting.
            self.daemon.stats["unknown_peer"] += len(pending)
            return
        self.batches_flushed += 1
        self.updates_batched += len(pending)
        if self._flush_counter is not None:
            self._flush_counter.inc()
            self._size_histogram.observe(len(pending))
        if self.events is not None:
            self.events.emit("batch_flush", peer=peer_address, updates=len(pending))
        self.daemon.process_update_batch(neighbor, pending)
