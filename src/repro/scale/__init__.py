"""repro.scale — full-table scale machinery.

Two cooperating pieces bring the paper's 724k-route RIPE RIS replay in
scope:

* :class:`BatchProcessor` — feeds raw UPDATE bytes through a daemon in
  decode→import→decision batches, amortizing per-message costs (one
  attribute parse per distinct wire block, one VMM fast-path bind per
  batch, one decision run per dirty prefix, bulk encode-cache hits on
  the export side).
* :class:`ShardedReplay` — partitions a route workload across
  ``multiprocessing`` workers by prefix range (a
  :class:`~repro.bgp.trie.PrefixTrie`-backed :class:`PartitionMap`),
  ships interned FRR attribute sets to the workers once via pickled
  intern tables, and merges per-shard Loc-RIB snapshots
  deterministically.

Both paths are locked to the sequential pipeline by the batch-parity
integration tests and the fuzz host oracle's batched/sharded arms.
"""

from .batch import BatchProcessor
from .shard import (
    PartitionMap,
    ShardedReplay,
    ShardedResult,
    build_scale_daemon,
    intern_table_for,
    normalise_snapshot,
    split_update,
)

__all__ = [
    "BatchProcessor",
    "PartitionMap",
    "ShardedReplay",
    "ShardedResult",
    "build_scale_daemon",
    "intern_table_for",
    "normalise_snapshot",
    "split_update",
]
