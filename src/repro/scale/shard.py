"""Sharded full-table replay.

:class:`PartitionMap` splits the IPv4 space into contiguous address
ranges balanced over the workload's prefixes and stores the range →
shard assignment as aligned CIDR blocks in a
:class:`~repro.bgp.trie.PrefixTrie`; any prefix — including ones never
seen at build time, e.g. later withdrawals or more-specifics — maps to
a shard by longest-prefix match on its lowest address.  Because BGP's
decision process is independent per prefix, routing all routes of a
prefix to the same worker makes the sharded outcome exactly the
sequential one.

:class:`ShardedReplay` buckets a :class:`RouteSpec` workload with that
map, replays each bucket through its own daemon in a
``multiprocessing`` worker (or inline, for debugging and the fuzz
oracle), ships the parent's interned FRR attribute sets to each worker
once as a pickled intern table (attribute dedup survives the process
boundary: the worker's :class:`AttrPool` starts warm), and merges the
per-shard Loc-RIB snapshots deterministically (disjoint by
construction, emitted in shard order with sorted keys).
"""

from __future__ import annotations

import gc
import multiprocessing
from bisect import bisect_right
from collections import Counter
from time import perf_counter, time as wall_clock
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.messages import UpdateMessage
from ..bgp.prefix import Prefix, parse_ipv4
from ..bgp.roa import HashRoaTable, Roa, TrieRoaTable
from ..bgp.trie import PrefixTrie
from ..core.vmm import VmmConfig
from ..telemetry.health import QuarantinePolicy
from ..frr.attrs_intern import FrrAttrs
from ..telemetry.aggregate import merge_into, snapshot_registry
from ..telemetry.events import EventLog
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.timeseries import TimeSeriesSampler, merge_timeseries
from ..workload.rib_gen import RouteSpec, _attributes_for, build_updates
from .batch import BatchProcessor

__all__ = [
    "PartitionMap",
    "ShardedReplay",
    "ShardedResult",
    "build_scale_daemon",
    "intern_table_for",
    "normalise_snapshot",
    "split_update",
]

_UPSTREAM = "10.0.1.2"
_DUT = "10.0.0.1"
_DOWNSTREAM = "10.0.2.2"

#: Features a scale daemon knows how to wire, mapping to the five paper
#: plugins plus the bare pipeline.
FEATURES = (
    "plain",
    "route_reflection",
    "origin_validation",
    "valley_free",
    "geoloc",
    "closest_exit",
)


def _cover(start: int, end: int) -> Iterable[Prefix]:
    """Minimal aligned CIDR blocks covering the address range
    ``[start, end)``."""
    while start < end:
        align = (start & -start) or (1 << 32)
        size = 1 << ((end - start).bit_length() - 1)
        block = min(align, size)
        yield Prefix(start, 33 - block.bit_length())
        start += block


class PartitionMap:
    """Prefix-range → shard assignment, trie-backed."""

    def __init__(self, prefixes: Iterable[Prefix], shards: int) -> None:
        networks = sorted({prefix.network for prefix in prefixes})
        shards = max(1, int(shards))
        # Never more shards than distinct networks (an empty workload
        # degenerates to one shard owning the whole address space).
        shards = min(shards, len(networks)) if networks else 1
        # Cut addresses chosen so each range holds ~equal route count.
        cuts = [0]
        for index in range(1, shards):
            cut = networks[(index * len(networks)) // shards]
            if cut > cuts[-1]:
                cuts.append(cut)
        self.shards = len(cuts)
        self._cuts = cuts
        self._trie: PrefixTrie = PrefixTrie()
        bounds = cuts + [1 << 32]
        self.blocks: List[Tuple[Prefix, int]] = []
        for shard in range(self.shards):
            for block in _cover(bounds[shard], bounds[shard + 1]):
                self._trie.insert(block, shard)
                self.blocks.append((block, shard))

    def shard_of(self, prefix: Prefix) -> int:
        """The shard owning ``prefix`` (by its lowest address).

        Range ``[cuts[i], cuts[i+1])`` is shard ``i`` — a sorted-list
        bisect gives the same answer as the trie's longest-prefix match
        (asserted by the partition unit tests) at a fraction of the
        per-lookup cost, which matters when bucketing 724k routes.
        """
        if self.shards == 1:
            return 0
        return bisect_right(self._cuts, prefix.network) - 1


def split_update(update: UpdateMessage, pmap: PartitionMap) -> Dict[int, UpdateMessage]:
    """Partition one UPDATE's NLRI/withdrawals by shard.

    Attribute bytes are carried verbatim (the split messages share the
    original's raw wire), so per-shard decode sees exactly what the
    sequential path saw.
    """
    nlri: Dict[int, List[Prefix]] = {}
    withdrawn: Dict[int, List[Prefix]] = {}
    for prefix in update.withdrawn:
        withdrawn.setdefault(pmap.shard_of(prefix), []).append(prefix)
    for prefix in update.nlri:
        nlri.setdefault(pmap.shard_of(prefix), []).append(prefix)
    result: Dict[int, UpdateMessage] = {}
    for shard in sorted(set(nlri) | set(withdrawn)):
        message = UpdateMessage(
            withdrawn=withdrawn.get(shard, ()),
            attributes=update.attributes,
            nlri=nlri.get(shard, ()),
        )
        if update._attrs_wire is not None:
            message._attrs_wire = update._attrs_wire
        result[shard] = message
    return result


def intern_table_for(
    routes: Sequence[RouteSpec],
    next_hop: int,
    session: str = "ibgp",
    local_pref: Optional[int] = 100,
    sender_asn: Optional[int] = None,
) -> List[FrrAttrs]:
    """One parsed :class:`FrrAttrs` per distinct attribute set of the
    feed ``build_updates`` would build — the pickled intern table a
    shard worker seeds its :class:`AttrPool` with."""
    effective_local_pref = local_pref if session == "ibgp" else None
    first_asn = sender_asn if session == "ebgp" else None
    table: Dict[tuple, FrrAttrs] = {}
    for spec in routes:
        key = (spec.as_path, spec.origin, spec.med, spec.communities)
        if key not in table:
            attributes = _attributes_for(
                spec, next_hop, effective_local_pref, first_asn
            )
            table[key] = FrrAttrs.from_wire(attributes)
    return list(table.values())


class _Collector:
    """Downstream receive side: export sets without a sim dependency."""

    def __init__(self) -> None:
        self.prefixes: set = set()
        self.withdrawn: set = set()
        self.updates = 0
        self._buffer = bytearray()

    def receive(self, data: bytes) -> None:
        from ..bgp.messages import split_stream

        self._buffer.extend(data)
        for message in split_stream(self._buffer):
            if isinstance(message, UpdateMessage):
                self.updates += 1
                for prefix in message.nlri:
                    self.prefixes.add(prefix)
                for prefix in message.withdrawn:
                    self.prefixes.discard(prefix)
                    self.withdrawn.add(prefix)


def normalise_snapshot(snapshot) -> Dict[str, tuple]:
    """Loc-RIB snapshot in a picklable, order-insensitive form."""
    return {
        str(prefix): tuple(
            sorted((a.type_code, a.flags, a.value.hex()) for a in attributes)
        )
        for prefix, attributes in snapshot.items()
    }


def build_scale_daemon(config: Dict[str, object]):
    """Build and wire one DUT per the (picklable) shard ``config``.

    Returns ``(daemon, collector)``: upstream and downstream neighbors
    attached and established, the feature's plugin manifest (or native
    equivalent) installed — the same wiring as
    :class:`~repro.sim.harness.ConvergenceHarness`, extended to all
    five paper plugins.
    """
    from ..bird.daemon import BirdDaemon
    from ..frr.daemon import FrrDaemon
    from ..plugins import (
        closest_exit,
        faulty,
        geoloc,
        origin_validation,
        route_reflector,
        valley_free,
    )

    daemons = {"frr": FrrDaemon, "bird": BirdDaemon}
    implementation = str(config["implementation"])
    feature = str(config.get("feature", "plain"))
    mode = str(config.get("mode", "native"))
    tier = str(config.get("tier", "jit"))
    hot_path = bool(config.get("hot_path", True))
    roas: List[Roa] = list(config.get("roas") or [])
    coord = config.get("coord")
    if feature not in FEATURES:
        raise ValueError(f"unknown feature {feature!r}")

    quarantine_after = int(config.get("quarantine_after", 0))
    quarantine = (
        QuarantinePolicy(error_threshold=quarantine_after)
        if quarantine_after > 0
        else None
    )
    kwargs: Dict[str, object] = {
        "asn": 65001,
        "router_id": _DUT,
        "local_address": _DUT,
        "vmm_config": VmmConfig(
            tier=tier,
            telemetry=bool(config.get("telemetry", False)),
            fast_path=hot_path,
            lazy_heap=hot_path,
            quarantine=quarantine,
        ),
        "hot_path": hot_path,
        "provenance": bool(config.get("provenance", False)),
        "profiling": bool(config.get("profiling", False)),
    }
    if feature == "route_reflection":
        kwargs["route_reflector"] = mode
    if feature == "origin_validation" and mode == "native":
        table = TrieRoaTable() if implementation == "frr" else HashRoaTable()
        table.extend(roas)
        kwargs["roa_table"] = table
    if feature in ("geoloc", "closest_exit"):
        latitude, longitude = coord if coord is not None else (50.85, 4.35)
        kwargs["xtra"] = {"coord": geoloc.coord_bytes(latitude, longitude)}
    daemon = daemons[implementation](**kwargs)

    if mode == "extension" or feature in ("valley_free", "geoloc", "closest_exit"):
        if feature == "route_reflection":
            daemon.attach_manifest(route_reflector.build_manifest())
        elif feature == "origin_validation":
            daemon.attach_manifest(origin_validation.build_manifest(roas))
        elif feature == "valley_free":
            valley = config.get("valley") or {}
            daemon.attach_manifest(
                valley_free.build_manifest(
                    valley.get("up_edges", ()), valley.get("dc_ases", ())
                )
            )
        elif feature == "geoloc":
            daemon.attach_manifest(geoloc.build_manifest())
        elif feature == "closest_exit":
            daemon.attach_manifest(closest_exit.build_manifest())

    if bool(config.get("inject_crasher", False)):
        # Fault-injection drill: a crash-on-every-run filter rides along
        # at a late seq, so the breaker (when armed via quarantine_after)
        # has real faults to trip on.
        daemon.attach_manifest(faulty.build_manifest())

    collector = _Collector()
    session_asn = 65001 if feature == "route_reflection" else 65100
    downstream_asn = 65001 if feature == "route_reflection" else 65200
    upstream = daemon.add_neighbor(_UPSTREAM, session_asn, lambda data: None)
    downstream = daemon.add_neighbor(_DOWNSTREAM, downstream_asn, collector.receive)
    if feature == "route_reflection":
        upstream.rr_client = True
        downstream.rr_client = True
    for address in (_UPSTREAM, _DOWNSTREAM):
        daemon._established[parse_ipv4(address)] = True
        daemon.neighbors[parse_ipv4(address)].established = True
    return daemon, collector


def _replay_shard(payload) -> Dict[str, object]:
    """Worker: build a DUT, seed its attr pool from the shipped intern
    table, build + replay this shard's feed, return a picklable report.

    Module-level so ``multiprocessing`` can resolve it under any start
    method; also called directly by the inline backend.

    When the parent armed heartbeats (``heartbeat_every > 0`` and a
    queue was installed by :func:`_init_worker`), the worker announces
    ``shard_start``, streams ``shard_progress`` every N updates, and
    closes with ``shard_finish`` — the raw feed behind live progress,
    ETA, and the lifecycle event log.  When the daemon runs with
    telemetry on, the full registry (mergeable snapshot), the breaker
    table and the trace-ring tail ride back in the report.
    """
    config, shard, routes, intern_table = payload
    queue = _HEARTBEAT_QUEUE
    every = int(config.get("heartbeat_every", 0))
    heartbeat = queue is not None and every > 0

    def beat(kind: str, **fields: object) -> None:
        if heartbeat:
            queue.put({"event": kind, "ts": wall_clock(), "shard": shard, **fields})

    beat("shard_start", routes=len(routes))
    # The replay allocates millions of acyclic objects (routes, attrs,
    # messages); cyclic-gc passes over that live set are pure overhead,
    # so collection pauses for the duration (refcounting still frees
    # everything transient; a worker process exits right after anyway).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = perf_counter()
        daemon, collector = build_scale_daemon(config)
        shipped_hits = 0
        if intern_table is not None and hasattr(daemon, "attr_pool"):
            for attrs in intern_table:
                daemon.attr_pool.intern(attrs)
            shipped_hits = daemon.attr_pool.misses  # table size after dedup

        session = "ibgp" if config.get("feature") == "route_reflection" else "ebgp"
        updates = build_updates(
            routes,
            next_hop=parse_ipv4(_UPSTREAM),
            session=session,
            sender_asn=65100 if session == "ebgp" else None,
            max_prefixes_per_update=int(config.get("max_prefixes_per_update", 64)),
        )
        feed = []
        nlri_counts = []
        for update in updates:
            feed.append(update.encode())
            nlri_counts.append(len(update.nlri))
        feed.append(UpdateMessage.end_of_rib().encode())
        nlri_counts.append(0)
        build_seconds = perf_counter() - started

        batch = int(config.get("batch", 64))
        sample_every = int(config.get("timeseries_every", 0))
        sampler = None
        if sample_every > 0 and daemon.vmm.telemetry is not None:
            # Mid-replay samples of this worker's own registry; the
            # parent merges them into one shard-labeled time-series.
            sampler = TimeSeriesSampler(daemon.vmm.telemetry.registry)
        started = perf_counter()
        processor = None
        if batch > 1:
            processor = BatchProcessor(daemon, batch_size=batch)
            receive = processor.receive_raw
        else:
            receive = daemon.receive_raw
        if heartbeat or sampler is not None:
            routes_done = 0
            since_beat = 0
            since_sample = 0
            for index, payload_bytes in enumerate(feed):
                receive(_UPSTREAM, payload_bytes)
                routes_done += nlri_counts[index]
                since_beat += 1
                since_sample += 1
                if heartbeat and since_beat >= every:
                    since_beat = 0
                    beat("shard_progress", routes_done=routes_done, routes=len(routes))
                if sampler is not None and since_sample >= sample_every:
                    since_sample = 0
                    sampler.sample()
        else:
            for payload_bytes in feed:
                receive(_UPSTREAM, payload_bytes)
        if processor is not None:
            processor.flush()
            batches = processor.batches_flushed
        else:
            batches = 0
        replay_seconds = perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    beat(
        "shard_finish",
        routes=len(routes),
        replay_seconds=replay_seconds,
        build_seconds=build_seconds,
    )

    telemetry_report = None
    telemetry = daemon.vmm.telemetry
    if telemetry is not None:
        # Everything the PR 1/4/5 stack recorded in this process, in
        # picklable form: the registry as a mergeable snapshot, the
        # breaker table, and the tail of the trace ring.
        daemon.update_telemetry_gauges()
        tail = int(config.get("trace_tail", 256))
        if sampler is not None:
            # Final post-replay sample (gauges now up to date): the
            # merged series' last sample must carry the full totals.
            sampler.sample()
        telemetry_report = {
            "registry": snapshot_registry(telemetry.registry),
            "health": telemetry.health.snapshot(),
            "trace_tail": telemetry.trace.events()[-tail:] if tail > 0 else [],
            "trace_stats": telemetry.trace.stats(),
            "timeseries": sampler.series.samples() if sampler is not None else None,
        }

    pool = getattr(daemon, "attr_pool", None)
    profiler = getattr(daemon, "profiler", None)
    report: Dict[str, object] = {
        "profile": profiler.report(top=5) if profiler is not None else None,
        "shard": shard,
        "routes": len(routes),
        "updates": len(feed) - 1,
        "batches": batches,
        "build_seconds": build_seconds,
        "replay_seconds": replay_seconds,
        "stats": dict(daemon.stats),
        "fallbacks": daemon.vmm.fallbacks,
        "telemetry": telemetry_report,
        "attr_pool": {
            "hits": pool.hits if pool is not None else 0,
            "misses": pool.misses if pool is not None else 0,
            "interned_shipped": len(intern_table or ()),
            "seed_misses": shipped_hits,
        },
    }
    if str(config.get("collect", "full")) == "summary":
        # Benchmark mode: route-level state stays in the worker — a
        # 724k-entry snapshot costs seconds to marshal and pickle, and
        # the bench only needs counts for its convergence check.
        report["snapshot"] = None
        report["prefixes"] = None
        report["withdrawn"] = None
        report["loc_rib_count"] = len(daemon.loc_rib)
        report["prefix_count"] = len(collector.prefixes)
        report["withdrawn_count"] = len(collector.withdrawn)
    else:
        report["snapshot"] = normalise_snapshot(daemon.loc_rib_snapshot())
        report["prefixes"] = sorted(str(prefix) for prefix in collector.prefixes)
        report["withdrawn"] = sorted(str(prefix) for prefix in collector.withdrawn)
    return report


#: Payloads staged for fork-start workers (inherited, not pickled);
#: set only for the duration of a process-backend run.
_FORK_PAYLOADS: Optional[List[tuple]] = None

#: Heartbeat sink the current worker writes progress events to: a
#: ``multiprocessing.Queue`` installed by :func:`_init_worker` in pool
#: workers, a :class:`_CallbackQueue` for the inline backend, or None
#: (heartbeats off — the default, and free).
_HEARTBEAT_QUEUE = None


def _init_worker(queue) -> None:
    """Pool initializer: install the parent's heartbeat queue."""
    global _HEARTBEAT_QUEUE
    _HEARTBEAT_QUEUE = queue


class _CallbackQueue:
    """Queue-shaped shim delivering heartbeats synchronously (inline
    backend: worker and parent share one process)."""

    def __init__(self, deliver: Callable[[Dict[str, object]], None]) -> None:
        self._deliver = deliver

    def put(self, event: Dict[str, object]) -> None:
        self._deliver(event)


def _replay_shard_by_index(index: int) -> Dict[str, object]:
    """Fork-backend worker entry: resolve the payload from the memory
    inherited at fork time."""
    assert _FORK_PAYLOADS is not None
    return _replay_shard(_FORK_PAYLOADS[index])


class ShardedResult:
    """Deterministically merged outcome of a sharded replay."""

    __slots__ = (
        "snapshot",
        "prefixes",
        "withdrawn",
        "prefix_count",
        "withdrawn_count",
        "stats",
        "per_shard",
        "shards",
        "wall_seconds",
        "build_seconds",
        "replay_seconds",
        "telemetry",
        "shard_timeseries",
    )

    def __init__(self, per_shard: List[Dict[str, object]], wall_seconds: float):
        per_shard = sorted(per_shard, key=lambda report: report["shard"])
        summary = any(report["snapshot"] is None for report in per_shard)
        stats: Counter = Counter()
        if summary:
            # collect="summary": route-level state stayed in the workers;
            # shards are disjoint by construction, so the union counts
            # are plain sums.
            self.snapshot = None
            self.prefixes = None
            self.withdrawn = None
            self.prefix_count = sum(r["prefix_count"] for r in per_shard)
            self.withdrawn_count = sum(r["withdrawn_count"] for r in per_shard)
            for report in per_shard:
                stats.update(report["stats"])
        else:
            snapshot: Dict[str, tuple] = {}
            prefixes: set = set()
            withdrawn: set = set()
            for report in per_shard:
                shard_snapshot = report["snapshot"]
                overlap = snapshot.keys() & shard_snapshot.keys()
                if overlap:  # partition invariant: shards own disjoint prefixes
                    raise RuntimeError(f"shards overlap on {sorted(overlap)[:3]}")
                snapshot.update(shard_snapshot)
                prefixes.update(report["prefixes"])
                withdrawn.update(report["withdrawn"])
                stats.update(report["stats"])
            self.snapshot = {key: snapshot[key] for key in sorted(snapshot)}
            self.prefixes = prefixes
            self.withdrawn = withdrawn
            self.prefix_count = len(prefixes)
            self.withdrawn_count = len(withdrawn)
        self.stats = stats
        self.per_shard = per_shard
        self.shards = len(per_shard)
        self.wall_seconds = wall_seconds
        self.build_seconds = max(
            (report["build_seconds"] for report in per_shard), default=0.0
        )
        self.replay_seconds = max(
            (report["replay_seconds"] for report in per_shard), default=0.0
        )
        self.telemetry = self._merge_telemetry(per_shard)
        self.shard_timeseries = self._collect_timeseries(per_shard)

    @staticmethod
    def _collect_timeseries(
        per_shard: List[Dict[str, object]],
    ) -> Optional[List[List[Dict[str, object]]]]:
        """Per-shard sample lists, positionally indexed by shard (None
        when workers ran without time-series sampling)."""
        series = [
            (report.get("telemetry") or {}).get("timeseries")
            for report in per_shard
        ]
        if not any(series):
            return None
        return [samples or [] for samples in series]

    @staticmethod
    def _merge_telemetry(
        per_shard: List[Dict[str, object]],
    ) -> Optional[Dict[str, object]]:
        """One shard-labeled registry + tagged health/trace rows from
        the per-worker telemetry reports (None when workers ran with
        telemetry off)."""
        shipped = [
            (report["shard"], report["telemetry"])
            for report in per_shard
            if report.get("telemetry") is not None
        ]
        if not shipped:
            return None
        registry = MetricsRegistry()
        health: List[Dict[str, object]] = []
        trace_tail: List[Dict[str, object]] = []
        for shard, worker in shipped:
            merge_into(
                registry, worker["registry"], labels={"shard": str(shard)}
            )
            for row in worker["health"]:
                tagged = dict(row)
                tagged["shard"] = shard
                health.append(tagged)
            for event in worker["trace_tail"]:
                tagged = dict(event)
                tagged["shard"] = shard
                trace_tail.append(tagged)
        return {
            "registry": snapshot_registry(registry),
            "health": health,
            "trace_tail": trace_tail,
        }

    def merged_registry(self, shard_labels: bool = True) -> MetricsRegistry:
        """The cross-shard registry as a live :class:`MetricsRegistry`.

        ``shard_labels=True`` keeps the per-shard origin label (what
        ``/metrics`` serves); ``shard_labels=False`` re-merges the raw
        worker snapshots without the stamp — counters become plain
        cross-shard sums, directly comparable to a sequential replay's
        registry (the batch-parity suite pins this equality).
        """
        if self.telemetry is None:
            raise RuntimeError("workers ran with telemetry off")
        registry = MetricsRegistry()
        if shard_labels:
            merge_into(registry, self.telemetry["registry"])
            return registry
        for report in self.per_shard:
            worker = report.get("telemetry")
            if worker is not None:
                merge_into(registry, worker["registry"])
        return registry

    def merged_timeseries(
        self, shard_labels: bool = True
    ) -> List[Dict[str, object]]:
        """The cross-shard time-series, merged at the union of sample
        instants (last-carried-forward per shard; see
        :func:`~repro.telemetry.timeseries.merge_timeseries`).

        ``shard_labels=False`` drops the per-shard stamp so the final
        sample's counters are plain cross-shard sums — directly equal
        to a sequential replay's final sample (pinned by the telemetry
        plane integration suite).
        """
        if self.shard_timeseries is None:
            raise RuntimeError("workers ran without time-series sampling")
        return merge_timeseries(
            self.shard_timeseries, shard_labels=shard_labels
        )


class ShardedReplay:
    """Partition a workload by prefix range and replay each bucket
    through its own daemon.

    ``backend="process"`` runs one ``multiprocessing`` worker per shard
    (start method: fork where available, never more worker processes
    than cores); ``backend="inline"`` runs the same worker function
    in-process — same code path minus the process boundary, used by the
    fuzz oracle and for debugging.

    ``ship_intern_table=True`` pre-parses each shard's distinct
    attribute sets in the parent and seeds the worker's
    :class:`AttrPool` with them.  Off by default: every set it ships is
    one the worker would have parsed exactly once anyway, so the knob
    trades serial parent time for worker time — measured as a flat loss
    on the full-table workload (the parent becomes the bottleneck even
    with parallel workers).  The mechanism stays because it demonstrates
    interned attributes surviving the process boundary, which the scale
    tests pin.
    """

    def __init__(
        self,
        implementation: str,
        routes: Sequence[RouteSpec],
        *,
        feature: str = "plain",
        mode: str = "native",
        roas: Optional[Sequence[Roa]] = None,
        coord: Optional[Tuple[float, float]] = None,
        valley: Optional[Dict[str, object]] = None,
        shards: int = 2,
        batch: int = 64,
        tier: str = "jit",
        hot_path: bool = True,
        max_prefixes_per_update: int = 64,
        backend: str = "process",
        ship_intern_table: bool = False,
        profiling: bool = False,
        collect: str = "full",
        telemetry: bool = False,
        heartbeat_every: int = 0,
        timeseries_every: int = 0,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
        events: Optional[EventLog] = None,
        trace_tail: int = 256,
        quarantine_after: int = 0,
        inject_crasher: bool = False,
    ) -> None:
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if collect not in ("full", "summary"):
            raise ValueError(f"unknown collect mode {collect!r}")
        self.implementation = implementation
        self.routes = list(routes)
        self.backend = backend
        self.batch = batch
        self.ship_intern_table = ship_intern_table and implementation == "frr"
        self.progress = progress
        self.events = events
        if heartbeat_every <= 0 and (progress is not None or events is not None):
            # A sink was attached but no cadence chosen: a sensible
            # default beats silently never hearing from the workers.
            heartbeat_every = 500
        self.heartbeat_every = heartbeat_every
        self.partition = PartitionMap(
            (spec.prefix for spec in self.routes), shards
        )
        self.config: Dict[str, object] = {
            "implementation": implementation,
            "feature": feature,
            "mode": mode,
            "tier": tier,
            "hot_path": hot_path,
            "roas": list(roas or []),
            "coord": coord,
            "valley": valley,
            "batch": batch,
            "max_prefixes_per_update": max_prefixes_per_update,
            "telemetry": bool(telemetry),
            "heartbeat_every": heartbeat_every,
            "timeseries_every": int(timeseries_every),
            "trace_tail": trace_tail,
            "profiling": profiling,
            "collect": collect,
            "quarantine_after": int(quarantine_after),
            "inject_crasher": bool(inject_crasher),
        }

    def _payloads(self) -> List[tuple]:
        buckets: List[List[RouteSpec]] = [
            [] for _ in range(self.partition.shards)
        ]
        shard_of = self.partition.shard_of
        for spec in self.routes:
            buckets[shard_of(spec.prefix)].append(spec)
        session = (
            "ibgp" if self.config["feature"] == "route_reflection" else "ebgp"
        )
        payloads = []
        for shard, bucket in enumerate(buckets):
            table = None
            if self.ship_intern_table:
                table = intern_table_for(
                    bucket,
                    next_hop=parse_ipv4(_UPSTREAM),
                    session=session,
                    sender_asn=65100 if session == "ebgp" else None,
                )
            payloads.append((self.config, shard, bucket, table))
        return payloads

    def _emit(self, event: Dict[str, object]) -> None:
        """Deliver one heartbeat to the attached sinks (parent side)."""
        if self.events is not None:
            self.events.append(dict(event))
        if self.progress is not None:
            self.progress(event)

    def run(self) -> ShardedResult:
        started = perf_counter()
        payloads = self._payloads()
        self._emit(
            {
                "event": "replay_start",
                "ts": wall_clock(),
                "shards": self.partition.shards,
                "routes": len(self.routes),
            }
        )
        if self.backend == "inline" or self.partition.shards == 1:
            global _HEARTBEAT_QUEUE
            saved = _HEARTBEAT_QUEUE
            _HEARTBEAT_QUEUE = (
                _CallbackQueue(self._emit) if self.heartbeat_every > 0 else None
            )
            try:
                reports = [_replay_shard(payload) for payload in payloads]
            finally:
                _HEARTBEAT_QUEUE = saved
        else:
            reports = self._run_pool(payloads)
        wall_seconds = perf_counter() - started
        self._emit(
            {
                "event": "replay_finish",
                "ts": wall_clock(),
                "shards": self.partition.shards,
                "routes": len(self.routes),
                "wall_seconds": wall_seconds,
            }
        )
        return ShardedResult(reports, wall_seconds)

    def _run_pool(self, payloads: List[tuple]) -> List[Dict[str, object]]:
        import os
        from queue import Empty

        # Never oversubscribe: with more workers than cores the
        # shards time-slice, and their large working sets thrash
        # the caches against each other (measured ~2.3x per-shard
        # inflation at 4 shards on 1 core).  Excess shards queue
        # and run at solo speed instead.
        processes = min(self.partition.shards, os.cpu_count() or 1)
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(start_method)
        manager = context.Manager() if self.heartbeat_every > 0 else None
        heartbeats = manager.Queue() if manager is not None else None
        initializer = _init_worker if heartbeats is not None else None
        initargs = (heartbeats,) if heartbeats is not None else ()

        def drain(block: bool) -> None:
            while True:
                try:
                    event = (
                        heartbeats.get(timeout=0.2)
                        if block
                        else heartbeats.get_nowait()
                    )
                except Empty:
                    return
                self._emit(event)
                block = False

        def wait_and_drain(pending) -> List[Dict[str, object]]:
            if heartbeats is None:
                return pending.get()
            while not pending.ready():
                drain(block=True)
            drain(block=False)
            return pending.get()

        try:
            if start_method == "fork":
                # Forked workers inherit the parent's memory, so the
                # payloads (181k RouteSpecs per shard at full-table
                # scale) ride the fork for free instead of being
                # pickled through the Pool's pipe; only the shard
                # index crosses it.
                global _FORK_PAYLOADS
                _FORK_PAYLOADS = payloads
                try:
                    with context.Pool(
                        processes=processes,
                        maxtasksperchild=1,
                        initializer=initializer,
                        initargs=initargs,
                    ) as pool:
                        reports = wait_and_drain(
                            pool.map_async(
                                _replay_shard_by_index,
                                range(len(payloads)),
                                chunksize=1,
                            )
                        )
                finally:
                    _FORK_PAYLOADS = None
            else:
                with context.Pool(
                    processes=processes,
                    maxtasksperchild=1,
                    initializer=initializer,
                    initargs=initargs,
                ) as pool:
                    reports = wait_and_drain(
                        pool.map_async(_replay_shard, payloads, chunksize=1)
                    )
        finally:
            if manager is not None:
                manager.shutdown()
        return reports
