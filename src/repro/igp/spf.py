"""Shortest-path-first computation and per-router IGP views.

Plain Dijkstra over :class:`IgpTopology` with an invalidating cache:
recomputation happens lazily after topology edits, mimicking the SPF
runs of a link-state IGP.  :class:`IgpView` is the per-router object a
BGP daemon holds; its :meth:`metric_to` answers both the native
decision process (IGP metric tie-break) and the xBGP ``get_nexthop``
helper.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

from .graph import IgpTopology

__all__ = ["Spf", "IgpView", "UNREACHABLE"]

#: Metric reported for unreachable next hops.
UNREACHABLE = 0xFFFFFFFF


class Spf:
    """Dijkstra engine with a per-source cache over one topology."""

    def __init__(self, topology: IgpTopology):
        self._topology = topology
        self._cache: Dict[str, Dict[str, Tuple[int, Optional[str]]]] = {}
        self._generation = 0

    def invalidate(self) -> None:
        """Drop cached trees (call after any topology change)."""
        self._cache.clear()
        self._generation += 1

    @property
    def generation(self) -> int:
        return self._generation

    def tree(self, source: str) -> Dict[str, Tuple[int, Optional[str]]]:
        """Map node -> (distance, first-hop) from ``source``."""
        cached = self._cache.get(source)
        if cached is not None:
            return cached
        distances: Dict[str, Tuple[int, Optional[str]]] = {}
        heap: list = [(0, source, None)]
        while heap:
            distance, node, first_hop = heapq.heappop(heap)
            if node in distances:
                continue  # lazy deletion: already settled with a shorter path
            distances[node] = (distance, first_hop)
            for neighbor, cost in self._topology.neighbors(node).items():
                if neighbor in distances:
                    continue
                hop = neighbor if first_hop is None else first_hop
                heapq.heappush(heap, (distance + cost, neighbor, hop))
        return self._cache.setdefault(source, distances)

    def distance(self, source: str, target: str) -> int:
        entry = self.tree(source).get(target)
        return UNREACHABLE if entry is None else entry[0]


class IgpView:
    """One router's view of the IGP: metric to any loopback address."""

    def __init__(self, spf: Spf, topology: IgpTopology, node: str):
        if node not in topology:
            raise KeyError(f"unknown node {node!r}")
        self._spf = spf
        self._topology = topology
        self.node = node

    def metric_to(self, address: int) -> int:
        """IGP metric to the router owning loopback ``address``.

        Returns :data:`UNREACHABLE` for unknown or disconnected
        addresses (never raises: the decision process treats huge
        metrics as "worst").
        """
        target = self._topology.node_by_address(address)
        if target is None:
            return UNREACHABLE
        return self._spf.distance(self.node, target)

    def reachable(self, address: int) -> bool:
        return self.metric_to(address) != UNREACHABLE
