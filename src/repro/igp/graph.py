"""Weighted IGP topology.

A thin adjacency-map graph with named nodes, loopback addresses and
symmetric (or asymmetric) link costs — enough to model the §3.1
scenario: an ISP whose transatlantic links carry cost 1000 so the
export filter can recognise "learned on another continent".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..bgp.prefix import parse_ipv4

__all__ = ["IgpTopology"]


class IgpTopology:
    """Nodes with loopback addresses, links with costs."""

    def __init__(self) -> None:
        self._adjacency: Dict[str, Dict[str, int]] = {}
        self._loopbacks: Dict[str, int] = {}
        self._by_address: Dict[int, str] = {}

    def add_node(self, name: str, loopback: str) -> None:
        if name in self._adjacency:
            raise ValueError(f"duplicate node {name!r}")
        address = parse_ipv4(loopback)
        if address in self._by_address:
            raise ValueError(f"duplicate loopback {loopback}")
        self._adjacency[name] = {}
        self._loopbacks[name] = address
        self._by_address[address] = name

    def add_link(self, a: str, b: str, cost: int, cost_back: Optional[int] = None) -> None:
        """Add a link; symmetric unless ``cost_back`` differs."""
        if a not in self._adjacency or b not in self._adjacency:
            raise KeyError(f"unknown node in link {a}-{b}")
        if cost <= 0:
            raise ValueError(f"cost must be positive: {cost}")
        self._adjacency[a][b] = cost
        self._adjacency[b][a] = cost if cost_back is None else cost_back

    def remove_link(self, a: str, b: str) -> None:
        self._adjacency[a].pop(b, None)
        self._adjacency[b].pop(a, None)

    def set_cost(self, a: str, b: str, cost: int) -> None:
        if b not in self._adjacency.get(a, {}):
            raise KeyError(f"no link {a}-{b}")
        self._adjacency[a][b] = cost
        self._adjacency[b][a] = cost

    # -- queries -------------------------------------------------------

    def nodes(self) -> Iterator[str]:
        yield from self._adjacency.keys()

    def neighbors(self, name: str) -> Dict[str, int]:
        return dict(self._adjacency[name])

    def loopback(self, name: str) -> int:
        return self._loopbacks[name]

    def node_by_address(self, address: int) -> Optional[str]:
        return self._by_address.get(address)

    def edges(self) -> Iterator[Tuple[str, str, int]]:
        for a, links in self._adjacency.items():
            for b, cost in links.items():
                if a < b:
                    yield a, b, cost

    def __contains__(self, name: str) -> bool:
        return name in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)
