"""IGP substrate: weighted topology plus SPF (Dijkstra) views.

Provides the ``igp_metric`` the BGP decision process and the xBGP
``get_nexthop`` helper consult, and the knob §3.1's use case turns
(transatlantic links configured with cost 1000).
"""

from .graph import IgpTopology
from .spf import UNREACHABLE, IgpView, Spf

__all__ = ["IgpTopology", "IgpView", "Spf", "UNREACHABLE"]
