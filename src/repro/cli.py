"""Command-line tools: ``xbgp <subcommand>``.

Subcommands:

* ``compile``  — compile an xc source file to eBPF bytecode (hex) or
  disassembly, with ``-D NAME=VALUE`` constants;
* ``disasm``   — disassemble bytecode hex;
* ``verify``   — run the static verifier over bytecode hex;
* ``fig1``     — print the Fig. 1 standardization-delay CDF;
* ``fig4``     — run one Fig. 4 cell (implementation × feature ×
  engine) and print the paper-style row;
* ``gen-table`` — generate a synthetic RIS-like table and write it as
  an MRT TABLE_DUMP_V2 file;
* ``loc``      — print the §2.1 glue-size report;
* ``stats``    — drive one harness scenario and print the VMM's
  telemetry (per-insertion-point/extension counters, latency
  histograms, quarantine state) as Prometheus text and/or JSON;
  ``--merge`` instead aggregates registry snapshot files offline and
  ``--diff A B`` prints what moved between two recorded runs;
* ``events``   — tail, filter, validate or convert a JSONL structured
  event log (replay/shard lifecycle, batch flushes, quarantine trips,
  convergence signals);
* ``explain``  — drive a provenance-enabled route-reflection scenario
  and reconstruct the full causal chain behind a prefix: peer →
  extension runs → attribute deltas → decision verdict → exports;
* ``spans``    — same scenario, but print the cross-router span tree
  (or export it as JSON Lines);
* ``fuzz``     — run a differential fuzzing campaign over the codec
  round-trip, interpreter-vs-JIT and FRR-vs-BIRD oracles; prints a
  JSON report, writes minimized divergences to a corpus directory,
  exits non-zero if any divergence was found;
* ``profile``  — drive one scenario with the profiler on and print the
  hot-path phase breakdown plus per-extension PC/block-level hotspots
  (optionally a collapsed-stack file for speedscope/flamegraph.pl);
* ``bench``    — run one scenario as a benchmark; ``--record`` writes
  a schema'd ``BENCH_<scenario>.json``, ``--compare`` diffs against a
  committed baseline and exits non-zero past the noise threshold;
  ``--telemetry``/``--serve``/``--events`` attach the cross-process
  telemetry plane (merged worker registries, live progress over HTTP,
  streamed lifecycle events); ``--timeseries`` samples the registry
  into a time-series (served at ``/timeseries``, recordable as JSONL)
  and ``--alert``/``--alert-rules`` evaluate declarative alert rules
  over it — a fired critical rule makes the bench exit non-zero;
* ``top``      — live ANSI dashboard (progress bars, rate sparklines,
  histogram quantiles, firing alerts) over a live exporter URL or a
  recorded time-series file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .core.abi import HELPER_IDS, PLUGIN_CONSTANTS

__all__ = ["main"]


def _parse_defines(pairs: List[str]) -> Dict[str, int]:
    constants = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"bad -D {pair!r}: expected NAME=VALUE")
        constants[name] = int(value, 0)
    return constants


def _cmd_compile(args) -> int:
    from .ebpf.disassembler import disassemble
    from .ebpf.isa import encode_program
    from .xc import compile_source

    with open(args.source) as handle:
        source = handle.read()
    constants = dict(PLUGIN_CONSTANTS)
    constants.update(_parse_defines(args.define))
    program = compile_source(source, HELPER_IDS, constants)
    if args.disasm:
        names = {helper_id: name for name, helper_id in HELPER_IDS.items()}
        output = disassemble(program, names) + "\n"
    else:
        output = encode_program(program).hex() + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    print(f"# {len(program)} instructions", file=sys.stderr)
    return 0


def _read_bytecode(path: str):
    from .ebpf.isa import decode_program

    with open(path) as handle:
        text = handle.read().strip()
    return decode_program(bytes.fromhex(text))


def _cmd_disasm(args) -> int:
    from .ebpf.disassembler import disassemble

    names = {helper_id: name for name, helper_id in HELPER_IDS.items()}
    print(disassemble(_read_bytecode(args.bytecode), names))
    return 0


def _cmd_verify(args) -> int:
    from .ebpf.verifier import VerifierConfig, VerifierError, verify

    program = _read_bytecode(args.bytecode)
    config = VerifierConfig(
        allow_loops=not args.no_loops,
        allowed_helpers=set(HELPER_IDS.values()),
    )
    try:
        verify(program, config)
    except VerifierError as exc:
        print(f"REJECTED: {exc}")
        return 1
    print(f"OK: {len(program)} instructions verified")
    return 0


def _cmd_fig1(args) -> int:
    from .eval import fig1

    print(fig1.render_table())
    return 0


def _cmd_fig4(args) -> int:
    from .bgp.roa import make_roas_for_prefixes
    from .eval import fig4
    from .workload import RibGenerator, origins_of

    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    roas = None
    if args.feature == "origin_validation":
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=args.seed)
    result = fig4.run_cell(
        args.implementation, args.feature, routes, roas, runs=args.runs, engine=args.engine
    )
    print(fig4.render_table([result], args.routes, args.runs))
    return 0


def _cmd_gen_table(args) -> int:
    from .bgp.prefix import parse_ipv4
    from .mrt import MrtPeer, RibEntry, write_table
    from .workload import RibGenerator, build_updates

    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    peer_address = parse_ipv4("10.0.0.9")
    updates = build_updates(routes, next_hop=peer_address, session="ebgp", sender_asn=65100)
    written = 0

    def entries():
        # Streamed into write_table one record at a time, so a full
        # 724k-route table never materializes as RibEntry rows.
        nonlocal written
        for update in updates:
            for prefix in update.nlri:
                written += 1
                yield RibEntry(prefix, 0, args.timestamp, update.attributes)

    with open(args.output, "wb") as handle:
        write_table(
            handle,
            [MrtPeer(peer_address, peer_address, 65100)],
            entries(),
            timestamp=args.timestamp,
        )
    print(f"wrote {written} RIB entries to {args.output}")
    return 0


def _cmd_loc(args) -> int:
    from .eval import loc_report

    print(loc_report.render_table())
    return 0


def _merge_stats(args) -> int:
    """Offline aggregation: merge registry snapshots from files.

    Accepts both raw mergeable snapshots (``MetricsRegistry.snapshot``
    output) and full ``xbgp stats`` JSON documents (their ``registry``
    key) — the same merge core the sharded replay uses in-process.
    """
    import json as _json

    from .telemetry import merge_into, render_prometheus, snapshot_registry
    from .telemetry.metrics import MetricsRegistry

    snapshots = []
    for path in args.merge:
        with open(path) as handle:
            try:
                document = _json.load(handle)
            except _json.JSONDecodeError as exc:
                raise SystemExit(f"xbgp stats: {path}: not JSON ({exc})")
        if isinstance(document, dict) and "registry" in document:
            document = document["registry"]
        if not isinstance(document, dict) or "families" not in document:
            raise SystemExit(
                f"xbgp stats: {path}: neither a registry snapshot nor a "
                "stats document with a 'registry' key"
            )
        snapshots.append(document)
    merged = MetricsRegistry()
    try:
        for snapshot in snapshots:
            merge_into(merged, snapshot)
    except ValueError as exc:
        raise SystemExit(f"xbgp stats: merge failed: {exc}")
    sections: List[str] = []
    if args.format in ("prom", "both"):
        sections.append(render_prometheus(merged))
    if args.format in ("json", "both"):
        sections.append(_json.dumps(snapshot_registry(merged), indent=2) + "\n")
    output = "".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"# merged stats written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    return 0


def _diff_stats(args) -> int:
    """``xbgp stats --diff A B``: what changed between two runs."""
    import json as _json

    from .telemetry.timeseries import (
        diff_samples,
        load_snapshot_source,
        render_diff,
    )

    before_path, after_path = args.diff
    try:
        before = load_snapshot_source(before_path)
        after = load_snapshot_source(after_path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"xbgp stats: {exc}")
    diff = diff_samples(before, after)
    if args.format == "json":
        output = _json.dumps(diff, indent=2, sort_keys=True) + "\n"
    else:
        output = render_diff(diff) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"# diff written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    print(
        f"# {len(diff['changes'])} changed series, "
        f"{len(diff['added_families'])} added / "
        f"{len(diff['removed_families'])} removed families",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args) -> int:
    """Run one convergence scenario and expose its telemetry."""
    import json as _json

    from .bgp.roa import make_roas_for_prefixes
    from .sim.harness import ConvergenceHarness
    from .telemetry import QuarantinePolicy
    from .workload import RibGenerator, origins_of

    if args.merge and args.diff:
        raise SystemExit("xbgp stats: --merge and --diff are exclusive")
    if args.merge:
        return _merge_stats(args)
    if args.diff:
        return _diff_stats(args)
    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    roas = None
    if args.feature == "origin_validation":
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=args.seed)
    quarantine = None
    if args.quarantine_after < 0:
        raise SystemExit("xbgp stats: --quarantine-after must be >= 0")
    if args.quarantine_after:
        quarantine = QuarantinePolicy(error_threshold=args.quarantine_after)
    harness = ConvergenceHarness(
        args.implementation,
        args.feature,
        args.mode,
        routes,
        roas,
        engine=args.engine,
        quarantine=quarantine,
    )
    elapsed = harness.run()
    telemetry = harness.dut.vmm.telemetry
    if args.health:
        # Quarantine / circuit-breaker state only (ExtensionHealth).
        rows = telemetry.health.snapshot()
        if not rows:
            print("no extensions attached")
            return 0
        header = f"{'POINT':<24} {'EXTENSION':<20} {'STATE':<10} {'ERRS':>5} {'SKIPPED':>8} {'QUARANTINES':>12}"
        print(header)
        for row in rows:
            print(
                f"{row['point']:<24} {row['extension']:<20} {row['state']:<10} "
                f"{row['consecutive_errors']:>5} {row['skipped']:>8} "
                f"{row['quarantine_count']:>12}"
            )
        quarantined = harness.dut.vmm.quarantined_codes()
        print(
            f"# {len(rows)} extension(s), {len(quarantined)} quarantined"
            + (f": {', '.join(map(str, quarantined))}" if quarantined else "")
        )
        return 0
    if args.trace_out:
        count = telemetry.trace.export_jsonl(args.trace_out)
        print(f"# wrote {count} trace events to {args.trace_out}", file=sys.stderr)
    sections: List[str] = []
    if args.format in ("prom", "both"):
        sections.append(telemetry.render_prometheus())
    if args.format in ("json", "both"):
        snapshot = telemetry.snapshot()
        snapshot["run"] = {
            "implementation": args.implementation,
            "feature": args.feature,
            "mode": args.mode,
            "engine": args.engine,
            "routes": args.routes,
            "elapsed_seconds": elapsed,
            "vmm": {
                "codes": harness.dut.vmm.stats(),
                "points": harness.dut.vmm.point_stats(),
                "quarantined": harness.dut.vmm.quarantined_codes(),
            },
        }
        sections.append(_json.dumps(snapshot, indent=2) + "\n")
    output = "".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"# stats written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    return 0


def _cmd_events(args) -> int:
    """Tail / filter / validate / convert a JSONL event log."""
    import json as _json

    from .telemetry.events import (
        EventSchemaError,
        filter_events,
        read_events,
        render_event,
        rotated_paths,
        validate_jsonl,
    )

    if args.validate:
        # A rotated log is a pair (events.jsonl.1 then events.jsonl);
        # validate whatever portion of the pair exists, oldest first.
        paths = rotated_paths(args.log)
        valid, errors = 0, []
        for path in paths:
            try:
                file_valid, file_errors = validate_jsonl(path)
            except OSError as exc:
                raise SystemExit(f"xbgp events: {exc}")
            valid += file_valid
            errors.extend(f"{path}: {error}" for error in file_errors)
        for error in errors:
            print(error, file=sys.stderr)
        suffix = f" across {len(paths)} file(s)" if len(paths) > 1 else ""
        print(f"# {valid} valid event(s), {len(errors)} error(s){suffix}")
        return 1 if errors else 0
    try:
        events = read_events(args.log)
    except OSError as exc:
        raise SystemExit(f"xbgp events: {exc}")
    except EventSchemaError as exc:
        raise SystemExit(f"xbgp events: {exc}")
    kinds = [k for part in args.type for k in part.split(",") if k] or None
    events = filter_events(events, kinds=kinds, shard=args.shard)
    if args.tail:
        events = events[-args.tail:]
    if args.format == "text":
        for event in events:
            print(render_event(event))
    elif args.format == "jsonl":
        for event in events:
            print(_json.dumps(event))
    else:
        print(_json.dumps(events, indent=2))
    print(f"# {len(events)} event(s)", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    """Reconstruct the causal chain behind one prefix (provenance)."""
    import json as _json

    from .bgp.prefix import Prefix
    from .sim.harness import build_explain_scenario

    try:
        prefix = Prefix.parse(args.prefix)
    except ValueError as exc:
        raise SystemExit(f"xbgp explain: bad prefix {args.prefix!r}: {exc}")
    network, up, dut, down = build_explain_scenario(
        args.implementation, prefix, engine=args.engine
    )
    routers = {"up": up, "dut": dut, "down": down}
    tracker = routers[args.router].provenance
    if args.output:
        count = tracker.export_jsonl(args.output)
        print(f"# wrote {count} provenance records to {args.output}", file=sys.stderr)
    if args.json:
        print(_json.dumps(tracker.explain(prefix), indent=2))
    else:
        print(tracker.render_explain(prefix))
    return 0


def _cmd_spans(args) -> int:
    """Print (or export) the cross-router span tree for one prefix."""
    from .bgp.prefix import Prefix
    from .sim.harness import build_explain_scenario

    try:
        prefix = Prefix.parse(args.prefix)
    except ValueError as exc:
        raise SystemExit(f"xbgp spans: bad prefix {args.prefix!r}: {exc}")
    network, up, dut, down = build_explain_scenario(
        args.implementation, prefix, engine=args.engine
    )
    routers = (("up", up), ("dut", dut), ("down", down))
    if args.output:
        import json as _json

        total = 0
        with open(args.output, "w") as handle:
            for name, daemon in routers:
                for span in daemon.provenance.spans.spans():
                    handle.write(_json.dumps({"node": name, **span}) + "\n")
                    total += 1
        print(f"# wrote {total} spans to {args.output}", file=sys.stderr)
        return 0
    for name, daemon in routers:
        recorder = daemon.provenance.spans
        print(f"{name} ({daemon.provenance.router}): {len(recorder)} span(s)")
        for span in recorder.spans():
            duration = span.get("end", span["start"]) - span["start"]
            detail = " ".join(
                f"{key}={span[key]}"
                for key in ("peer", "prefix", "point", "extension", "outcome")
                if span.get(key) is not None
            )
            print(
                f"  [{span['trace']}] {span['span']} "
                f"<- {span['parent'] or 'root'} {span['kind']} "
                f"({duration * 1000:.3f}ms){' ' + detail if detail else ''}"
            )
    return 0


def _cmd_fuzz(args) -> int:
    """Run a differential fuzzing campaign (see repro.fuzz)."""
    import json as _json

    from .fuzz import FuzzRunner

    oracles = tuple(part.strip() for part in args.oracles.split(",") if part.strip())
    try:
        runner = FuzzRunner(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            oracles=oracles,
            corpus_dir=args.corpus,
            minimize=not args.no_minimize,
        )
    except ValueError as exc:
        raise SystemExit(f"xbgp fuzz: {exc}")
    report = runner.run()
    rendered = _json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(rendered + "\n")
        print(f"# report written to {args.report}", file=sys.stderr)
    print(rendered)
    summary = (
        f"# {report['iterations_run']} cases "
        f"({', '.join(f'{k}={v}' for k, v in report['cases'].items())}) "
        f"in {report['elapsed_seconds']}s: "
        f"{len(report['divergences'])} unique divergence(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if report["divergences"] else 0


_SCENARIO_FEATURES = {
    "route-reflection": "route_reflection",
    "origin-validation": "origin_validation",
    "full-table": "plain",
}


def _scenario_routes(args):
    """Resolve the scenario's route table once per CLI invocation.

    bench builds a fresh harness per run; caching on the parsed-args
    namespace keeps a 724k-route table from being regenerated (or an
    MRT dump re-read) for every repetition.
    """
    routes = getattr(args, "_routes_cache", None)
    if routes is None:
        if getattr(args, "mrt", None):
            from .workload import iter_routes_from_mrt

            routes = list(iter_routes_from_mrt(args.mrt))
            args.routes = len(routes)  # report the true table size
        else:
            from .workload import RibGenerator

            routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
        args._routes_cache = routes
    return routes


def _scenario_harness(args, profiling=False, events=None, progress=None):
    """Build a ConvergenceHarness for a profile/bench scenario slug."""
    from .bgp.roa import make_roas_for_prefixes
    from .sim.harness import ConvergenceHarness
    from .workload import origins_of

    feature = _SCENARIO_FEATURES[args.scenario]
    routes = _scenario_routes(args)
    roas = None
    if feature == "origin_validation":
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=args.seed)
    # "plain" carries no extension; run it as the native baseline so the
    # full-table scenario measures the batched/sharded pipeline itself.
    mode = "native" if feature == "plain" else "extension"
    return ConvergenceHarness(
        args.impl,
        feature,
        mode,
        routes,
        roas,
        engine=args.engine,
        profiling=profiling,
        batch=getattr(args, "batch", 1),
        shards=getattr(args, "shards", 1),
        # bench/profile only need timings and counts: keep per-route
        # state in the workers instead of marshalling 724k-entry
        # snapshots through the Pool pipe.
        shard_collect="summary",
        shard_telemetry=getattr(args, "telemetry", False),
        events=events,
        progress=progress,
        timeseries_every=getattr(args, "_timeseries_every", 0),
        quarantine_after=getattr(args, "quarantine_after", 0),
        inject_crasher=getattr(args, "inject_crasher", False),
    )


def _cmd_profile(args) -> int:
    """Profile one scenario: phases, hotspots, collapsed stacks."""
    import json as _json

    harness = _scenario_harness(args, profiling=True)
    elapsed = harness.run()
    profiler = harness.dut.profiler
    if args.flamegraph:
        count = profiler.export_collapsed(args.flamegraph, weights=args.weights)
        print(
            f"# wrote {count} collapsed-stack lines to {args.flamegraph}",
            file=sys.stderr,
        )
    if args.format == "json":
        report = profiler.report(top=args.top)
        report["run"] = {
            "scenario": args.scenario,
            "implementation": args.impl,
            "engine": args.engine,
            "routes": args.routes,
            "elapsed_seconds": elapsed,
        }
        # The VMM's own instruction counters, for cross-checking that
        # profile sums match what telemetry already counted.
        snapshot = harness.telemetry_snapshot()
        series = (
            snapshot["metrics"].get("xbgp_extension_instructions", {}).get("series", [])
        )
        report["telemetry_instructions"] = {
            f"{s['labels']['point']}/{s['labels']['extension']}": s["value"]
            for s in series
        }
        report["tiers"] = harness.dut.vmm.tiers()
        print(_json.dumps(report, indent=2))
    else:
        print(profiler.render(top=args.top))
        tiers = harness.dut.vmm.tiers()
        if tiers:
            print()
            print("tier attribution:")
            for name, entry in sorted(tiers.items()):
                line = f"  {name:<24} requested={entry['requested']} used={entry['used']}"
                if entry.get("fallback_reason"):
                    line += f"  (fallback: {entry['fallback_reason']})"
                info = entry.get("native")
                if info:
                    line += (
                        f"  [{info['structured_blocks']} structured blocks,"
                        f" {len(info['bail_blocks'])} bail-to-jit,"
                        f" {info['loops']} loops,"
                        f" {info['direct_stack_ops']} direct stack ops]"
                    )
                print(line)
        if args.listing:
            for profile in profiler.profiles():
                print()
                print(f"== {profile.point}/{profile.extension} ({profile.engine}) ==")
                print(profiler.annotated_listing(profile.point, profile.extension))
    return 0


def _write_shard_profiles(args) -> None:
    """One extra profiled run after the timed ones; write per-shard
    profile reports (or the single DUT's report) as JSON artifacts."""
    import json as _json
    import os as _os

    harness = _scenario_harness(args, profiling=True)
    harness.run()
    _os.makedirs(args.profile_dir, exist_ok=True)
    if harness.shard_result is not None:
        for report in harness.shard_result.per_shard:
            path = _os.path.join(
                args.profile_dir, f"shard-{report['shard']}-profile.json"
            )
            with open(path, "w") as handle:
                _json.dump(
                    {
                        "shard": report["shard"],
                        "routes": report["routes"],
                        "updates": report["updates"],
                        "batches": report["batches"],
                        "build_seconds": report["build_seconds"],
                        "replay_seconds": report["replay_seconds"],
                        "profile": report["profile"],
                        "stats": report["stats"],
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
            print(f"# wrote {path}", file=sys.stderr)
    else:
        path = _os.path.join(args.profile_dir, "profile.json")
        with open(path, "w") as handle:
            _json.dump(
                harness.dut.profiler.report(top=10), handle, indent=2, sort_keys=True
            )
        print(f"# wrote {path}", file=sys.stderr)


def _bench_alert_engine(args):
    """Parse ``--alert`` / ``--alert-rules`` into an AlertEngine (or
    None when no rule was given, so rule-free benches stay rule-free)."""
    from .telemetry.alerts import AlertEngine, AlertRuleError, load_rules, parse_rule

    rules = []
    try:
        for expression in getattr(args, "alert", None) or []:
            rules.append(parse_rule(expression))
        if getattr(args, "alert_rules", None):
            rules.extend(load_rules(args.alert_rules))
    except AlertRuleError as exc:
        raise SystemExit(f"xbgp bench: {exc}")
    except OSError as exc:
        raise SystemExit(f"xbgp bench: {exc}")
    if not rules:
        return None
    try:
        return AlertEngine(rules)
    except AlertRuleError as exc:
        raise SystemExit(f"xbgp bench: {exc}")


def _bench_telemetry_plane(args, alert_engine=None):
    """Build the optional bench observability plane.

    Returns ``(event_log, on_heartbeat, exporter)`` — all ``None`` when
    neither ``--serve`` nor ``--events`` was given, so the default bench
    path carries zero telemetry-plane cost.  With ``--serve`` the
    exporter also serves ``/alerts`` (the engine's rule table) and, when
    ``--timeseries`` is on, a live ``/timeseries`` fed by parent-side
    samples of the progress registry on every worker heartbeat.
    """
    import threading
    import time as _time

    if getattr(args, "serve", None) is None and not getattr(args, "events", None):
        return None, None, None
    from .telemetry import EventLog, ReplayProgress, TelemetryExporter
    from .telemetry.metrics import MetricsRegistry
    from .telemetry.timeseries import TimeSeriesSampler

    event_log = EventLog(args.events) if getattr(args, "events", None) else None
    if alert_engine is not None and event_log is not None:
        alert_engine.events = event_log
    live_registry = MetricsRegistry()
    progress = ReplayProgress(live_registry)
    sampler = None
    if getattr(args, "timeseries", None) is not None:
        # Live temporal feed: the progress gauges, sampled at most once
        # a second while heartbeats arrive.
        sampler = TimeSeriesSampler(
            live_registry, every_seconds=1.0, labels={"source": "progress"}
        )
    exporter = None
    if getattr(args, "serve", None) is not None:
        exporter = TelemetryExporter(
            registry=live_registry,
            health=lambda: [],
            events=event_log,
            alerts=alert_engine,
            timeseries=sampler.series if sampler is not None else None,
            port=args.serve,
        ).start()
        print(f"# serving telemetry on {exporter.url('/')}", file=sys.stderr)
    lock = exporter.lock if exporter is not None else threading.RLock()
    last_line = [0.0]

    def on_heartbeat(event):
        with lock:
            progress.on_event(event)
            if sampler is not None:
                sampler.maybe_sample()
        now = _time.monotonic()
        if now - last_line[0] >= 1.0 or event.get("event") == "replay_finish":
            last_line[0] = now
            print(f"# {progress.render()}", file=sys.stderr)

    return event_log, on_heartbeat, exporter


def _bench_final_sources(harness):
    """The registry + health rows /metrics and /health should serve
    once the replay finished: the workers' merged shard-labeled
    registry for a telemetry-on sharded run, the DUT's live registry
    for a single-daemon run, else None (keep serving progress)."""
    shard_result = harness.shard_result
    if shard_result is not None and shard_result.telemetry is not None:
        return (
            shard_result.merged_registry(shard_labels=True),
            shard_result.telemetry["health"],
        )
    dut = harness.dut
    if dut is not None and dut.vmm.telemetry is not None:
        return dut.vmm.telemetry.registry, dut.vmm.telemetry.health.snapshot()
    return None, None


def _cmd_bench(args) -> int:
    """Run one scenario as a benchmark; record and/or compare."""
    import json as _json
    import os as _os
    from datetime import datetime, timezone

    from .eval import bench

    scenario = f"{args.scenario}-{args.impl}-{args.engine}"
    timeseries_on = getattr(args, "timeseries", None) is not None
    if timeseries_on:
        args._timeseries_every = max(1, getattr(args, "timeseries_every", 200))
        if getattr(args, "shards", 1) > 1 and not args.telemetry:
            # Worker-side sampling rides the telemetry channel.
            print("# --timeseries implies --telemetry", file=sys.stderr)
            args.telemetry = True
    alert_engine = _bench_alert_engine(args)
    event_log, on_heartbeat, exporter = _bench_telemetry_plane(args, alert_engine)
    wall = []
    _scenario_harness(args).run()  # warm (JIT translation, allocator)
    harness = None
    for _ in range(args.runs):
        harness = _scenario_harness(
            args, events=event_log, progress=on_heartbeat
        )
        wall.append(harness.run())
    final_series = harness.timeseries
    if exporter is not None:
        registry, health_rows = _bench_final_sources(harness)
        if registry is not None:
            exporter.replace_sources(registry=registry, health=health_rows)
        if final_series:
            # /timeseries switches from the live progress feed to the
            # merged (shard-labeled) worker series of the last run.
            exporter.replace_sources(timeseries=final_series)
    if alert_engine is not None:
        alert_engine.evaluate(final_series or [])
        for row in alert_engine.firing():
            print(
                f"# ALERT [{row['severity']}] {row['rule']}"
                f" value={row['value']}",
                file=sys.stderr,
            )
    if timeseries_on and args.timeseries:
        from .telemetry.timeseries import write_timeseries

        count = write_timeseries(final_series or [], args.timeseries)
        print(
            f"# wrote {count} time-series sample(s) to {args.timeseries}",
            file=sys.stderr,
        )
    snapshot = harness.telemetry_snapshot()
    series = (
        snapshot["metrics"].get("xbgp_extension_instructions", {}).get("series", [])
        if snapshot is not None
        else []
    )
    instructions = sum(int(s["value"]) for s in series)
    extra = {
        "implementation": args.impl,
        "engine": args.engine,
        "seed": args.seed,
        "batch": getattr(args, "batch", 1),
        "shards": getattr(args, "shards", 1),
    }
    if alert_engine is not None:
        extra["alerts_fired"] = alert_engine.ever_fired()
    if harness.shard_result is not None:
        extra["per_shard"] = [
            {
                "shard": s["shard"],
                "routes": s["routes"],
                "updates": s["updates"],
                "batches": s["batches"],
                "build_seconds": s["build_seconds"],
                "replay_seconds": s["replay_seconds"],
            }
            for s in harness.shard_result.per_shard
        ]
    record = bench.make_record(
        scenario,
        wall,
        args.routes,
        instructions=instructions,
        timestamp=datetime.now(timezone.utc).isoformat(),
        extra=extra,
    )
    print(_json.dumps(record, indent=2, sort_keys=True))
    if getattr(args, "profile_dir", None):
        _write_shard_profiles(args)
    if args.record is not None:
        path = bench.write_record(record, args.record)
        print(f"# wrote {path}", file=sys.stderr)
    exit_code = 0
    if args.compare is not None:
        baseline_path = args.compare
        if _os.path.isdir(baseline_path):
            baseline_path = _os.path.join(baseline_path, bench.bench_filename(scenario))
        try:
            baseline = bench.load_record(baseline_path)
        except FileNotFoundError:
            raise SystemExit(f"xbgp bench: no baseline at {baseline_path}")
        except ValueError as exc:
            raise SystemExit(f"xbgp bench: {exc}")
        try:
            result = bench.compare(record, baseline, threshold=args.threshold)
        except ValueError as exc:
            raise SystemExit(f"xbgp bench: {exc}")
        print(bench.render_compare(result), file=sys.stderr)
        exit_code = 1 if result["regression"] else 0
    if alert_engine is not None:
        critical = alert_engine.ever_fired("critical")
        if critical:
            print(
                "# ALERT GATE: critical rule(s) fired: "
                + ", ".join(critical),
                file=sys.stderr,
            )
            exit_code = 1
    if exporter is not None:
        linger = getattr(args, "serve_linger", 0.0) or 0.0
        if linger > 0:
            # Keep /metrics scrapeable after the run (CI smoke curls it
            # here; a human can inspect the merged registry).
            import time as _time

            print(
                f"# exporter lingering {linger:.0f}s on {exporter.url('/')}",
                file=sys.stderr,
            )
            _time.sleep(linger)
        exporter.stop()
    if event_log is not None:
        event_log.close()
        print(f"# {event_log.recorded} event(s) -> {args.events}", file=sys.stderr)
    return exit_code


def _cmd_top(args) -> int:
    """``xbgp top``: live dashboard over /timeseries or a JSONL file."""
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from .telemetry.dashboard import render_dashboard
    from .telemetry.timeseries import read_timeseries

    if bool(args.file) == bool(args.url):
        raise SystemExit(
            "xbgp top: give a recorded time-series FILE or --url, not both"
        )

    def _fetch_json(url):
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                return _json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # /health answers 503 (with a JSON body) while degraded;
            # that body is exactly what the dashboard should show.
            return _json.loads(exc.read().decode("utf-8"))

    def _frame() -> str:
        if args.file:
            samples = read_timeseries(args.file)
            alerts = health = None
            source = args.file
        else:
            base = args.url.rstrip("/")
            doc = _fetch_json(base + "/timeseries?limit=128")
            samples = doc.get("samples", [])
            alerts = _fetch_json(base + "/alerts")
            health = _fetch_json(base + "/health")
            source = base
        return render_dashboard(samples, alerts, health, source=source)

    try:
        frame = _frame()
    except (OSError, ValueError) as exc:
        raise SystemExit(f"xbgp top: {exc}")
    if args.once:
        print(frame)
        return 0
    try:
        while True:
            sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
            try:
                frame = _frame()
            except (OSError, ValueError) as exc:
                frame = f"xbgp top: {exc} (retrying)"
    except KeyboardInterrupt:
        print()
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="xbgp", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile xc source to eBPF bytecode")
    p.add_argument("source", help="xc source file")
    p.add_argument("-o", "--output", help="write hex/disasm here (default stdout)")
    p.add_argument("--disasm", action="store_true", help="emit disassembly, not hex")
    p.add_argument(
        "-D", dest="define", action="append", default=[], metavar="NAME=VALUE",
        help="predefine a constant (repeatable)",
    )
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("disasm", help="disassemble bytecode hex")
    p.add_argument("bytecode", help="file holding hex bytecode")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("verify", help="verify bytecode hex")
    p.add_argument("bytecode", help="file holding hex bytecode")
    p.add_argument("--no-loops", action="store_true", help="reject back-edges")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("fig1", help="print the Fig. 1 CDF")
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig4", help="run one Fig. 4 cell")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument(
        "--feature",
        choices=["route_reflection", "origin_validation"],
        default="route_reflection",
    )
    p.add_argument("--engine", choices=["jit", "interp", "native", "pyext"], default="jit")
    p.add_argument("--routes", type=int, default=2500)
    p.add_argument("--runs", type=int, default=7)
    p.add_argument("--seed", type=int, default=20200604)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("gen-table", help="write a synthetic MRT table dump")
    p.add_argument("output", help="MRT file to write")
    p.add_argument("--routes", type=int, default=10000)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument("--timestamp", type=int, default=1_591_228_800)  # 2020-06-04
    p.set_defaults(fn=_cmd_gen_table)

    p = sub.add_parser("loc", help="print the glue LoC report")
    p.set_defaults(fn=_cmd_loc)

    p = sub.add_parser("stats", help="run one scenario, print VMM telemetry")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument(
        "--feature",
        choices=["route_reflection", "origin_validation", "plain"],
        default="route_reflection",
    )
    p.add_argument("--mode", choices=["extension", "native"], default="extension")
    p.add_argument("--engine", choices=["jit", "interp", "native", "pyext"], default="jit")
    p.add_argument("--routes", type=int, default=500)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument(
        "--format", choices=["prom", "json", "both"], default="both",
        help="exposition format (default: both)",
    )
    p.add_argument(
        "--quarantine-after", type=int, default=0, metavar="N",
        help="quarantine an extension after N consecutive errors (0: never)",
    )
    p.add_argument(
        "--health", action="store_true",
        help="print only quarantine/circuit-breaker state per extension",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="also export the trace ring as JSON Lines",
    )
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="write the exposition to FILE instead of stdout",
    )
    p.add_argument(
        "--merge", nargs="+", metavar="SNAPSHOT", default=None,
        help="skip the scenario: merge these registry snapshot files "
        "(raw snapshots or stats JSON documents) and print the result",
    )
    p.add_argument(
        "--diff", nargs=2, metavar=("BEFORE", "AFTER"), default=None,
        help="skip the scenario: diff two runs (registry snapshots, "
        "stats JSON documents or time-series JSONL files) and print "
        "what moved (--format json for machine-readable output)",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("events", help="tail/filter/validate a JSONL event log")
    p.add_argument("log", help="event log file (JSON Lines)")
    p.add_argument(
        "--type", action="append", default=[], metavar="KIND",
        help="keep only these event types (repeatable, comma-splittable)",
    )
    p.add_argument(
        "--shard", type=int, default=None,
        help="keep only events from this shard",
    )
    p.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="keep only the last N events after filtering",
    )
    p.add_argument(
        "--format", choices=["text", "jsonl", "json"], default="text",
        help="output rendering (default: text)",
    )
    p.add_argument(
        "--validate", action="store_true",
        help="schema-check every line; exit 1 if any is invalid",
    )
    p.set_defaults(fn=_cmd_events)

    p = sub.add_parser(
        "explain", help="reconstruct why a prefix is (not) in the Loc-RIB"
    )
    p.add_argument("prefix", help="prefix to explain, e.g. 198.51.100.0/24")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "native", "pyext"], default="jit")
    p.add_argument(
        "--router", choices=["up", "dut", "down"], default="dut",
        help="whose provenance to read (default: the route reflector DUT)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON, not text")
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="also export the router's full provenance as JSON Lines",
    )
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("spans", help="print the cross-router span tree")
    p.add_argument("prefix", help="prefix to trace, e.g. 198.51.100.0/24")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "native", "pyext"], default="jit")
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="export every router's spans as JSON Lines instead of text",
    )
    p.set_defaults(fn=_cmd_spans)

    p = sub.add_parser("fuzz", help="run a differential fuzzing campaign")
    p.add_argument("--iterations", type=int, default=200, help="case budget")
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this many seconds",
    )
    p.add_argument(
        "--oracles", default="codec,engine,host",
        help="comma-separated subset of codec,engine,host",
    )
    p.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write minimized divergence entries to this directory",
    )
    p.add_argument("--report", default=None, metavar="FILE", help="also write the JSON report here")
    p.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin minimization of divergent cases",
    )
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "profile", help="profile one scenario: phases, hotspots, flamegraph"
    )
    p.add_argument(
        "--scenario", choices=sorted(_SCENARIO_FEATURES), default="route-reflection"
    )
    p.add_argument("--impl", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "native"], default="jit")
    p.add_argument("--routes", type=int, default=400)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument(
        "--batch", type=int, default=1,
        help="UPDATEs decoded and processed per batch (1: sequential)",
    )
    p.add_argument("--top", type=int, default=10, help="hotspots per extension")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--listing", action="store_true",
        help="append the full annotated disassembly per extension (text mode)",
    )
    p.add_argument(
        "--flamegraph", metavar="FILE", default=None,
        help="write a collapsed-stack file (speedscope / flamegraph.pl)",
    )
    p.add_argument(
        "--weights", choices=["instructions", "time"], default="instructions",
        help="collapsed-stack weights (default: instructions)",
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "bench", help="benchmark one scenario; record/compare BENCH_*.json"
    )
    p.add_argument(
        "--scenario", choices=sorted(_SCENARIO_FEATURES), default="route-reflection"
    )
    p.add_argument("--impl", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "native"], default="jit")
    p.add_argument("--routes", type=int, default=400)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument(
        "--batch", type=int, default=1,
        help="UPDATEs decoded and processed per batch (1: sequential)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="worker processes the table is partitioned across by prefix range",
    )
    p.add_argument(
        "--mrt", metavar="FILE", default=None,
        help="replay this MRT table dump instead of generating --routes",
    )
    p.add_argument(
        "--profile-dir", metavar="DIR", default=None,
        help="after the timed runs, run once profiled and write "
        "per-shard profile JSON artifacts here",
    )
    p.add_argument(
        "--record", nargs="?", const=".", default=None, metavar="DIR",
        help="write BENCH_<scenario>.json into DIR (default: .)",
    )
    p.add_argument(
        "--compare", metavar="PATH", default=None,
        help="baseline BENCH_*.json file (or directory holding it); "
        "exits 1 on regression",
    )
    p.add_argument(
        "--threshold", type=float, default=0.5,
        help="regression threshold as a fraction over baseline (default 0.5)",
    )
    p.add_argument(
        "--telemetry", action="store_true",
        help="run shard workers with telemetry on and merge their "
        "registries/breakers/trace tails into the parent",
    )
    p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve /metrics, /health and /events over HTTP during the "
        "run (0: ephemeral port); live progress gauges while replaying, "
        "the merged registry afterwards",
    )
    p.add_argument(
        "--serve-linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the exporter up this long after the bench finishes",
    )
    p.add_argument(
        "--events", metavar="FILE", default=None,
        help="stream schema'd lifecycle events to this JSONL file",
    )
    p.add_argument(
        "--timeseries", nargs="?", const="", default=None, metavar="FILE",
        help="sample the metric registry periodically during the replay "
        "(serving /timeseries with --serve); with FILE, also write the "
        "final merged samples as JSON Lines",
    )
    p.add_argument(
        "--timeseries-every", type=int, default=200, metavar="N",
        help="take a sample every N replayed messages (default 200)",
    )
    p.add_argument(
        "--alert", action="append", default=[], metavar="EXPR",
        help="declarative alert rule, e.g. "
        "'xbgp_quarantine_transitions > 0' or "
        "'warning: xbgp_extension_run_seconds p95 > 0.001 for 5s' "
        "(repeatable); a fired critical rule makes the bench exit 1",
    )
    p.add_argument(
        "--alert-rules", metavar="FILE", default=None,
        help="load alert rules from FILE (one expression per line, "
        "# comments allowed)",
    )
    p.add_argument(
        "--quarantine-after", type=int, default=0, metavar="N",
        help="arm the workers' circuit breaker: quarantine an extension "
        "after N consecutive errors (0: never)",
    )
    p.add_argument(
        "--inject-crasher", action="store_true",
        help="attach the deliberately crashing 'faulty' filter to the "
        "DUT (fault-injection drill for the quarantine alert path)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "top", help="live ANSI dashboard over /timeseries or a JSONL file"
    )
    p.add_argument(
        "file", nargs="?", default=None,
        help="recorded time-series JSONL file (from bench --timeseries)",
    )
    p.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a live exporter (e.g. http://127.0.0.1:9179)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2s)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p.set_defaults(fn=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `xbgp disasm ... | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
