"""Command-line tools: ``xbgp <subcommand>``.

Subcommands:

* ``compile``  — compile an xc source file to eBPF bytecode (hex) or
  disassembly, with ``-D NAME=VALUE`` constants;
* ``disasm``   — disassemble bytecode hex;
* ``verify``   — run the static verifier over bytecode hex;
* ``fig1``     — print the Fig. 1 standardization-delay CDF;
* ``fig4``     — run one Fig. 4 cell (implementation × feature ×
  engine) and print the paper-style row;
* ``gen-table`` — generate a synthetic RIS-like table and write it as
  an MRT TABLE_DUMP_V2 file;
* ``loc``      — print the §2.1 glue-size report;
* ``stats``    — drive one harness scenario and print the VMM's
  telemetry (per-insertion-point/extension counters, latency
  histograms, quarantine state) as Prometheus text and/or JSON;
* ``explain``  — drive a provenance-enabled route-reflection scenario
  and reconstruct the full causal chain behind a prefix: peer →
  extension runs → attribute deltas → decision verdict → exports;
* ``spans``    — same scenario, but print the cross-router span tree
  (or export it as JSON Lines);
* ``fuzz``     — run a differential fuzzing campaign over the codec
  round-trip, interpreter-vs-JIT and FRR-vs-BIRD oracles; prints a
  JSON report, writes minimized divergences to a corpus directory,
  exits non-zero if any divergence was found.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .core.abi import HELPER_IDS, PLUGIN_CONSTANTS

__all__ = ["main"]


def _parse_defines(pairs: List[str]) -> Dict[str, int]:
    constants = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"bad -D {pair!r}: expected NAME=VALUE")
        constants[name] = int(value, 0)
    return constants


def _cmd_compile(args) -> int:
    from .ebpf.disassembler import disassemble
    from .ebpf.isa import encode_program
    from .xc import compile_source

    with open(args.source) as handle:
        source = handle.read()
    constants = dict(PLUGIN_CONSTANTS)
    constants.update(_parse_defines(args.define))
    program = compile_source(source, HELPER_IDS, constants)
    if args.disasm:
        names = {helper_id: name for name, helper_id in HELPER_IDS.items()}
        output = disassemble(program, names) + "\n"
    else:
        output = encode_program(program).hex() + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    print(f"# {len(program)} instructions", file=sys.stderr)
    return 0


def _read_bytecode(path: str):
    from .ebpf.isa import decode_program

    with open(path) as handle:
        text = handle.read().strip()
    return decode_program(bytes.fromhex(text))


def _cmd_disasm(args) -> int:
    from .ebpf.disassembler import disassemble

    names = {helper_id: name for name, helper_id in HELPER_IDS.items()}
    print(disassemble(_read_bytecode(args.bytecode), names))
    return 0


def _cmd_verify(args) -> int:
    from .ebpf.verifier import VerifierConfig, VerifierError, verify

    program = _read_bytecode(args.bytecode)
    config = VerifierConfig(
        allow_loops=not args.no_loops,
        allowed_helpers=set(HELPER_IDS.values()),
    )
    try:
        verify(program, config)
    except VerifierError as exc:
        print(f"REJECTED: {exc}")
        return 1
    print(f"OK: {len(program)} instructions verified")
    return 0


def _cmd_fig1(args) -> int:
    from .eval import fig1

    print(fig1.render_table())
    return 0


def _cmd_fig4(args) -> int:
    from .bgp.roa import make_roas_for_prefixes
    from .eval import fig4
    from .workload import RibGenerator, origins_of

    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    roas = None
    if args.feature == "origin_validation":
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=args.seed)
    result = fig4.run_cell(
        args.implementation, args.feature, routes, roas, runs=args.runs, engine=args.engine
    )
    print(fig4.render_table([result], args.routes, args.runs))
    return 0


def _cmd_gen_table(args) -> int:
    from .bgp.prefix import parse_ipv4
    from .mrt import MrtPeer, RibEntry, write_table
    from .workload import RibGenerator, build_updates

    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    peer_address = parse_ipv4("10.0.0.9")
    updates = build_updates(routes, next_hop=peer_address, session="ebgp", sender_asn=65100)
    entries = [
        RibEntry(prefix, 0, args.timestamp, update.attributes)
        for update in updates
        for prefix in update.nlri
    ]
    with open(args.output, "wb") as handle:
        write_table(
            handle,
            [MrtPeer(peer_address, peer_address, 65100)],
            entries,
            timestamp=args.timestamp,
        )
    print(f"wrote {len(entries)} RIB entries to {args.output}")
    return 0


def _cmd_loc(args) -> int:
    from .eval import loc_report

    print(loc_report.render_table())
    return 0


def _cmd_stats(args) -> int:
    """Run one convergence scenario and expose its telemetry."""
    import json as _json

    from .bgp.roa import make_roas_for_prefixes
    from .sim.harness import ConvergenceHarness
    from .telemetry import QuarantinePolicy
    from .workload import RibGenerator, origins_of

    routes = RibGenerator(n_routes=args.routes, seed=args.seed).generate()
    roas = None
    if args.feature == "origin_validation":
        roas = make_roas_for_prefixes(origins_of(routes), 0.75, seed=args.seed)
    quarantine = None
    if args.quarantine_after < 0:
        raise SystemExit("xbgp stats: --quarantine-after must be >= 0")
    if args.quarantine_after:
        quarantine = QuarantinePolicy(error_threshold=args.quarantine_after)
    harness = ConvergenceHarness(
        args.implementation,
        args.feature,
        args.mode,
        routes,
        roas,
        engine=args.engine,
        quarantine=quarantine,
    )
    elapsed = harness.run()
    telemetry = harness.dut.vmm.telemetry
    if args.trace_out:
        count = telemetry.trace.export_jsonl(args.trace_out)
        print(f"# wrote {count} trace events to {args.trace_out}", file=sys.stderr)
    sections: List[str] = []
    if args.format in ("prom", "both"):
        sections.append(telemetry.render_prometheus())
    if args.format in ("json", "both"):
        snapshot = telemetry.snapshot()
        snapshot["run"] = {
            "implementation": args.implementation,
            "feature": args.feature,
            "mode": args.mode,
            "engine": args.engine,
            "routes": args.routes,
            "elapsed_seconds": elapsed,
            "vmm": {
                "codes": harness.dut.vmm.stats(),
                "points": harness.dut.vmm.point_stats(),
                "quarantined": harness.dut.vmm.quarantined_codes(),
            },
        }
        sections.append(_json.dumps(snapshot, indent=2) + "\n")
    output = "".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print(f"# stats written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(output)
    return 0


def _cmd_explain(args) -> int:
    """Reconstruct the causal chain behind one prefix (provenance)."""
    import json as _json

    from .bgp.prefix import Prefix
    from .sim.harness import build_explain_scenario

    try:
        prefix = Prefix.parse(args.prefix)
    except ValueError as exc:
        raise SystemExit(f"xbgp explain: bad prefix {args.prefix!r}: {exc}")
    network, up, dut, down = build_explain_scenario(
        args.implementation, prefix, engine=args.engine
    )
    routers = {"up": up, "dut": dut, "down": down}
    tracker = routers[args.router].provenance
    if args.output:
        count = tracker.export_jsonl(args.output)
        print(f"# wrote {count} provenance records to {args.output}", file=sys.stderr)
    if args.json:
        print(_json.dumps(tracker.explain(prefix), indent=2))
    else:
        print(tracker.render_explain(prefix))
    return 0


def _cmd_spans(args) -> int:
    """Print (or export) the cross-router span tree for one prefix."""
    from .bgp.prefix import Prefix
    from .sim.harness import build_explain_scenario

    try:
        prefix = Prefix.parse(args.prefix)
    except ValueError as exc:
        raise SystemExit(f"xbgp spans: bad prefix {args.prefix!r}: {exc}")
    network, up, dut, down = build_explain_scenario(
        args.implementation, prefix, engine=args.engine
    )
    routers = (("up", up), ("dut", dut), ("down", down))
    if args.output:
        import json as _json

        total = 0
        with open(args.output, "w") as handle:
            for name, daemon in routers:
                for span in daemon.provenance.spans.spans():
                    handle.write(_json.dumps({"node": name, **span}) + "\n")
                    total += 1
        print(f"# wrote {total} spans to {args.output}", file=sys.stderr)
        return 0
    for name, daemon in routers:
        recorder = daemon.provenance.spans
        print(f"{name} ({daemon.provenance.router}): {len(recorder)} span(s)")
        for span in recorder.spans():
            duration = span.get("end", span["start"]) - span["start"]
            detail = " ".join(
                f"{key}={span[key]}"
                for key in ("peer", "prefix", "point", "extension", "outcome")
                if span.get(key) is not None
            )
            print(
                f"  [{span['trace']}] {span['span']} "
                f"<- {span['parent'] or 'root'} {span['kind']} "
                f"({duration * 1000:.3f}ms){' ' + detail if detail else ''}"
            )
    return 0


def _cmd_fuzz(args) -> int:
    """Run a differential fuzzing campaign (see repro.fuzz)."""
    import json as _json

    from .fuzz import FuzzRunner

    oracles = tuple(part.strip() for part in args.oracles.split(",") if part.strip())
    try:
        runner = FuzzRunner(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            oracles=oracles,
            corpus_dir=args.corpus,
            minimize=not args.no_minimize,
        )
    except ValueError as exc:
        raise SystemExit(f"xbgp fuzz: {exc}")
    report = runner.run()
    rendered = _json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(rendered + "\n")
        print(f"# report written to {args.report}", file=sys.stderr)
    print(rendered)
    summary = (
        f"# {report['iterations_run']} cases "
        f"({', '.join(f'{k}={v}' for k, v in report['cases'].items())}) "
        f"in {report['elapsed_seconds']}s: "
        f"{len(report['divergences'])} unique divergence(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if report["divergences"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="xbgp", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile xc source to eBPF bytecode")
    p.add_argument("source", help="xc source file")
    p.add_argument("-o", "--output", help="write hex/disasm here (default stdout)")
    p.add_argument("--disasm", action="store_true", help="emit disassembly, not hex")
    p.add_argument(
        "-D", dest="define", action="append", default=[], metavar="NAME=VALUE",
        help="predefine a constant (repeatable)",
    )
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("disasm", help="disassemble bytecode hex")
    p.add_argument("bytecode", help="file holding hex bytecode")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("verify", help="verify bytecode hex")
    p.add_argument("bytecode", help="file holding hex bytecode")
    p.add_argument("--no-loops", action="store_true", help="reject back-edges")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("fig1", help="print the Fig. 1 CDF")
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig4", help="run one Fig. 4 cell")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument(
        "--feature",
        choices=["route_reflection", "origin_validation"],
        default="route_reflection",
    )
    p.add_argument("--engine", choices=["jit", "interp", "pyext"], default="jit")
    p.add_argument("--routes", type=int, default=2500)
    p.add_argument("--runs", type=int, default=7)
    p.add_argument("--seed", type=int, default=20200604)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("gen-table", help="write a synthetic MRT table dump")
    p.add_argument("output", help="MRT file to write")
    p.add_argument("--routes", type=int, default=10000)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument("--timestamp", type=int, default=1_591_228_800)  # 2020-06-04
    p.set_defaults(fn=_cmd_gen_table)

    p = sub.add_parser("loc", help="print the glue LoC report")
    p.set_defaults(fn=_cmd_loc)

    p = sub.add_parser("stats", help="run one scenario, print VMM telemetry")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument(
        "--feature",
        choices=["route_reflection", "origin_validation", "plain"],
        default="route_reflection",
    )
    p.add_argument("--mode", choices=["extension", "native"], default="extension")
    p.add_argument("--engine", choices=["jit", "interp", "pyext"], default="jit")
    p.add_argument("--routes", type=int, default=500)
    p.add_argument("--seed", type=int, default=20200604)
    p.add_argument(
        "--format", choices=["prom", "json", "both"], default="both",
        help="exposition format (default: both)",
    )
    p.add_argument(
        "--quarantine-after", type=int, default=0, metavar="N",
        help="quarantine an extension after N consecutive errors (0: never)",
    )
    p.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="also export the trace ring as JSON Lines",
    )
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="write the exposition to FILE instead of stdout",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "explain", help="reconstruct why a prefix is (not) in the Loc-RIB"
    )
    p.add_argument("prefix", help="prefix to explain, e.g. 198.51.100.0/24")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "pyext"], default="jit")
    p.add_argument(
        "--router", choices=["up", "dut", "down"], default="dut",
        help="whose provenance to read (default: the route reflector DUT)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON, not text")
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="also export the router's full provenance as JSON Lines",
    )
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("spans", help="print the cross-router span tree")
    p.add_argument("prefix", help="prefix to trace, e.g. 198.51.100.0/24")
    p.add_argument("--implementation", choices=["frr", "bird"], default="frr")
    p.add_argument("--engine", choices=["jit", "interp", "pyext"], default="jit")
    p.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="export every router's spans as JSON Lines instead of text",
    )
    p.set_defaults(fn=_cmd_spans)

    p = sub.add_parser("fuzz", help="run a differential fuzzing campaign")
    p.add_argument("--iterations", type=int, default=200, help="case budget")
    p.add_argument("--seed", type=int, default=0, help="master seed")
    p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this many seconds",
    )
    p.add_argument(
        "--oracles", default="codec,engine,host",
        help="comma-separated subset of codec,engine,host",
    )
    p.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write minimized divergence entries to this directory",
    )
    p.add_argument("--report", default=None, metavar="FILE", help="also write the JSON report here")
    p.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin minimization of divergent cases",
    )
    p.set_defaults(fn=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `xbgp disasm ... | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
