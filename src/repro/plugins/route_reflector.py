"""Use case §3.2: BGP route reflection entirely as extension code.

RFC 4456 support — the ORIGINATOR_ID and CLUSTER_LIST attributes —
implemented in two bytecodes:

* ``rr_import`` @ BGP_INBOUND_FILTER — loop prevention: reject routes
  whose ORIGINATOR_ID is this router or whose CLUSTER_LIST contains
  this cluster;
* ``rr_export`` @ BGP_OUTBOUND_FILTER — the reflection decision
  (client routes to everyone, non-client routes to clients only) plus
  attribute stamping: set ORIGINATOR_ID when absent, prepend the local
  CLUSTER_ID to CLUSTER_LIST.

The host daemon runs with ``route_reflector="extension"``: it is
RR-unaware apart from relaxing classic iBGP split horizon so the
extension gets to decide.

Peer-info struct offsets (``repro.core.abi``): peer_type @0,
peer_router_id @8, local_router_id @16, rr_client @28, cluster_id @32.
Attribute payload bytes are network order, hence the ``htonl`` calls.
"""

from __future__ import annotations

from ..core.manifest import Manifest

__all__ = ["IMPORT_SOURCE", "EXPORT_SOURCE", "build_manifest"]

IMPORT_SOURCE = """
u64 rr_import(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) != IBGP_SESSION) {
        next(); // reflection concerns iBGP only
    }
    u64 local_id = *(u32 *)(peer + 16);
    u64 orig = get_attr(ATTR_ORIGINATOR_ID);
    if (orig != 0) {
        if (htonl(*(u32 *)(orig + 4)) == local_id) {
            return FILTER_REJECT; // our own reflected route came back
        }
    }
    u64 cl = get_attr(ATTR_CLUSTER_LIST);
    if (cl != 0) {
        u64 cluster_id = *(u32 *)(peer + 32);
        u64 len = *(u16 *)(cl + 2);
        u64 i = 0;
        while (i < len) {
            if (htonl(*(u32 *)(cl + 4 + i)) == cluster_id) {
                return FILTER_REJECT; // cluster loop
            }
            i = i + 4;
        }
    }
    next();
}
"""

EXPORT_SOURCE = """
u64 rr_export(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) != IBGP_SESSION) {
        next(); // eBGP export: native rules apply
    }
    u64 src = get_src_peer_info();
    if (src == 0) { next(); }              // locally originated
    if (*(u32 *)(src) != IBGP_SESSION) {
        next(); // eBGP-learned: plain iBGP advertisement
    }
    // iBGP-learned towards iBGP peer: the reflection decision.
    u64 src_client = *(u32 *)(src + 28);
    u64 dst_client = *(u32 *)(peer + 28);
    if (src_client == 0 && dst_client == 0) {
        return FILTER_REJECT; // non-client to non-client: never reflect
    }
    // Stamp ORIGINATOR_ID if the originator did not set one.
    u64 orig = get_attr(ATTR_ORIGINATOR_ID);
    if (orig == 0) {
        u8 buf[4];
        *(u32 *)(buf) = htonl(*(u32 *)(src + 8)); // source router id
        set_attr(ATTR_ORIGINATOR_ID, FLAG_OPTIONAL, buf, 4);
    }
    // Prepend our CLUSTER_ID to the CLUSTER_LIST.
    u64 cluster_id = *(u32 *)(peer + 32);
    u8 out[104];
    *(u32 *)(out) = htonl(cluster_id);
    u64 total = 4;
    u64 cl = get_attr(ATTR_CLUSTER_LIST);
    if (cl != 0) {
        u64 len = *(u16 *)(cl + 2);
        if (len > 100) { len = 100; } // bound the copy for the verifier
        ebpf_memcpy(out + 4, cl + 4, len);
        total = total + len;
    }
    set_attr(ATTR_CLUSTER_LIST, FLAG_OPTIONAL, out, total);
    return FILTER_ACCEPT;
}
"""


def build_manifest() -> Manifest:
    """The two-bytecode route-reflection program."""
    return Manifest(
        name="route_reflector",
        codes=[
            {
                "name": "rr_import",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": ["next", "get_peer_info", "get_attr"],
                "source": IMPORT_SOURCE,
            },
            {
                "name": "rr_export",
                "insertion_point": "BGP_OUTBOUND_FILTER",
                "seq": 0,
                "helpers": [
                    "next",
                    "get_peer_info",
                    "get_src_peer_info",
                    "get_attr",
                    "set_attr",
                    "ebpf_memcpy",
                ],
                "source": EXPORT_SOURCE,
            },
        ],
    )
