"""Use case §3.3: valley-free enforcement for BGP-in-the-datacenter.

Instead of the same-AS-number trick (which hides topology from
troubleshooting and partitions the fabric under double failures), each
router keeps its own AS number and this import filter rejects
non-valley-free paths.

Per the paper, the manifest carries "every eBGP session from a router
of level *i* to a router of level *i+1* in a pair (AS_li, AS_l(i+1))".
The filter walks the AS path in traffic order (local AS, then leftmost
ASN onward), classifying each hop against the pair map: a hop
``(lower, upper)`` is an *up* move, its reverse a *down* move.  A route
whose path makes an up move after a down move traversed a valley and
is rejected.  (The paper sketches the check as "a manifest pair is
included in the AS-Path"; applied verbatim at every router that also
flags legitimate up-up paths seen below the valley, so we implement
the full down-then-up test the sketch abbreviates.)

Our refinement (the flexibility argument of §3.3): valleys are
*allowed* when the destination prefix originates inside the fabric
(origin AS in the ``dc_ases`` map), so the L10→S2→L12→S1→L13 rescue
path of the double-failure scenario stays usable while transit valleys
stay blocked.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.manifest import Manifest

__all__ = ["SOURCE", "pair_entries", "build_manifest"]

SOURCE = """
u64 vf_import(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    u64 ap = get_attr(ATTR_AS_PATH);
    if (ap == 0) { next(); }
    u64 alen = *(u16 *)(ap + 2);
    u64 off = 0;
    u64 prev = *(u32 *)(peer + 12);  // local AS: traffic starts here
    u64 seen_down = 0;
    u64 reject = 0;
    u64 origin = 0;
    while (off + 2 <= alen) {
        u64 t = *(u8 *)(ap + 4 + off);
        u64 cnt = *(u8 *)(ap + 4 + off + 1);
        u64 i = 0;
        while (i < cnt) {
            u64 asn = htonl(*(u32 *)(ap + 4 + off + 2 + i * 4));
            if (t == 2) {
                if (map_lookup(MAP_PAIRS, (prev << 32) | asn) + 1 != 0) {
                    if (seen_down == 1) {
                        reject = 1; // up move after a down move: valley
                    }
                }
                if (map_lookup(MAP_PAIRS, (asn << 32) | prev) + 1 != 0) {
                    seen_down = 1; // down move
                }
                prev = asn;
                origin = asn;
            }
            i = i + 1;
        }
        off = off + 2 + cnt * 4;
    }
    if (reject == 1) {
        if (map_lookup(MAP_DC_ASES, origin) + 1 != 0) {
            next(); // fabric-internal destination: allow the detour
        }
        return FILTER_REJECT;
    }
    next();
}
"""


def pair_entries(
    up_edges: Iterable[Tuple[int, int]],
) -> List[List[int]]:
    """Encode (AS_level_i, AS_level_i+1) pairs as map entries.

    Key ``(lower << 32) | upper``: a traffic hop matching the key moves
    *up* the fabric; a hop matching the reversed key moves *down*.
    """
    return [[(low << 32) | high, 1] for low, high in up_edges]


def build_manifest(
    up_edges: Sequence[Tuple[int, int]],
    dc_ases: Iterable[int],
) -> Manifest:
    """The valley-free program.

    ``up_edges`` lists every (lower-level AS, upper-level AS) eBGP
    adjacency of the fabric; ``dc_ases`` lists every AS inside the
    fabric (valley exemption for internal destinations).
    """
    return Manifest(
        name="valley_free",
        codes=[
            {
                "name": "vf_import",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": ["next", "get_peer_info", "get_attr", "map_lookup"],
                "source": SOURCE,
            }
        ],
        maps={
            "pairs": pair_entries(up_edges),
            "dc_ases": [[asn, 1] for asn in sorted(set(dc_ases))],
        },
    )
