"""Host-speed plugin variants (NativeExtensionCode).

These implement the *same logic* as the eBPF use-case bytecodes, as
Python callables routed through the same VMM chains and the same
vendor-neutral :class:`HostImplementation` glue.  They model what the
paper's extensions cost once eBPF runs at native speed (C interpreter /
JIT): on a Python substrate, doubly-interpreted eBPF carries a large
constant factor that the C artifact does not have, so Fig. 4's
benchmarks report both arms — ``jit`` (real bytecode) and ``pyext``
(these) — and EXPERIMENTS.md explains which paper claim each one
carries.

Portability note: like the bytecode they mirror, these touch the host
only through ``ctx``/``HostImplementation``, so the same object loads
into PyFRR and PyBIRD.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Tuple

from ..bgp.constants import AttrTypeCode, SessionType
from ..bgp.prefix import mask_for
from ..bgp.roa import Roa
from ..core.abi import FILTER_ACCEPT, FILTER_REJECT
from ..core.context import ExecutionContext, NextRequested
from ..core.extension import NativeExtensionCode, XbgpProgram
from ..core.insertion_points import InsertionPoint
from .origin_validation import MIN_ROA_LENGTH

__all__ = [
    "route_reflector_program",
    "origin_validation_program",
    "OriginValidationState",
]


# -- route reflection ---------------------------------------------------


def _rr_import(ctx: ExecutionContext, host) -> int:
    neighbor = ctx.neighbor
    if neighbor is None or not neighbor.is_ibgp():
        raise NextRequested()
    originator = host.get_attr(ctx, AttrTypeCode.ORIGINATOR_ID)
    if originator is not None and originator.as_u32() == neighbor.local_router_id:
        return FILTER_REJECT
    cluster_list = host.get_attr(ctx, AttrTypeCode.CLUSTER_LIST)
    if cluster_list is not None and neighbor.cluster_id in cluster_list.as_cluster_list():
        return FILTER_REJECT
    raise NextRequested()


def _rr_export(ctx: ExecutionContext, host) -> int:
    neighbor = ctx.neighbor
    if neighbor is None or not neighbor.is_ibgp():
        raise NextRequested()
    source = getattr(ctx.route, "source", None)
    if source is None or not source.is_ibgp():
        raise NextRequested()
    if not (source.rr_client or neighbor.rr_client):
        return FILTER_REJECT
    originator = host.get_attr(ctx, AttrTypeCode.ORIGINATOR_ID)
    if originator is None:
        host.set_attr(
            ctx,
            AttrTypeCode.ORIGINATOR_ID,
            0x80,
            struct.pack("!I", source.peer_router_id),
        )
    cluster_list = host.get_attr(ctx, AttrTypeCode.CLUSTER_LIST)
    previous = cluster_list.value if cluster_list is not None else b""
    host.set_attr(
        ctx,
        AttrTypeCode.CLUSTER_LIST,
        0x80,
        struct.pack("!I", neighbor.cluster_id) + previous,
    )
    return FILTER_ACCEPT


def route_reflector_program() -> XbgpProgram:
    """RFC 4456 as host-speed extension code (same chain positions as
    the bytecode variant)."""
    return XbgpProgram(
        "route_reflector_py",
        [
            NativeExtensionCode(
                "rr_import_py", _rr_import, InsertionPoint.BGP_INBOUND_FILTER
            ),
            NativeExtensionCode(
                "rr_export_py", _rr_export, InsertionPoint.BGP_OUTBOUND_FILTER
            ),
        ],
    )


# -- origin validation ----------------------------------------------------


class OriginValidationState:
    """The extension's private hash table plus its outcome counters.

    Mirrors the bytecode variant's program map + shared-memory
    counters, at host speed: key is ``(network, length)``, value a list
    of ``(max_length, asn)``.
    """

    def __init__(self, roas: Iterable[Roa]):
        self.table: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.min_length = 33
        for roa in roas:
            key = (roa.prefix.network, roa.prefix.length)
            self.table.setdefault(key, []).append((roa.max_length, roa.asn))
            self.min_length = min(self.min_length, roa.prefix.length)
        if self.min_length > 32:
            self.min_length = MIN_ROA_LENGTH
        self.counters = {"VALID": 0, "NOT_FOUND": 0, "INVALID": 0}


def origin_validation_program(roas: Iterable[Roa]) -> XbgpProgram:
    """§3.4's validation via a hash table, at host speed."""
    state = OriginValidationState(roas)

    def rov_import(ctx: ExecutionContext, host) -> int:
        neighbor = ctx.neighbor
        if neighbor is None or neighbor.session_type != SessionType.EBGP_SESSION:
            raise NextRequested()
        prefix = ctx.prefix
        if prefix is None:
            raise NextRequested()
        attribute = host.get_attr(ctx, AttrTypeCode.AS_PATH)
        if attribute is None:
            raise NextRequested()
        # Last ASN of the last AS_SEQUENCE segment, parsed straight off
        # the neutral bytes (mirrors the bytecode's loop).
        value = attribute.value
        offset = 0
        origin = 0
        while offset + 2 <= len(value):
            kind = value[offset]
            seg = value[offset + 1] * 4
            if kind == 2 and seg:
                origin = int.from_bytes(value[offset + 2 + seg - 4 : offset + 2 + seg], "big")
            offset += 2 + seg
        table = state.table
        outcome = "NOT_FOUND"
        for length in range(prefix.length, state.min_length - 1, -1):
            bucket = table.get((prefix.network & mask_for(length), length))
            if not bucket:
                continue
            outcome = "INVALID"
            for max_length, asn in bucket:
                if asn == origin and prefix.length <= max_length and origin != 0:
                    outcome = "VALID"
                    break
            if outcome == "VALID":
                break
        state.counters[outcome] += 1
        raise NextRequested()  # measurement only, never discard

    program = XbgpProgram(
        "origin_validation_py",
        [
            NativeExtensionCode(
                "rov_import_py", rov_import, InsertionPoint.BGP_INBOUND_FILTER
            )
        ],
    )
    program.py_state = state  # type: ignore[attr-defined]
    return program
