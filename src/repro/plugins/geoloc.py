"""Use case §2: the GeoLoc attribute, four bytecodes on four points.

Mirrors Fig. 2 exactly:

1. ``geoloc_receive`` @ BGP_RECEIVE_MESSAGE — tag routes learned over
   eBGP with this router's coordinates (``get_xtra("coord")``);
2. ``geoloc_import`` @ BGP_INBOUND_FILTER — drop routes learned more
   than a configured distance away;
3. ``geoloc_export`` @ BGP_OUTBOUND_FILTER — strip the attribute
   before it leaks to eBGP neighbors;
4. ``geoloc_encode`` @ BGP_ENCODE_MESSAGE — put the attribute on the
   wire over iBGP with ``write_buf`` (neither host encodes unknown
   attribute codes natively, exactly like the paper's hosts).

Coordinates are fixed-point degrees scaled by 1e7 (latitude then
longitude, signed 32-bit, network byte order) — the GeoLoc wire format
of :func:`repro.bgp.attributes.make_geoloc`.
"""

from __future__ import annotations

import struct

from ..core.manifest import Manifest

__all__ = [
    "RECEIVE_SOURCE",
    "IMPORT_SOURCE",
    "EXPORT_SOURCE",
    "ENCODE_SOURCE",
    "coord_bytes",
    "distance_threshold",
    "build_manifest",
]


def coord_bytes(latitude: float, longitude: float) -> bytes:
    """The ``xtra["coord"]`` blob: the GeoLoc attribute value for this
    router's location."""
    return struct.pack(
        "!ii", round(latitude * 10_000_000), round(longitude * 10_000_000)
    )


def distance_threshold(kilometers: float) -> int:
    """``MAX_DIST_SQ`` for a planar distance threshold in kilometres.

    The bytecode works in 1e-4-degree units (coordinates divided by
    1000); one degree is ~111 km, so the threshold in those units is
    ``km / 111 * 1e4``, squared.  A planar approximation — fine for the
    "is this continent" granularity the use case needs.
    """
    units = kilometers / 111.0 * 10_000.0
    return int(units * units)


RECEIVE_SOURCE = """
u64 geoloc_receive(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) != EBGP_SESSION) {
        next(); // only tag externally learned routes
    }
    u64 existing = get_attr(ATTR_GEOLOC);
    if (existing != 0) { next(); }
    u64 coord = get_xtra("coord");
    if (coord == 0) { next(); }
    u64 len = *(u32 *)(coord);
    if (len != 8) { next(); }
    add_attr(ATTR_GEOLOC, FLAG_OPTIONAL | FLAG_TRANSITIVE, coord + 4, 8);
    next();
}
"""

IMPORT_SOURCE = """
u64 s32ext(u64 v) {
    return (v ^ 2147483648) - 2147483648;
}

u64 absdiff(u64 a, u64 b) {
    u64 d = a - b;
    if (slt(d, 0)) { return 0 - d; }
    return d;
}

u64 geoloc_import(u64 args) {
    u64 attr = get_attr(ATTR_GEOLOC);
    if (attr == 0) { next(); }
    u64 coord = get_xtra("coord");
    if (coord == 0) { next(); }
    // Route's stamped location (network byte order, signed fixed point).
    u64 rlat = s32ext(htonl(*(u32 *)(attr + 4)));
    u64 rlon = s32ext(htonl(*(u32 *)(attr + 8)));
    // This router's location.
    u64 mlat = s32ext(htonl(*(u32 *)(coord + 4)));
    u64 mlon = s32ext(htonl(*(u32 *)(coord + 8)));
    // Work in 1e-4 degree units so squares fit comfortably in u64.
    u64 dlat = absdiff(rlat, mlat) / 1000;
    u64 dlon = absdiff(rlon, mlon) / 1000;
    u64 dist2 = dlat * dlat + dlon * dlon;
    if (dist2 > MAX_DIST_SQ) {
        return FILTER_REJECT; // learned too far away
    }
    next();
}
"""

EXPORT_SOURCE = """
u64 geoloc_export(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) == EBGP_SESSION) {
        u64 attr = get_attr(ATTR_GEOLOC);
        if (attr != 0) {
            remove_attr(ATTR_GEOLOC); // do not leak locations externally
        }
    }
    next();
}
"""

ENCODE_SOURCE = """
u64 geoloc_encode(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) != IBGP_SESSION) {
        next(); // GeoLoc only travels on iBGP sessions
    }
    u64 attr = get_attr(ATTR_GEOLOC);
    if (attr == 0) { next(); }
    u64 len = *(u16 *)(attr + 2);
    if (len > 255) { next(); }
    u8 hdr[4];
    *(u8 *)(hdr) = *(u8 *)(attr + 1);     // flags
    *(u8 *)(hdr + 1) = *(u8 *)(attr);     // type code
    *(u8 *)(hdr + 2) = len;               // one-byte length
    write_buf(hdr, 3);
    write_buf(attr + 4, len);             // value, already network order
    next();
}
"""


def build_manifest(
    latitude: float = 0.0,
    longitude: float = 0.0,
    max_distance_km: float = 5000.0,
    with_import_filter: bool = True,
) -> Manifest:
    """The four-bytecode GeoLoc program of Fig. 2.

    ``latitude``/``longitude`` are only used to derive documentation
    defaults; the router's own position comes from its ``xtra["coord"]``
    configuration (set it with :func:`coord_bytes`).
    """
    codes = [
        {
            "name": "geoloc_receive",
            "insertion_point": "BGP_RECEIVE_MESSAGE",
            "seq": 0,
            "helpers": ["next", "get_peer_info", "get_attr", "get_xtra", "add_attr"],
            "source": RECEIVE_SOURCE,
        },
        {
            "name": "geoloc_export",
            "insertion_point": "BGP_OUTBOUND_FILTER",
            "seq": 0,
            "helpers": ["next", "get_peer_info", "get_attr", "remove_attr"],
            "source": EXPORT_SOURCE,
        },
        {
            "name": "geoloc_encode",
            "insertion_point": "BGP_ENCODE_MESSAGE",
            "seq": 0,
            "helpers": ["next", "get_peer_info", "get_attr", "write_buf"],
            "source": ENCODE_SOURCE,
        },
    ]
    if with_import_filter:
        codes.insert(
            1,
            {
                "name": "geoloc_import",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": ["next", "get_attr", "get_xtra"],
                "source": IMPORT_SOURCE,
            },
        )
    return Manifest(
        name="geoloc",
        codes=codes,
        constants={"MAX_DIST_SQ": distance_threshold(max_distance_km)},
    )
