"""A deliberately divergent BGP_DECISION extension (BAD GADGET).

Griffin & Wilfong's BAD GADGET: three ASes around a ring, each
preferring the route *through its clockwise neighbour* (a two-hop path
to the origin) over its own direct one-hop path.  No stable assignment
exists — whenever a node gets its wish, it withdraws the direct path
its counter-clockwise neighbour's wish depends on — so BGP's decision
process never quiesces.  Godfrey et al. showed essentially any such
policy tweak can break convergence, which is exactly the risk xBGP's
programmable decision point introduces; this plugin exists so the
provenance layer's oscillation detector has a true positive to catch.

The rule must be stated carefully: "prefer anything whose first hop is
AS X" *does* converge once AS-path loop detection drops the looped
re-advertisements.  The gadget's preference is narrower — prefer a
candidate only when its first-hop ASN is the configured neighbour
**and** the AS path is exactly two hops (the neighbour's *direct*
route, not some longer detour) — and that is what makes every stable
state self-defeating.

Per-router configuration rides in ``xtra["prefer"]``: the preferred
neighbour's ASN as 4 network-order bytes.
"""

from __future__ import annotations

import struct

from ..core.manifest import Manifest

__all__ = ["SOURCE", "build_manifest", "prefer_xtra"]

SOURCE = """
// AS_PATH summary of a wire-form attribute block: (hops << 32) | first
// ASN of the first AS_SEQUENCE.  0 when the path is absent or empty.
u64 path_info(u64 arg) {
    u64 len = *(u32 *)(arg);
    u64 p = arg + 4;
    u64 end = p + len;
    while (p + 3 <= end) {
        u64 flags = *(u8 *)(p);
        u64 t = *(u8 *)(p + 1);
        u64 alen = 0;
        u64 hdr = 3;
        if (flags & 16) {
            alen = htons(*(u16 *)(p + 2));
            hdr = 4;
        } else {
            alen = *(u8 *)(p + 2);
        }
        if (t == 2) {
            u64 q = p + hdr;
            u64 send = q + alen;
            u64 hops = 0;
            u64 first = 0;
            while (q + 2 <= send) {
                u64 kind = *(u8 *)(q);
                u64 count = *(u8 *)(q + 1);
                q = q + 2;
                if (kind == 2) {
                    if (first == 0) {
                        if (0 < count) {
                            first = htonl(*(u32 *)(q));
                        }
                    }
                    hops = hops + count;
                } else {
                    hops = hops + 1;
                }
                q = q + count * 4;
            }
            return hops * 4294967296 + first;
        }
        p = p + hdr + alen;
    }
    return 0;
}

// 1 when info describes the gadget-preferred path: exactly two hops,
// entered via the configured neighbour.
u64 is_preferred(u64 info, u64 preferred) {
    u64 hops = info / 4294967296;
    u64 first = info - hops * 4294967296;
    if (hops == 2) {
        if (first == preferred) {
            return 1;
        }
    }
    return 0;
}

u64 prefer_gadget(u64 args) {
    u64 conf = get_xtra("prefer");
    if (conf == 0) { next(); }
    u64 preferred = htonl(*(u32 *)(conf + 4));
    u64 candidate = get_arg(ARG_ROUTE_NEW);
    u64 best = get_arg(ARG_ROUTE_BEST);
    if (candidate == 0 || best == 0) { next(); }
    u64 c_pref = is_preferred(path_info(candidate), preferred);
    u64 b_pref = is_preferred(path_info(best), preferred);
    if (c_pref == 1) {
        if (b_pref == 0) { return 1; }
    }
    if (b_pref == 1) {
        if (c_pref == 0) { return 2; }
    }
    next(); // neither (or both) preferred: native ranking decides
}
"""


def prefer_xtra(preferred_asn: int) -> bytes:
    """The ``xtra["prefer"]`` payload selecting ``preferred_asn``."""
    return struct.pack("!I", preferred_asn)


def build_manifest() -> Manifest:
    """The BAD GADGET preference on BGP_DECISION."""
    return Manifest(
        name="bad_gadget",
        codes=[
            {
                "name": "prefer_gadget",
                "insertion_point": "BGP_DECISION",
                "seq": 0,
                "helpers": ["next", "get_arg", "get_xtra"],
                "source": SOURCE,
            }
        ],
    )
