"""Extension use case: conditional default-route origination.

Exercises the RIB-injection helper the paper's "technical challenges"
section describes: "a dedicated helper function enables an extension to
add a new route to the RIB", using hidden context arguments.

Policy: while a *trigger* prefix (e.g. an upstream's anchor route) is
present in received updates, originate a default route into the RIB;
operators use this pattern so a default is only advertised while real
upstream connectivity exists.  The bytecode tracks the trigger in its
shared memory and calls ``rib_announce`` the first time it sees it.
"""

from __future__ import annotations

from ..bgp.prefix import Prefix
from ..core.manifest import Manifest

__all__ = ["SOURCE", "build_manifest"]

SOURCE = """
u64 watch_trigger(u64 args) {
    u64 pfx = get_arg(ARG_PREFIX);
    if (pfx == 0) { next(); }
    u64 plen = *(u8 *)(pfx + 4);
    if (plen != TRIGGER_LEN) { next(); }
    u64 nbytes = (plen + 7) / 8;
    u64 net = 0;
    u64 i = 0;
    while (i < nbytes) {
        net = (net << 8) | *(u8 *)(pfx + 5 + i);
        i += 1;
    }
    net = net << ((4 - nbytes) * 8);
    if (net != TRIGGER_NET) { next(); }

    // Trigger seen: originate the default once (flag in shared memory).
    u64 flag = ctx_shmget(1);
    if (flag == 0) {
        flag = ctx_shmnew(1, 8);
    }
    if (*(u64 *)(flag) == 0) {
        *(u64 *)(flag) = 1;
        u8 dflt[2];
        dflt[0] = 0;     // wire prefix 0.0.0.0/0: one length octet
        rib_announce(dflt, 0);
    }
    next();
}
"""


def build_manifest(trigger: Prefix) -> Manifest:
    """Watch for ``trigger`` on import; originate 0.0.0.0/0 when seen."""
    return Manifest(
        name="conditional_default",
        codes=[
            {
                "name": "watch_trigger",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": [
                    "next",
                    "get_arg",
                    "ctx_shmget",
                    "ctx_shmnew",
                    "rib_announce",
                ],
                "source": SOURCE,
            }
        ],
        constants={
            "TRIGGER_NET": trigger.network,
            "TRIGGER_LEN": trigger.length,
        },
    )
