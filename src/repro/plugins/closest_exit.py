"""Extension use case: geographic tie-breaking at BGP_DECISION.

The paper's GeoLoc section suggests the attribute "can be used to
adapt router decisions".  This program does exactly that, on the
*decision* insertion point: when two candidate routes both carry a
GeoLoc attribute, prefer the one learned closer to this router —
overriding the RFC 4271 ranking.  Candidates without GeoLoc fall
through (``next()``) to the native decision process.

Demonstrates the BGP_DECISION call convention: ``get_arg`` with
``ARG_ROUTE_NEW`` / ``ARG_ROUTE_BEST`` returns each route's attribute
block in wire form; the bytecode parses the blocks itself (the same
skill the paper's BGP_ENCODE/RECEIVE codes need).  Return value 1
selects the candidate, 2 keeps the current best.
"""

from __future__ import annotations

from ..core.manifest import Manifest

__all__ = ["SOURCE", "build_manifest"]

SOURCE = """
u64 s32ext(u64 v) {
    return (v ^ 2147483648) - 2147483648;
}

// Locate the GeoLoc attribute inside a wire-form attribute block
// (arg block: u32 length, then flags/type/len/value attributes).
u64 find_geoloc(u64 arg) {
    u64 len = *(u32 *)(arg);
    u64 p = arg + 4;
    u64 end = p + len;
    while (p + 3 <= end) {
        u64 flags = *(u8 *)(p);
        u64 t = *(u8 *)(p + 1);
        u64 alen = 0;
        u64 hdr = 3;
        if (flags & 16) {
            alen = htons(*(u16 *)(p + 2));
            hdr = 4;
        } else {
            alen = *(u8 *)(p + 2);
        }
        if (t == ATTR_GEOLOC && alen == 8) {
            return p + hdr;
        }
        p = p + hdr + alen;
    }
    return 0;
}

// Squared planar distance between two GeoLoc values (1e-4 deg units).
u64 dist2(u64 p, u64 q) {
    u64 lat1 = s32ext(htonl(*(u32 *)(p)));
    u64 lon1 = s32ext(htonl(*(u32 *)(p + 4)));
    u64 lat2 = s32ext(htonl(*(u32 *)(q)));
    u64 lon2 = s32ext(htonl(*(u32 *)(q + 4)));
    u64 dlat = lat1 - lat2;
    if (slt(dlat, 0)) { dlat = 0 - dlat; }
    u64 dlon = lon1 - lon2;
    if (slt(dlon, 0)) { dlon = 0 - dlon; }
    dlat = dlat / 1000;
    dlon = dlon / 1000;
    return dlat * dlat + dlon * dlon;
}

u64 prefer_closest(u64 args) {
    u64 candidate = get_arg(ARG_ROUTE_NEW);
    u64 best = get_arg(ARG_ROUTE_BEST);
    if (candidate == 0 || best == 0) { next(); }
    u64 geo_candidate = find_geoloc(candidate);
    u64 geo_best = find_geoloc(best);
    if (geo_candidate == 0 || geo_best == 0) {
        next(); // no location on one side: native ranking decides
    }
    u64 coord = get_xtra("coord");
    if (coord == 0) { next(); }
    u64 d_candidate = dist2(geo_candidate, coord + 4);
    u64 d_best = dist2(geo_best, coord + 4);
    if (d_candidate < d_best) { return 1; }
    if (d_best < d_candidate) { return 2; }
    next(); // equidistant: native tie-break
}
"""


def build_manifest() -> Manifest:
    """The closest-exit program on BGP_DECISION."""
    return Manifest(
        name="closest_exit",
        codes=[
            {
                "name": "prefer_closest",
                "insertion_point": "BGP_DECISION",
                "seq": 0,
                "helpers": ["next", "get_arg", "get_xtra"],
                "source": SOURCE,
            }
        ],
    )
