"""A deliberately crashing extension: the seeded quarantine workload.

The paper's safety story is that a buggy extension cannot take the
router down — the sandbox absorbs the fault, the VMM falls back to the
native behavior, and (with a quarantine policy armed) the circuit
breaker eventually stops even trying.  This plugin is that buggy
extension, packaged: a filter that dereferences NULL on every
invocation, so every run is a sandbox fault.

It exists for fault-injection drills — CI seeds it into a sharded
bench run to prove the `xbgp_quarantine_transitions > 0` alert fires
end-to-end (workers quarantine, the merged registry shows the
transition counter, the alert gate exits non-zero).  It is *not* one
of the paper's use cases and is never attached by default.
"""

from __future__ import annotations

from ..core.manifest import Manifest

__all__ = ["SOURCE", "build_manifest"]

#: Unconditional NULL dereference: every execution is a sandbox fault.
SOURCE = """
u64 crash(u64 args) {
    return *(u64 *)(0);
}
"""


def build_manifest(
    insertion_point: str = "BGP_INBOUND_FILTER", seq: int = 99
) -> Manifest:
    """Manifest attaching the crasher (late in the chain by default,
    so legitimate extensions at earlier ``seq`` still run first)."""
    return Manifest(
        name="faulty",
        codes=[
            {
                "name": "crash",
                "insertion_point": insertion_point,
                "seq": seq,
                "helpers": [],
                "source": SOURCE,
            }
        ],
    )
