"""Use case §3.4: RPKI route-origin validation as extension code.

Like the paper's DUT, the ROA set is loaded from a file/offline source
(no RPKI-Rtr session) into a program **map** — the hash table "as in
BIRD" that made the extension faster than FRRouting's native per-check
trie browse.  The bytecode checks each eBGP route's origin but never
discards invalid ones (§3.4: "checks the validity of the origin of
each prefix but does not discard the invalid ones"); results accumulate
in shared memory counters readable by the harness.

Map encoding: key ``(network << 8) | length`` (network in host int,
upper bits of the /length prefix), value ``(max_length << 32) | asn``.
Multiple ROAs per prefix chain behind ``map_lookup_idx``.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Tuple

from ..bgp.roa import Roa
from ..core.extension import ProgramState, SHARED_BASE
from ..core.manifest import Manifest

__all__ = [
    "SOURCE",
    "roa_map_entries",
    "build_manifest",
    "read_validity_counters",
    "SHM_COUNTERS_KEY",
    "MIN_ROA_LENGTH",
]

#: Shared-memory key under which the bytecode keeps its counters.
SHM_COUNTERS_KEY = 1

#: Shortest ROA prefix length the probe loop considers (RFC-realistic:
#: RIRs do not register shorter IPv4 ROAs).
MIN_ROA_LENGTH = 8

SOURCE = """
u64 rov_import(u64 args) {
    u64 peer = get_peer_info();
    if (peer == 0) { next(); }
    if (*(u32 *)(peer) != EBGP_SESSION) {
        next(); // validate externally learned routes only
    }
    u64 pfx = get_arg(ARG_PREFIX);
    if (pfx == 0) { next(); }
    u64 plen = *(u8 *)(pfx + 4);
    u64 nbytes = (plen + 7) / 8;
    u64 net = 0;
    u64 i = 0;
    while (i < nbytes) {
        net = (net << 8) | *(u8 *)(pfx + 5 + i);
        i = i + 1;
    }
    net = net << ((4 - nbytes) * 8);

    // Origin AS: last ASN of the last AS_SEQUENCE segment.
    u64 ap = get_attr(ATTR_AS_PATH);
    if (ap == 0) { next(); }
    u64 alen = *(u16 *)(ap + 2);
    u64 off = 0;
    u64 origin = 0;
    while (off + 2 <= alen) {
        u64 t = *(u8 *)(ap + 4 + off);
        u64 cnt = *(u8 *)(ap + 4 + off + 1);
        u64 seg = cnt * 4;
        if (t == 2 && cnt > 0) {
            origin = htonl(*(u32 *)(ap + 4 + off + 2 + seg - 4));
        }
        off = off + 2 + seg;
    }

    // RFC 6811: probe every covering length, hash lookup per length.
    u64 validity = ROV_NOT_FOUND;
    u64 l = plen;
    u64 done = 0;
    while (l >= MIN_ROA_LEN && done == 0) {
        u64 mask = 4294967295 << (32 - l);
        u64 key = ((net & mask) << 8) | l;
        u64 idx = 0;
        u64 v = map_lookup_idx(MAP_ROA, key, idx);
        while (v + 1 != 0) {
            validity = ROV_INVALID; // some ROA covers the prefix
            u64 vasn = v & 4294967295;
            u64 vmax = v >> 32;
            if (vasn == origin && plen <= vmax && origin != 0) {
                validity = ROV_VALID;
                done = 1;
            }
            if (done == 1) { break; }
            idx = idx + 1;
            v = map_lookup_idx(MAP_ROA, key, idx);
        }
        l = l - 1;
    }

    // Record the outcome in shared, persistent counters.
    u64 ctrs = ctx_shmget(SHM_COUNTERS);
    if (ctrs == 0) {
        ctrs = ctx_shmnew(SHM_COUNTERS, 24);
    }
    u64 slot = ctrs + validity * 8;
    *(u64 *)(slot) = *(u64 *)(slot) + 1;

    next(); // never discard: measurement-only, like the paper's run
}
"""


def roa_map_entries(roas: Iterable[Roa]) -> List[Tuple[int, int]]:
    """Encode ROAs as (key, value) pairs for the program map."""
    entries: List[Tuple[int, int]] = []
    for roa in roas:
        key = (roa.prefix.network << 8) | roa.prefix.length
        value = (roa.max_length << 32) | (roa.asn & 0xFFFFFFFF)
        entries.append((key, value))
    return entries


def build_manifest(roas: Iterable[Roa]) -> Manifest:
    """The origin-validation program with its preloaded ROA map."""
    return Manifest(
        name="origin_validation",
        codes=[
            {
                "name": "rov_import",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": [
                    "next",
                    "get_peer_info",
                    "get_arg",
                    "get_attr",
                    "map_lookup_idx",
                    "ctx_shmget",
                    "ctx_shmnew",
                ],
                "source": SOURCE,
            }
        ],
        maps={"roa": [list(entry) for entry in roa_map_entries(roas)]},
        constants={
            "SHM_COUNTERS": SHM_COUNTERS_KEY,
            "MIN_ROA_LEN": MIN_ROA_LENGTH,
        },
    )


def read_validity_counters(state: ProgramState) -> Dict[str, int]:
    """Decode the bytecode's shared-memory counters.

    Returns ``{"VALID": n, "NOT_FOUND": n, "INVALID": n}`` (zeroes if
    the program never ran).
    """
    address = state.shm_get(SHM_COUNTERS_KEY)
    if address == 0:
        return {"VALID": 0, "NOT_FOUND": 0, "INVALID": 0}
    offset = address - state.shared.base
    valid, not_found, invalid = struct.unpack_from("<QQQ", state.shared.data, offset)
    return {"VALID": valid, "NOT_FOUND": not_found, "INVALID": invalid}
