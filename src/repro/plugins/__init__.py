"""The paper's use cases as xBGP programs (xc sources + manifests).

* :mod:`repro.plugins.geoloc` — §2, GeoLoc attribute, 4 bytecodes;
* :mod:`repro.plugins.igp_filter` — §3.1, IGP-cost export filter
  (Listing 1);
* :mod:`repro.plugins.route_reflector` — §3.2, RFC 4456 as extension
  code;
* :mod:`repro.plugins.valley_free` — §3.3, data-center valley
  filtering;
* :mod:`repro.plugins.origin_validation` — §3.4, RPKI origin
  validation with a hash map;
* :mod:`repro.plugins.closest_exit` — our extension: GeoLoc-based
  tie-breaking on the BGP_DECISION insertion point;
* :mod:`repro.plugins.pynative` — host-speed twins of the RR and OV
  programs (the benchmarks' ``pyext`` arm);
* :mod:`repro.plugins.faulty` — a deliberately crashing filter for
  fault-injection drills (the seeded quarantine workload).

Every program is plain eBPF once compiled; the *same* manifest loads
into PyFRR and PyBIRD.
"""

from . import (
    closest_exit,
    conditional_default,
    faulty,
    geoloc,
    igp_filter,
    origin_validation,
    pynative,
    route_reflector,
    valley_free,
)

__all__ = [
    "closest_exit",
    "conditional_default",
    "faulty",
    "geoloc",
    "igp_filter",
    "origin_validation",
    "pynative",
    "route_reflector",
    "valley_free",
]
