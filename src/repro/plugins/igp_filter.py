"""Use case §3.1: export filter on IGP nexthop cost (Listing 1).

The operator sets transatlantic link costs to 1000; this outbound
filter then stops advertising routes whose nexthop sits across the
ocean (IGP metric above ``MAX_METRIC``) to eBGP peers — something BGP
communities cannot express because they are assigned at ingress and
never change when the IGP distance does.
"""

from __future__ import annotations

from ..core.manifest import Manifest

__all__ = ["SOURCE", "build_manifest", "DEFAULT_MAX_METRIC"]

DEFAULT_MAX_METRIC = 500

#: A line-for-line transcription of the paper's Listing 1 into xc.
SOURCE = """
uint64_t export_igp(uint64_t args) {
    u64 nexthop = get_nexthop(0);
    u64 peer = get_peer_info();
    if (peer == 0) {
        next(); // no peer in scope: not our business
    }
    if (*(u32 *)(peer) != EBGP_SESSION) {
        next(); // Do not filter on iBGP sessions
    }
    if (nexthop == 0) {
        return FILTER_REJECT; // unresolvable nexthop
    }
    if (*(u32 *)(nexthop + 4) <= MAX_METRIC) {
        next(); // the route is accepted by this filter;
    }         // next filter will decide to export route
    return FILTER_REJECT;
}
"""


def build_manifest(max_metric: int = DEFAULT_MAX_METRIC) -> Manifest:
    """Manifest attaching the filter to BGP_OUTBOUND_FILTER."""
    return Manifest(
        name="igp_export_filter",
        codes=[
            {
                "name": "export_igp",
                "insertion_point": "BGP_OUTBOUND_FILTER",
                "seq": 0,
                "helpers": ["next", "get_nexthop", "get_peer_info"],
                "source": SOURCE,
            }
        ],
        constants={"MAX_METRIC": max_metric},
    )
