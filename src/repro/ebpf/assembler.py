"""Two-pass textual eBPF assembler.

The accepted syntax follows the ubpf/llvm mnemonics::

    ; comments with ';' or '#'
    mov   r1, 17
    lddw  r2, 0x1122334455667788
    ldxw  r3, [r1+4]
    stxdw [r10-8], r2
    jeq   r1, 42, out
    call  get_attr         ; helper by name (resolved via helper_ids)
    call  2                ; or by number
    ja    loop
  out:
    exit

32-bit ALU forms take a ``32`` suffix (``mov32``, ``add32``…), loads and
stores encode their width in the mnemonic (``b``, ``h``, ``w``, ``dw``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_B,
    BPF_DW,
    BPF_H,
    BPF_IMM,
    BPF_JMP,
    BPF_JMP32,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_MEM,
    BPF_ST,
    BPF_STX,
    BPF_W,
    BPF_X,
    JMP_OPS,
    Instruction,
)

__all__ = ["assemble", "AssemblerError"]

_SIZES = {"b": BPF_B, "h": BPF_H, "w": BPF_W, "dw": BPF_DW}
_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_MEM_RE = re.compile(r"^\[\s*(r\d+)\s*([+-]\s*\w+)?\s*\]$")

_JUMP_CONDS = [op for op in JMP_OPS if op not in ("ja", "call", "exit")]


class AssemblerError(ValueError):
    """Raised with the offending line number for any syntax problem."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _strip(line: str) -> str:
    for marker in (";", "#", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(line_number, f"bad integer {token!r}") from exc


def _parse_reg(token: str, line_number: int) -> int:
    token = token.strip()
    if not token.startswith("r") or not token[1:].isdigit():
        raise AssemblerError(line_number, f"bad register {token!r}")
    register = int(token[1:])
    if register > 10:
        raise AssemblerError(line_number, f"register out of range {token!r}")
    return register


def _parse_mem(token: str, line_number: int) -> Tuple[int, int]:
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblerError(line_number, f"bad memory operand {token!r}")
    register = _parse_reg(match.group(1), line_number)
    offset = 0
    if match.group(2):
        offset = _parse_int(match.group(2).replace(" ", ""), line_number)
    if not -32768 <= offset <= 32767:
        raise AssemblerError(line_number, f"offset out of s16 range: {offset}")
    return register, offset


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(
    source: str, helper_ids: Optional[Mapping[str, int]] = None
) -> List[Instruction]:
    """Assemble ``source`` into instruction slots.

    ``helper_ids`` maps helper names to call numbers so programs can say
    ``call get_attr`` instead of hard-coding the xBGP helper id.
    """
    helper_ids = dict(helper_ids or {})
    lines = source.splitlines()

    # Pass 1: resolve label addresses (in slots, counting lddw as 2).
    labels: Dict[str, int] = {}
    slot = 0
    parsed: List[Tuple[int, str, List[str]]] = []
    for line_number, raw in enumerate(lines, start=1):
        line = _strip(raw)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblerError(line_number, f"duplicate label {name!r}")
            labels[name] = slot
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        operands = _split_operands(rest)
        parsed.append((line_number, mnemonic, operands))
        slot += 2 if mnemonic == "lddw" else 1

    # Pass 2: emit.
    instructions: List[Instruction] = []

    def branch_target(token: str, line_number: int) -> int:
        if token in labels:
            target = labels[token]
            return target - (len(instructions) + 1)
        return _parse_int(token, line_number)

    for line_number, mnemonic, operands in parsed:
        instructions.extend(
            _emit(mnemonic, operands, line_number, helper_ids, branch_target)
        )
    return instructions


def _emit(mnemonic, operands, line_number, helper_ids, branch_target):
    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                line_number,
                f"{mnemonic} expects {count} operands, got {len(operands)}",
            )

    # -- exit / call / ja --------------------------------------------
    if mnemonic == "exit":
        need(0)
        return [Instruction(BPF_JMP | JMP_OPS["exit"], 0, 0, 0, 0)]
    if mnemonic == "call":
        need(1)
        token = operands[0]
        if token in helper_ids:
            helper = helper_ids[token]
        else:
            helper = _parse_int(token, line_number)
        return [Instruction(BPF_JMP | JMP_OPS["call"], 0, 0, 0, helper)]
    if mnemonic == "ja":
        need(1)
        return [
            Instruction(
                BPF_JMP | JMP_OPS["ja"], 0, 0, branch_target(operands[0], line_number), 0
            )
        ]

    # -- lddw ----------------------------------------------------------
    if mnemonic == "lddw":
        need(2)
        dst = _parse_reg(operands[0], line_number)
        value = _parse_int(operands[1], line_number) & 0xFFFFFFFFFFFFFFFF
        low = value & 0xFFFFFFFF
        high = (value >> 32) & 0xFFFFFFFF
        return [
            Instruction(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, _to_s32(low)),
            Instruction(0, 0, 0, 0, _to_s32(high)),
        ]

    # -- loads / stores -------------------------------------------------
    for prefix, klass in (("ldx", BPF_LDX), ("stx", BPF_STX), ("st", BPF_ST)):
        if mnemonic.startswith(prefix) and mnemonic[len(prefix):] in _SIZES:
            size = _SIZES[mnemonic[len(prefix):]]
            need(2)
            if klass == BPF_LDX:
                dst = _parse_reg(operands[0], line_number)
                src, offset = _parse_mem(operands[1], line_number)
                return [Instruction(klass | BPF_MEM | size, dst, src, offset, 0)]
            dst, offset = _parse_mem(operands[0], line_number)
            if klass == BPF_STX:
                src = _parse_reg(operands[1], line_number)
                return [Instruction(klass | BPF_MEM | size, dst, src, offset, 0)]
            imm = _parse_int(operands[1], line_number)
            return [Instruction(klass | BPF_MEM | size, dst, 0, offset, _to_s32(imm))]

    # -- conditional jumps ------------------------------------------------
    for op in _JUMP_CONDS:
        for suffix, klass in (("32", BPF_JMP32), ("", BPF_JMP)):
            if mnemonic == op + suffix:
                need(3)
                dst = _parse_reg(operands[0], line_number)
                offset = branch_target(operands[2], line_number)
                if not -32768 <= offset <= 32767:
                    raise AssemblerError(line_number, f"jump out of range: {offset}")
                if operands[1].lstrip().startswith("r"):
                    src = _parse_reg(operands[1], line_number)
                    return [
                        Instruction(klass | BPF_X | JMP_OPS[op], dst, src, offset, 0)
                    ]
                imm = _parse_int(operands[1], line_number)
                return [
                    Instruction(
                        klass | BPF_K | JMP_OPS[op], dst, 0, offset, _to_s32(imm)
                    )
                ]

    # -- ALU ---------------------------------------------------------------
    for op in ALU_OPS:
        for suffix, klass in (("32", BPF_ALU), ("", BPF_ALU64)):
            if mnemonic == op + suffix:
                if op == "neg":
                    need(1)
                    dst = _parse_reg(operands[0], line_number)
                    return [Instruction(klass | ALU_OPS[op], dst, 0, 0, 0)]
                if op == "end":
                    raise AssemblerError(
                        line_number, "use be16/be32/be64/le16/le32/le64"
                    )
                need(2)
                dst = _parse_reg(operands[0], line_number)
                if operands[1].lstrip().startswith("r") and operands[1].lstrip()[1:].isdigit():
                    src = _parse_reg(operands[1], line_number)
                    return [
                        Instruction(klass | BPF_X | ALU_OPS[op], dst, src, 0, 0)
                    ]
                imm = _parse_int(operands[1], line_number)
                return [
                    Instruction(klass | BPF_K | ALU_OPS[op], dst, 0, 0, _to_s32(imm))
                ]

    # -- byte swaps ----------------------------------------------------------
    for name, source_bit in (("be", BPF_X), ("le", BPF_K)):
        for width in (16, 32, 64):
            if mnemonic == f"{name}{width}":
                need(1)
                dst = _parse_reg(operands[0], line_number)
                return [
                    Instruction(
                        BPF_ALU | source_bit | ALU_OPS["end"], dst, 0, 0, width
                    )
                ]

    raise AssemblerError(line_number, f"unknown mnemonic {mnemonic!r}")


def _to_s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value
