"""eBPF disassembler producing assembler-compatible text.

``assemble(disassemble(program))`` round-trips, which the property
tests exercise; the VMM also uses it for diagnostics when an extension
code faults.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_JMP,
    BPF_JMP32,
    BPF_K,
    BPF_LDX,
    BPF_ST,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    OP_LDDW,
    SIZE_BYTES,
    Instruction,
    InstructionError,
    class_of,
    is_load_store,
)

__all__ = ["disassemble", "disassemble_one"]

_SIZE_SUFFIX = {0x00: "w", 0x08: "h", 0x10: "b", 0x18: "dw"}
_ALU_NAMES = {code: name for name, code in ALU_OPS.items()}
_JMP_NAMES = {code: name for name, code in JMP_OPS.items()}


def _mem_operand(register: int, offset: int) -> str:
    if offset > 0:
        return f"[r{register}+{offset}]"
    if offset < 0:
        return f"[r{register}{offset}]"
    return f"[r{register}]"


def disassemble_one(
    instruction: Instruction,
    next_imm: int = 0,
    helper_names: Optional[Mapping[int, str]] = None,
) -> str:
    """Render one instruction (``next_imm`` supplies the lddw high half)."""
    opcode = instruction.opcode
    klass = class_of(opcode)

    if opcode == OP_LDDW:
        value = (instruction.imm & 0xFFFFFFFF) | ((next_imm & 0xFFFFFFFF) << 32)
        return f"lddw r{instruction.dst}, {value:#x}"

    if is_load_store(opcode):
        suffix = _SIZE_SUFFIX[opcode & 0x18]
        if klass == BPF_LDX:
            return (
                f"ldx{suffix} r{instruction.dst}, "
                f"{_mem_operand(instruction.src, instruction.offset)}"
            )
        if klass == BPF_STX:
            return (
                f"stx{suffix} {_mem_operand(instruction.dst, instruction.offset)}, "
                f"r{instruction.src}"
            )
        if klass == BPF_ST:
            return (
                f"st{suffix} {_mem_operand(instruction.dst, instruction.offset)}, "
                f"{instruction.imm}"
            )

    if klass in (BPF_ALU, BPF_ALU64):
        operation = _ALU_NAMES.get(opcode & 0xF0)
        if operation is None:
            raise InstructionError(f"unknown ALU op in {instruction}")
        if operation == "end":
            name = "be" if opcode & BPF_X else "le"
            return f"{name}{instruction.imm} r{instruction.dst}"
        suffix = "32" if klass == BPF_ALU else ""
        if operation == "neg":
            return f"neg{suffix} r{instruction.dst}"
        if opcode & BPF_X:
            return f"{operation}{suffix} r{instruction.dst}, r{instruction.src}"
        return f"{operation}{suffix} r{instruction.dst}, {instruction.imm}"

    if klass in (BPF_JMP, BPF_JMP32):
        operation = _JMP_NAMES.get(opcode & 0xF0)
        if operation is None:
            raise InstructionError(f"unknown JMP op in {instruction}")
        if operation == "exit":
            return "exit"
        if operation == "call":
            if helper_names and instruction.imm in helper_names:
                return f"call {helper_names[instruction.imm]}"
            return f"call {instruction.imm}"
        if operation == "ja":
            return f"ja {instruction.offset:+d}"
        suffix = "32" if klass == BPF_JMP32 else ""
        if opcode & BPF_X:
            return (
                f"{operation}{suffix} r{instruction.dst}, r{instruction.src}, "
                f"{instruction.offset:+d}"
            )
        return (
            f"{operation}{suffix} r{instruction.dst}, {instruction.imm}, "
            f"{instruction.offset:+d}"
        )

    raise InstructionError(f"cannot disassemble {instruction}")


def disassemble(
    instructions: List[Instruction],
    helper_names: Optional[Mapping[int, str]] = None,
) -> str:
    """Render a whole program, one instruction per line.

    Relative jump targets stay numeric (``ja +3``); the assembler
    accepts that form, so the text round-trips.
    """
    lines: List[str] = []
    index = 0
    while index < len(instructions):
        instruction = instructions[index]
        if instruction.opcode == OP_LDDW:
            if index + 1 >= len(instructions):
                raise InstructionError("lddw missing second slot")
            lines.append(
                disassemble_one(
                    instruction, instructions[index + 1].imm, helper_names
                )
            )
            index += 2
            continue
        lines.append(disassemble_one(instruction, 0, helper_names))
        index += 1
    return "\n".join(lines)
