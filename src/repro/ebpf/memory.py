"""Sandboxed VM memory: bounds-checked regions in a virtual address space.

The paper leans on eBPF's isolation guarantee ("an extension code has
its own dedicated memory space and cannot directly access the memory of
other extension codes or the host implementation").  Here that isolation
is concrete: a VM can only dereference addresses that fall inside a
region registered with its :class:`VmMemory`; everything else raises
:class:`SandboxViolation`, which the VMM turns into a fallback to the
host's native code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "SandboxViolation",
    "MemoryRegion",
    "VmMemory",
    "STACK_SIZE",
    "STACK_BASE",
    "HEAP_BASE",
    "ARG_BASE",
]

STACK_SIZE = 512
#: Virtual layout: the exact numbers are arbitrary but stable, and far
#: from zero so that null-pointer dereferences always fault.
STACK_BASE = 0x1000_0000
ARG_BASE = 0x2000_0000
HEAP_BASE = 0x3000_0000
SHARED_BASE = 0x4000_0000


class SandboxViolation(Exception):
    """An extension code touched memory outside its sandbox."""


class MemoryRegion:
    """A contiguous, optionally read-only, span of VM memory."""

    __slots__ = ("base", "data", "writable", "label")

    def __init__(self, base: int, size: int, writable: bool = True, label: str = ""):
        if size < 0:
            raise ValueError(f"negative region size: {size}")
        self.base = base
        self.data = bytearray(size)
        self.writable = writable
        self.label = label or f"region@{base:#x}"

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int, size: int) -> bool:
        return self.base <= address and address + size <= self.end

    def __repr__(self) -> str:
        mode = "rw" if self.writable else "ro"
        return f"MemoryRegion({self.label}, {self.base:#x}+{len(self.data)}, {mode})"


class VmMemory:
    """The address space of one virtual machine execution.

    Holds the stack, the argument region and a bump-allocated heap that
    helper functions use to hand structured data (peer info, attribute
    bytes…) to the extension code.  The heap is *ephemeral*: §2.1 of the
    paper notes ephemeral allocations are freed automatically when the
    extension code finishes — :meth:`reset_heap` implements that.
    """

    def __init__(
        self,
        heap_size: int = 1 << 16,
        lazy_zero: bool = True,
        fast_access: bool = True,
    ):
        self.stack = MemoryRegion(STACK_BASE, STACK_SIZE, writable=True, label="stack")
        self._heap = MemoryRegion(HEAP_BASE, heap_size, writable=True, label="heap")
        self._heap_used = 0
        #: High-watermark of bytes dirtied by *freed* allocations.  With
        #: ``lazy_zero`` (the default) :meth:`reset_heap` only records
        #: this watermark instead of memsetting the used span; the bytes
        #: are re-zeroed lazily, on the first allocation that reuses
        #: them.  The observable contract is unchanged — every
        #: *allocated* block still reads as zeros until written — but a
        #: run that allocates 200 bytes no longer pays to scrub the
        #: previous run's span on every reset.
        self._heap_dirty = 0
        self._lazy_zero = lazy_zero
        #: With ``fast_access`` (the default) the accessors below probe
        #: the heap and stack directly before the general region walk;
        #: off, every access pays the pre-overhaul ``_translate`` loop
        #: (kept for the hot-path ablation's legacy arm).
        self._fast_access = fast_access
        self._regions: List[MemoryRegion] = [self.stack, self._heap]

    # -- region management ---------------------------------------------

    def attach(self, region: MemoryRegion) -> None:
        """Register an extra region (argument block, shared memory…)."""
        for existing in self._regions:
            if existing.base < region.end and region.base < existing.end:
                raise ValueError(f"{region} overlaps {existing}")
        self._regions.append(region)

    def detach(self, region: MemoryRegion) -> None:
        self._regions.remove(region)

    def frame_pointer(self) -> int:
        """Initial r10: one past the top of the stack (grows down)."""
        return self.stack.end

    # -- heap ------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Bump-allocate ``size`` bytes of zeroed heap; return the VM address."""
        if size < 0:
            raise ValueError(f"negative allocation: {size}")
        aligned = (size + 7) & ~7
        used = self._heap_used
        new_used = used + aligned
        data = self._heap.data
        if new_used > len(data):
            raise SandboxViolation(
                f"heap exhausted: {used}+{aligned} > {len(data)}"
            )
        dirty = self._heap_dirty
        if dirty > used:
            # Lazy zeroing: scrub only the part of this block a freed
            # run dirtied (eager mode keeps dirty at 0, skipping this).
            end = new_used if new_used < dirty else dirty
            data[used:end] = bytes(end - used)
        self._heap_used = new_used
        return self._heap.base + used

    def alloc_bytes(self, payload: bytes) -> int:
        """Allocate and fill a heap block; return its VM address.

        Hot path for every helper that hands a struct to the extension
        (``get_attr``, ``get_peer_info``…): writes straight into the
        heap buffer, skipping region translation, and zeroes only the
        alignment padding instead of the whole block.
        """
        size = len(payload)
        aligned = (size + 7) & ~7
        used = self._heap_used
        new_used = used + aligned
        data = self._heap.data
        if new_used > len(data):
            raise SandboxViolation(
                f"heap exhausted: {used}+{aligned} > {len(data)}"
            )
        data[used : used + size] = payload
        if size != aligned:
            data[used + size : new_used] = bytes(aligned - size)
        self._heap_used = new_used
        return self._heap.base + used

    def reset_heap(self) -> None:
        """Free all ephemeral allocations (end of extension execution).

        Lazy mode (default) is zero-fill-free: it just records the
        dirty high-watermark and rewinds the bump pointer; freed bytes
        are scrubbed on reuse by :meth:`alloc`.  Eager mode
        (``lazy_zero=False``) memsets the used span, the pre-overhaul
        behaviour kept for the hot-path ablation's legacy arm.
        """
        used = self._heap_used
        if used:
            if self._lazy_zero:
                if used > self._heap_dirty:
                    self._heap_dirty = used
            else:
                self._heap.data[:used] = bytes(used)
            self._heap_used = 0

    @property
    def heap_used(self) -> int:
        return self._heap_used

    @property
    def heap_region(self) -> MemoryRegion:
        """The heap region, for JIT fast paths.

        Stable for the lifetime of this :class:`VmMemory`: resets and
        lazy zeroing mutate ``heap_region.data`` in place and never
        replace the bytearray, so translated code may close over the
        buffer once and keep using it across runs.
        """
        return self._heap

    # -- access -----------------------------------------------------------

    def _translate(self, address: int, size: int, write: bool) -> Tuple[MemoryRegion, int]:
        for region in self._regions:
            base = region.base
            if base <= address and address + size <= base + len(region.data):
                if write and not region.writable:
                    raise SandboxViolation(
                        f"write to read-only {region.label} at {address:#x}"
                    )
                return region, address - base
        raise SandboxViolation(
            f"{'write' if write else 'read'} of {size} bytes at {address:#x} "
            "outside sandbox"
        )

    # Heap and stack carry nearly all helper traffic (helper structs
    # are heap-allocated, value buffers live on the stack), and both
    # are always writable — so every accessor probes them directly
    # before falling back to the general region walk.

    def read(self, address: int, size: int) -> int:
        """Load ``size`` bytes little-endian (eBPF is little-endian)."""
        if self._fast_access:
            heap = self._heap
            offset = address - heap.base
            if 0 <= offset and offset + size <= len(heap.data):
                return int.from_bytes(heap.data[offset : offset + size], "little")
            stack = self.stack
            offset = address - stack.base
            if 0 <= offset and offset + size <= len(stack.data):
                return int.from_bytes(stack.data[offset : offset + size], "little")
        region, offset = self._translate(address, size, write=False)
        return int.from_bytes(region.data[offset : offset + size], "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if self._fast_access:
            heap = self._heap
            offset = address - heap.base
            if 0 <= offset and offset + size <= len(heap.data):
                heap.data[offset : offset + size] = payload
                return
            stack = self.stack
            offset = address - stack.base
            if 0 <= offset and offset + size <= len(stack.data):
                stack.data[offset : offset + size] = payload
                return
        region, offset = self._translate(address, size, write=True)
        region.data[offset : offset + size] = payload

    def read_bytes(self, address: int, size: int) -> bytes:
        if self._fast_access:
            heap = self._heap
            offset = address - heap.base
            if 0 <= offset and offset + size <= len(heap.data):
                return bytes(heap.data[offset : offset + size])
            stack = self.stack
            offset = address - stack.base
            if 0 <= offset and offset + size <= len(stack.data):
                return bytes(stack.data[offset : offset + size])
        region, offset = self._translate(address, size, write=False)
        return bytes(region.data[offset : offset + size])

    def write_bytes(self, address: int, payload: bytes) -> None:
        size = len(payload)
        if self._fast_access:
            heap = self._heap
            offset = address - heap.base
            if 0 <= offset and offset + size <= len(heap.data):
                heap.data[offset : offset + size] = payload
                return
            stack = self.stack
            offset = address - stack.base
            if 0 <= offset and offset + size <= len(stack.data):
                stack.data[offset : offset + size] = payload
                return
        region, offset = self._translate(address, size, write=True)
        region.data[offset : offset + size] = payload

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (for debug-print helpers)."""
        out = bytearray()
        for index in range(limit):
            byte = self.read(address + index, 1)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise SandboxViolation(f"unterminated string at {address:#x}")
