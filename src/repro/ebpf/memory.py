"""Sandboxed VM memory: bounds-checked regions in a virtual address space.

The paper leans on eBPF's isolation guarantee ("an extension code has
its own dedicated memory space and cannot directly access the memory of
other extension codes or the host implementation").  Here that isolation
is concrete: a VM can only dereference addresses that fall inside a
region registered with its :class:`VmMemory`; everything else raises
:class:`SandboxViolation`, which the VMM turns into a fallback to the
host's native code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "SandboxViolation",
    "MemoryRegion",
    "VmMemory",
    "STACK_SIZE",
    "STACK_BASE",
    "HEAP_BASE",
    "ARG_BASE",
]

STACK_SIZE = 512
#: Virtual layout: the exact numbers are arbitrary but stable, and far
#: from zero so that null-pointer dereferences always fault.
STACK_BASE = 0x1000_0000
ARG_BASE = 0x2000_0000
HEAP_BASE = 0x3000_0000
SHARED_BASE = 0x4000_0000


class SandboxViolation(Exception):
    """An extension code touched memory outside its sandbox."""


class MemoryRegion:
    """A contiguous, optionally read-only, span of VM memory."""

    __slots__ = ("base", "data", "writable", "label")

    def __init__(self, base: int, size: int, writable: bool = True, label: str = ""):
        if size < 0:
            raise ValueError(f"negative region size: {size}")
        self.base = base
        self.data = bytearray(size)
        self.writable = writable
        self.label = label or f"region@{base:#x}"

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, address: int, size: int) -> bool:
        return self.base <= address and address + size <= self.end

    def __repr__(self) -> str:
        mode = "rw" if self.writable else "ro"
        return f"MemoryRegion({self.label}, {self.base:#x}+{len(self.data)}, {mode})"


class VmMemory:
    """The address space of one virtual machine execution.

    Holds the stack, the argument region and a bump-allocated heap that
    helper functions use to hand structured data (peer info, attribute
    bytes…) to the extension code.  The heap is *ephemeral*: §2.1 of the
    paper notes ephemeral allocations are freed automatically when the
    extension code finishes — :meth:`reset_heap` implements that.
    """

    def __init__(self, heap_size: int = 1 << 16):
        self.stack = MemoryRegion(STACK_BASE, STACK_SIZE, writable=True, label="stack")
        self._heap = MemoryRegion(HEAP_BASE, heap_size, writable=True, label="heap")
        self._heap_used = 0
        self._regions: List[MemoryRegion] = [self.stack, self._heap]

    # -- region management ---------------------------------------------

    def attach(self, region: MemoryRegion) -> None:
        """Register an extra region (argument block, shared memory…)."""
        for existing in self._regions:
            if existing.base < region.end and region.base < existing.end:
                raise ValueError(f"{region} overlaps {existing}")
        self._regions.append(region)

    def detach(self, region: MemoryRegion) -> None:
        self._regions.remove(region)

    def frame_pointer(self) -> int:
        """Initial r10: one past the top of the stack (grows down)."""
        return self.stack.end

    # -- heap ------------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Bump-allocate ``size`` bytes of heap; return the VM address."""
        if size < 0:
            raise ValueError(f"negative allocation: {size}")
        aligned = (size + 7) & ~7
        if self._heap_used + aligned > len(self._heap.data):
            raise SandboxViolation(
                f"heap exhausted: {self._heap_used}+{aligned} "
                f"> {len(self._heap.data)}"
            )
        address = self._heap.base + self._heap_used
        self._heap_used += aligned
        return address

    def alloc_bytes(self, payload: bytes) -> int:
        """Allocate and fill a heap block; return its VM address."""
        address = self.alloc(len(payload))
        self.write_bytes(address, payload)
        return address

    def reset_heap(self) -> None:
        """Free all ephemeral allocations (end of extension execution)."""
        self._heap.data[: self._heap_used] = bytes(self._heap_used)
        self._heap_used = 0

    @property
    def heap_used(self) -> int:
        return self._heap_used

    # -- access -----------------------------------------------------------

    def _translate(self, address: int, size: int, write: bool) -> Tuple[MemoryRegion, int]:
        for region in self._regions:
            if region.contains(address, size):
                if write and not region.writable:
                    raise SandboxViolation(
                        f"write to read-only {region.label} at {address:#x}"
                    )
                return region, address - region.base
        raise SandboxViolation(
            f"{'write' if write else 'read'} of {size} bytes at {address:#x} "
            "outside sandbox"
        )

    def read(self, address: int, size: int) -> int:
        """Load ``size`` bytes little-endian (eBPF is little-endian)."""
        region, offset = self._translate(address, size, write=False)
        return int.from_bytes(region.data[offset : offset + size], "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        region, offset = self._translate(address, size, write=True)
        region.data[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, address: int, size: int) -> bytes:
        region, offset = self._translate(address, size, write=False)
        return bytes(region.data[offset : offset + size])

    def write_bytes(self, address: int, payload: bytes) -> None:
        region, offset = self._translate(address, len(payload), write=True)
        region.data[offset : offset + len(payload)] = payload

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (for debug-print helpers)."""
        out = bytearray()
        for index in range(limit):
            byte = self.read(address + index, 1)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise SandboxViolation(f"unterminated string at {address:#x}")
