"""A userspace eBPF virtual machine: ISA, assembler, verifier, interpreter.

This is the reproduction of the paper's "modified eBPF virtual
machine": extension bytecode is genuine eBPF (64-bit ISA, r0-r10,
512-byte stack, helper calls), executed in a sandboxed address space
with static verification before attach and an instruction budget at
runtime.
"""

from .assembler import AssemblerError, assemble
from .disassembler import disassemble
from .helpers import Helper, HelperError, HelperTable
from .isa import Instruction, decode_program, encode_program
from .memory import MemoryRegion, SandboxViolation, VmMemory
from .verifier import VerifierConfig, VerifierError, verify
from .vm import ExecutionError, VirtualMachine

__all__ = [
    "AssemblerError",
    "assemble",
    "disassemble",
    "Helper",
    "HelperError",
    "HelperTable",
    "Instruction",
    "decode_program",
    "encode_program",
    "MemoryRegion",
    "SandboxViolation",
    "VmMemory",
    "VerifierConfig",
    "VerifierError",
    "verify",
    "ExecutionError",
    "VirtualMachine",
]
