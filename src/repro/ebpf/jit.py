"""eBPF → Python translation ("JIT").

The paper poses *"How to implement this instruction set efficiently —
so as to minimize the overhead?"*.  On a Python substrate the naive
interpreter's per-instruction dispatch dominates everything, so this
module translates a verified program into one Python function:

* basic blocks become straight-line Python statements inside a
  ``while True`` dispatch loop over the block leader's pc;
* 8-byte stack slots addressed as ``[r10 ± const]`` are **promoted to
  Python locals** when the program never materialises a stack address
  (no ``mov rX, r10``-style ALU use of r10 and no sub-word stack
  access) — the common case for xc-generated code.  A per-block
  copy-propagation pass then elides redundant slot↔register transfers;
* loads and stores through pointers inline bounds-checked ``bytearray``
  fast paths for the stack and heap regions, falling back to
  :class:`VmMemory` for everything else (shared memory, argument
  blocks);
* helper calls dispatch directly to the bound Python callables.

Semantics are identical to :class:`repro.ebpf.vm.VirtualMachine` (the
property tests check translated-vs-interpreted equivalence); the
instruction budget is enforced per basic block.  ``steps``/``hc``
accounting matches the interpreter exactly — one step per executed
instruction (``lddw`` counts once), flushed before every operation
that can fault or delegate — so both engines report identical
``steps_executed``/``helper_calls`` on returning, ``next()``-ing and
faulting runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from .helpers import HelperTable
from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_JMP,
    BPF_JMP32,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_ST,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDDW,
    SIZE_BYTES,
    Instruction,
    class_of,
    is_load_store,
)
from .memory import VmMemory

__all__ = ["translate", "JitError"]

_M64 = (1 << 64) - 1

#: Leader ranges at or below this size dispatch via a flat if/elif run;
#: larger ranges split into a balanced binary search on ``pc``.
_LINEAR_DISPATCH_MAX = 4

#: How many successor blocks a dispatch leaf inlines when control just
#: falls through (no taken jump).  Straight-line runs and not-taken
#: conditionals then execute without bouncing through the dispatch
#: loop; only *taken* jumps pay the O(log blocks) search.  Bounded so
#: generated-code size stays linear-ish in the program size.
_FALLTHROUGH_INLINE_MAX = 6
_M32 = (1 << 32) - 1

_ALU_NAMES = {code: name for name, code in ALU_OPS.items()}
_JMP_NAMES = {code: name for name, code in JMP_OPS.items()}
_COND = {
    "jeq": "==",
    "jne": "!=",
    "jgt": ">",
    "jge": ">=",
    "jlt": "<",
    "jle": "<=",
}
_SIGNED_COND = {"jsgt": ">", "jsge": ">=", "jslt": "<", "jsle": "<="}


class JitError(Exception):
    """Translation failed (malformed program — verifier should have
    caught it, so this indicates an internal inconsistency)."""


class _BudgetError(Exception):
    """Raised by generated code; converted to ExecutionError by the VM."""

    def __init__(self, pc: int):
        super().__init__(f"pc={pc}")
        self.pc = pc


def _leaders(program: Sequence[Instruction]) -> List[int]:
    leaders: Set[int] = {0}
    index = 0
    count = len(program)
    while index < count:
        instruction = program[index]
        opcode = instruction.opcode
        width = 2 if opcode == OP_LDDW else 1
        klass = class_of(opcode)
        if klass in (BPF_JMP, BPF_JMP32) and opcode != OP_CALL:
            if opcode == OP_EXIT:
                if index + 1 < count:
                    leaders.add(index + 1)
            else:
                leaders.add(index + 1 + instruction.offset)
                if index + 1 < count:
                    leaders.add(index + 1)
        index += width
    return sorted(leader for leader in leaders if 0 <= leader < count)


def _count_insns(program: Sequence[Instruction], start: int, end: int) -> int:
    """Instructions (not slots) in ``[start, end)`` — ``lddw`` is one."""
    total = 0
    index = start
    while index < end:
        total += 1
        index += 2 if program[index].opcode == OP_LDDW else 1
    return total


#: Matches repro.xc.codegen.SCALAR_LIMIT: with a trusted layout, stack
#: offsets in (-SCALAR_LIMIT, 0) are scalar slots never aliased by
#: pointers, so they can live in Python locals.
SCALAR_LIMIT = 384


def _promotable_slots(
    program: Sequence[Instruction], trusted_layout: bool = False
) -> Set[int]:
    """Offsets of [r10+off] 8-byte slots safe to keep in Python locals.

    Without a trusted layout: empty (no promotion) when the program
    materialises a stack address or touches the stack with sub-word
    granularity, since a pointer could then alias any slot.

    With ``trusted_layout`` (bytecode produced by :mod:`repro.xc`,
    whose frame segregates address-taken blocks below ``-SCALAR_LIMIT``)
    the scalar half is promoted even when stack addresses escape.
    """
    slots: Set[int] = set()
    escape = False
    for instruction in program:
        opcode = instruction.opcode
        klass = class_of(opcode)
        if klass in (BPF_ALU, BPF_ALU64):
            if opcode & BPF_X and instruction.src == 10:
                escape = True
            continue
        if klass in (BPF_JMP, BPF_JMP32):
            if opcode & BPF_X and instruction.src == 10:
                escape = True
            continue
        if is_load_store(opcode) and opcode != OP_LDDW:
            size = SIZE_BYTES[opcode & 0x18]
            base = instruction.src if klass == BPF_LDX else instruction.dst
            if klass == BPF_STX and instruction.src == 10:
                escape = True
            if base == 10:
                offset = instruction.offset
                if trusted_layout:
                    if size == 8 and -SCALAR_LIMIT < offset < 0:
                        slots.add(offset)
                    # block-region / sub-word accesses stay in memory
                elif size != 8:
                    return set()
                else:
                    slots.add(offset)
    if escape and not trusted_layout:
        return set()
    return slots


def _slot_var(offset: int) -> str:
    return f"s_m{-offset}" if offset < 0 else f"s_p{offset}"


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)


class _Mirrors:
    """Per-block copy propagation between registers and promoted slots."""

    def __init__(self) -> None:
        self._reg_of: Dict[int, int] = {}  # slot offset -> register
        self._slot_of: Dict[int, int] = {}  # register -> slot offset

    def reset(self) -> None:
        self._reg_of.clear()
        self._slot_of.clear()

    def kill_reg(self, register: int) -> None:
        slot = self._slot_of.pop(register, None)
        if slot is not None and self._reg_of.get(slot) == register:
            del self._reg_of[slot]

    def kill_regs(self, registers) -> None:
        for register in registers:
            self.kill_reg(register)

    def bind(self, register: int, slot: int) -> None:
        self.kill_reg(register)
        old = self._reg_of.get(slot)
        if old is not None:
            self._slot_of.pop(old, None)
        self._reg_of[slot] = register
        self._slot_of[register] = slot

    def holds(self, register: int, slot: int) -> bool:
        return self._reg_of.get(slot) == register


def emit_dispatch_loop(
    w: "_Writer",
    program: Sequence[Instruction],
    leaders: List[int],
    emitter: "_BlockEmitter",
    step_budget: int,
    indent: int,
    profiled: bool,
) -> None:
    """Emit the ``pc``-dispatch body over ``leaders``.

    The caller provides the enclosing ``while True:`` loop; this emits a
    balanced binary search over block leaders with fall-through inlining.
    Shared between :func:`translate` (whole-program dispatch) and the
    native tier's bail tail (:mod:`repro.ebpf.native`), which demotes
    unstructurable control flow onto exactly this loop.
    """
    count = len(program)

    def emit_leaf(block_index: int, ind: int) -> None:
        # Emit the block, then keep inlining fall-through successors (up
        # to _FALLTHROUGH_INLINE_MAX) so straight-line control flow
        # never re-enters the dispatch loop.  Inlined blocks may also
        # exist as their own dispatch leaves (they are jump targets);
        # the duplication trades code size for dispatch rounds.
        index = block_index
        while True:
            leader = leaders[index]
            end = leaders[index + 1] if index + 1 < len(leaders) else count
            # Budget checked against the whole block up front (bounds
            # loops without per-instruction tests); steps themselves
            # accrue incrementally inside the block so mid-block faults
            # report the same count the interpreter would.
            block_insns = _count_insns(program, leader, end)
            w.emit(
                ind,
                f"if steps + {block_insns} > {step_budget}: raise ExecBudget({leader})",
            )
            if profiled:
                # Entry counter after the budget check: entries count
                # blocks that actually started executing.
                w.emit(ind, f"PB[{leader}] += 1")
            emitter.block_leader = leader
            last = (
                index + 1 >= len(leaders)
                or index - block_index >= _FALLTHROUGH_INLINE_MAX
            )
            terminated = emitter.emit_block(
                w, leader, end, indent=ind, fallthrough=last
            )
            if terminated or last:
                return
            index += 1

    def emit_dispatch(lo: int, hi: int, ind: int) -> None:
        # Balanced binary search over block leaders: every jump costs
        # O(log blocks) comparisons instead of the O(blocks) scan of a
        # flat if/elif chain — the dominant dispatch cost for programs
        # with many basic blocks.
        span = hi - lo
        if span <= _LINEAR_DISPATCH_MAX:
            for block_index in range(lo, hi):
                keyword = "if" if block_index == lo else "elif"
                w.emit(ind, f"{keyword} pc == {leaders[block_index]}:")
                emit_leaf(block_index, ind + 1)
            w.emit(ind, "else:")
            w.emit(ind + 1, "raise ExecBudget(pc)")
            return
        mid = lo + span // 2
        w.emit(ind, f"if pc < {leaders[mid]}:")
        emit_dispatch(lo, mid, ind + 1)
        w.emit(ind, "else:")
        emit_dispatch(mid, hi, ind + 1)

    emit_dispatch(0, len(leaders), indent)


def translate(
    program: Sequence[Instruction],
    helpers: HelperTable,
    memory: VmMemory,
    step_budget: int,
    vm,
    trusted_layout: bool = False,
    profile=None,
) -> Callable[..., int]:
    """Translate ``program`` into a Python ``run(r1..r5) -> r0``.

    ``vm`` is passed through to helper functions (they read ``vm.ctx``
    and ``vm.memory``).  ``trusted_layout`` asserts the xc frame
    convention (scalars above ``-SCALAR_LIMIT``, blocks below), enabling
    scalar-slot promotion in programs that take stack addresses.

    With a ``profile`` (:class:`repro.telemetry.profiler.VmProfile`)
    the generated code additionally maintains per-block entry and
    instruction counters (incremented exactly where ``steps`` flushes,
    so their sum equals ``steps_executed`` at every observable point),
    times each helper call, and tracks the stack high watermark.  Slot
    promotion is disabled in profiled translations so stack traffic is
    observable; step accounting is identical either way.
    """
    leaders = _leaders(program)
    slots = _promotable_slots(program, trusted_layout) if profile is None else set()
    count = len(program)

    # Direct heap/stack views: VmMemory guarantees these regions'
    # buffers survive resets (mutated in place, never replaced), so the
    # translated function binds them once here and reuses them for the
    # VM's whole lifetime.
    heap = memory.heap_region
    stack = memory.stack
    namespace: Dict[str, object] = {
        "__builtins__": {},
        "int_from": int.from_bytes,
        "mem_read": memory.read,
        "mem_write": memory.write,
        "vm": vm,
        "ExecBudget": _BudgetError,
        "BaseException": BaseException,
        "FP": memory.frame_pointer(),
        "HB": heap.base,
        "HS": len(heap.data),
        "heap": heap.data,
        "SB": stack.base,
        "SS": len(stack.data),
        "stk": stack.data,
    }
    for helper_id in helpers.ids():
        helper = helpers.get(helper_id)
        namespace[f"H{helper_id}"] = helper.fn
    if profile is not None:
        from time import perf_counter

        namespace["PB"] = profile.block_entries
        namespace["PI"] = profile.block_insns
        namespace["HT"] = profile.helper_seconds
        namespace["HK"] = profile.helper_count
        namespace["PSL"] = profile.stack_low
        namespace["perf"] = perf_counter

    # With promoted slots, computed addresses are almost always heap
    # pointers (helper results); without promotion, the stack spill
    # traffic dominates.  Pick the fast-path order accordingly.
    emitter = _BlockEmitter(
        program, slots, heap_first=bool(slots), profiled=profile is not None
    )

    w = _Writer()
    w.emit(0, "def run(r1=0, r2=0, r3=0, r4=0, r5=0):")
    w.emit(1, "r0 = r6 = r7 = r8 = r9 = 0")
    w.emit(1, f"r1 &= {_M64}; r2 &= {_M64}; r3 &= {_M64}; r4 &= {_M64}; r5 &= {_M64}")
    w.emit(1, "r10 = FP")
    for offset in sorted(slots):
        w.emit(1, f"{_slot_var(offset)} = 0")
    w.emit(1, "steps = 0")
    w.emit(1, "hc = 0")
    w.emit(1, "pc = 0")
    w.emit(1, "try:")
    w.emit(2, "while True:")

    emit_dispatch_loop(
        w, program, leaders, emitter, step_budget, 3, profile is not None
    )
    # Aborted runs (budget, sandbox fault, helper error, next()) still
    # publish their counters before the exception propagates.
    w.emit(1, "except BaseException:")
    w.emit(2, "vm.steps_executed = steps; vm.helper_calls = hc")
    w.emit(2, "raise")

    source = "\n".join(w.lines)
    try:
        exec(compile(source, "<ebpf-jit>", "exec"), namespace)  # noqa: S102
    except SyntaxError as exc:  # pragma: no cover - would be a bug
        raise JitError(f"generated bad code: {exc}\n{source}") from exc
    return namespace["run"]  # type: ignore[return-value]


def _reg(index: int) -> str:
    return f"r{index}"


def _sx(expr: str, bits: int) -> str:
    sign = 1 << (bits - 1)
    return f"(({expr}) - {1 << bits} if ({expr}) >= {sign} else ({expr}))"


class _BlockEmitter:
    def __init__(
        self,
        program: Sequence[Instruction],
        slots: Set[int],
        heap_first: bool,
        profiled: bool = False,
    ):
        self.program = program
        self.slots = slots
        self.heap_first = heap_first
        self.profiled = profiled
        #: Leader of the block currently being emitted; maintained by
        #: the caller so profiled step flushes charge the right block.
        self.block_leader = 0
        self.mirrors = _Mirrors()
        #: Steps accrued since the last flush.  Straight-line ALU work
        #: batches into one ``steps += n``; a flush is forced before any
        #: operation that can fault/delegate (helper call, memory
        #: access) or leave the block, keeping ``steps`` exactly equal
        #: to the interpreter's count at every observable point.
        self._pending = 0

    def _flush_steps(self, w: _Writer, indent: int) -> None:
        if self._pending:
            if self.profiled:
                # Mirror every steps flush into the per-block counter so
                # sum(PI) == steps at each observable point.
                w.emit(
                    indent,
                    f"steps += {self._pending}; "
                    f"PI[{self.block_leader}] += {self._pending}",
                )
            else:
                w.emit(indent, f"steps += {self._pending}")
            self._pending = 0

    # -- memory fast paths ------------------------------------------------

    def _mem_read(self, w: _Writer, indent: int, dst: str, addr: str, size: int) -> None:
        regions = ("heap", "stk") if self.heap_first else ("stk", "heap")
        w.emit(indent, f"_a = {addr}")
        first, second = regions
        bases = {"heap": ("HB", "HS", "heap"), "stk": ("SB", "SS", "stk")}
        base1, size1, buf1 = bases[first]
        base2, size2, buf2 = bases[second]
        w.emit(indent, f"_o = _a - {base1}")
        w.emit(indent, f"if 0 <= _o and _o + {size} <= {size1}:")
        w.emit(indent + 1, self._read_expr(dst, buf1, size))
        if self.profiled and buf1 == "stk":
            w.emit(indent + 1, "if _o < PSL[0]: PSL[0] = _o")
        w.emit(indent, "else:")
        w.emit(indent + 1, f"_o = _a - {base2}")
        w.emit(indent + 1, f"if 0 <= _o and _o + {size} <= {size2}:")
        w.emit(indent + 2, self._read_expr(dst, buf2, size))
        if self.profiled and buf2 == "stk":
            w.emit(indent + 2, "if _o < PSL[0]: PSL[0] = _o")
        w.emit(indent + 1, "else:")
        w.emit(indent + 2, f"{dst} = mem_read(_a, {size})")

    @staticmethod
    def _read_expr(dst: str, buf: str, size: int) -> str:
        if size == 1:
            return f"{dst} = {buf}[_o]"
        return f"{dst} = int_from({buf}[_o:_o+{size}], 'little')"

    def _mem_write(self, w: _Writer, indent: int, addr: str, value: str, size: int) -> None:
        regions = ("heap", "stk") if self.heap_first else ("stk", "heap")
        w.emit(indent, f"_a = {addr}")
        w.emit(indent, f"_v = {value}")
        first, second = regions
        bases = {"heap": ("HB", "HS", "heap"), "stk": ("SB", "SS", "stk")}
        base1, size1, buf1 = bases[first]
        base2, size2, buf2 = bases[second]
        w.emit(indent, f"_o = _a - {base1}")
        w.emit(indent, f"if 0 <= _o and _o + {size} <= {size1}:")
        w.emit(indent + 1, self._write_stmt(buf1, size))
        if self.profiled and buf1 == "stk":
            w.emit(indent + 1, "if _o < PSL[0]: PSL[0] = _o")
        w.emit(indent, "else:")
        w.emit(indent + 1, f"_o = _a - {base2}")
        w.emit(indent + 1, f"if 0 <= _o and _o + {size} <= {size2}:")
        w.emit(indent + 2, self._write_stmt(buf2, size))
        if self.profiled and buf2 == "stk":
            w.emit(indent + 2, "if _o < PSL[0]: PSL[0] = _o")
        w.emit(indent + 1, "else:")
        w.emit(indent + 2, f"mem_write(_a, {size}, _v)")

    @staticmethod
    def _write_stmt(buf: str, size: int) -> str:
        if size == 1:
            return f"{buf}[_o] = _v & 0xff"
        return (
            f"{buf}[_o:_o+{size}] = (_v & {(1 << (8 * size)) - 1})"
            f".to_bytes({size}, 'little')"
        )

    # -- block emission -------------------------------------------------------

    def emit_block(
        self, w: _Writer, start: int, end: int, indent: int = 3, fallthrough: bool = True
    ) -> bool:
        """Emit one basic block; returns whether it ended control flow.

        With ``fallthrough=False`` the caller inlines the successor
        block directly after this one, so the ``pc = end; continue``
        tail is suppressed (steps are still flushed).
        """
        program = self.program
        mirrors = self.mirrors
        mirrors.reset()
        self._pending = 0
        index = start
        terminated = False
        while index < end:
            insn = program[index]
            opcode = insn.opcode
            klass = class_of(opcode)
            dst = _reg(insn.dst)
            # Pre-count this instruction (the interpreter increments
            # before executing, so a faulting op includes itself).
            self._pending += 1

            if opcode == OP_LDDW:
                value = (insn.imm & _M32) | ((program[index + 1].imm & _M32) << 32)
                w.emit(indent, f"{dst} = {value}")
                mirrors.kill_reg(insn.dst)
                index += 2
                continue

            if opcode == OP_EXIT:
                self._flush_steps(w, indent)
                w.emit(indent, "vm.steps_executed = steps; vm.helper_calls = hc")
                w.emit(indent, "return r0")
                terminated = True
                index += 1
                continue

            if opcode == OP_CALL:
                self._flush_steps(w, indent)
                w.emit(indent, "hc += 1")
                if self.profiled:
                    w.emit(indent, "_t = perf()")
                    w.emit(
                        indent, f"r0 = H{insn.imm}(vm, r1, r2, r3, r4, r5) & {_M64}"
                    )
                    w.emit(indent, f"HT[{insn.imm}] += perf() - _t")
                    w.emit(indent, f"HK[{insn.imm}] += 1")
                else:
                    w.emit(
                        indent, f"r0 = H{insn.imm}(vm, r1, r2, r3, r4, r5) & {_M64}"
                    )
                w.emit(indent, "r1 = r2 = r3 = r4 = r5 = 0")
                mirrors.kill_regs(range(0, 6))
                index += 1
                continue

            if opcode == OP_JA:
                self._flush_steps(w, indent)
                w.emit(indent, f"pc = {index + 1 + insn.offset}")
                w.emit(indent, "continue")
                terminated = True
                index += 1
                continue

            if klass in (BPF_JMP, BPF_JMP32):
                self._flush_steps(w, indent)
                self._emit_cond_jump(w, indent, insn, index, klass)
                index += 1
                continue

            if klass in (BPF_ALU, BPF_ALU64):
                self._emit_alu(w, indent, insn, klass)
                mirrors.kill_reg(insn.dst)
                index += 1
                continue

            if is_load_store(opcode):
                self._emit_load_store(w, indent, insn, klass)
                index += 1
                continue

            raise JitError(f"unhandled opcode {opcode:#x} at {index}")

        if not terminated and end <= len(self.program):
            self._flush_steps(w, indent)
            if fallthrough:
                w.emit(indent, f"pc = {end}")
                w.emit(indent, "continue")
        return terminated

    def _emit_cond_jump(self, w, indent, insn, index, klass) -> None:
        name = _JMP_NAMES[insn.opcode & 0xF0]
        wide = klass == BPF_JMP
        mask = _M64 if wide else _M32
        bits = 64 if wide else 32
        dst = _reg(insn.dst)
        left = dst if wide else f"({dst} & {_M32})"
        if insn.opcode & BPF_X:
            right = _reg(insn.src) if wide else f"({_reg(insn.src)} & {_M32})"
        else:
            right = str(insn.imm & mask)
        if name in _COND:
            cond = f"{left} {_COND[name]} {right}"
        elif name == "jset":
            cond = f"({left} & {right})"
        elif name in _SIGNED_COND:
            cond = f"{_sx(left, bits)} {_SIGNED_COND[name]} {_sx(right, bits)}"
        else:  # pragma: no cover
            raise JitError(f"bad jump {insn.opcode:#x}")
        w.emit(indent, f"if {cond}:")
        w.emit(indent + 1, f"pc = {index + 1 + insn.offset}")
        w.emit(indent + 1, "continue")

    def _emit_load_store(self, w, indent, insn, klass) -> None:
        size = SIZE_BYTES[insn.opcode & 0x18]
        mirrors = self.mirrors
        if klass == BPF_LDX:
            if insn.src == 10 and insn.offset in self.slots:
                if mirrors.holds(insn.dst, insn.offset):
                    return  # register already holds the slot's value
                w.emit(indent, f"{_reg(insn.dst)} = {_slot_var(insn.offset)}")
                mirrors.bind(insn.dst, insn.offset)
            else:
                self._flush_steps(w, indent)  # access may fault mid-block
                self._mem_read(
                    w,
                    indent,
                    _reg(insn.dst),
                    f"(r{insn.src} + {insn.offset}) & {_M64}",
                    size,
                )
                mirrors.kill_reg(insn.dst)
            return
        if klass == BPF_STX:
            if insn.dst == 10 and insn.offset in self.slots:
                if mirrors.holds(insn.src, insn.offset):
                    return  # slot already holds this register's value
                w.emit(indent, f"{_slot_var(insn.offset)} = {_reg(insn.src)}")
                mirrors.bind(insn.src, insn.offset)
            else:
                self._flush_steps(w, indent)
                self._mem_write(
                    w,
                    indent,
                    f"(r{insn.dst} + {insn.offset}) & {_M64}",
                    _reg(insn.src),
                    size,
                )
            return
        # BPF_ST: immediate store.
        if insn.dst == 10 and insn.offset in self.slots:
            w.emit(indent, f"{_slot_var(insn.offset)} = {insn.imm & _M64}")
            old = self.mirrors._reg_of.pop(insn.offset, None)  # noqa: SLF001
            if old is not None:
                self.mirrors._slot_of.pop(old, None)  # noqa: SLF001
        else:
            self._flush_steps(w, indent)
            self._mem_write(
                w,
                indent,
                f"(r{insn.dst} + {insn.offset}) & {_M64}",
                str(insn.imm & _M64),
                size,
            )

    def _emit_alu(self, w: _Writer, indent: int, insn: Instruction, klass: int) -> None:
        name = _ALU_NAMES[insn.opcode & 0xF0]
        wide = klass == BPF_ALU64
        mask = _M64 if wide else _M32
        bits = 64 if wide else 32
        dst = _reg(insn.dst)

        if name == "end":
            width = insn.imm
            if insn.opcode & BPF_X:  # be
                w.emit(
                    indent,
                    f"{dst} = int_from((({dst}) & {(1 << width) - 1})"
                    f".to_bytes({width // 8}, 'little'), 'big')",
                )
            else:  # le: truncate
                w.emit(indent, f"{dst} = {dst} & {(1 << width) - 1}")
            return

        if insn.opcode & BPF_X:
            operand = _reg(insn.src) if wide else f"({_reg(insn.src)} & {_M32})"
        else:
            operand = str(insn.imm & mask)
        value = dst if wide else f"({dst} & {_M32})"

        if name == "mov":
            w.emit(indent, f"{dst} = {operand}")
            return
        if name in ("add", "sub", "mul", "or", "and", "xor"):
            op = {"add": "+", "sub": "-", "mul": "*", "or": "|", "and": "&", "xor": "^"}[
                name
            ]
            w.emit(indent, f"{dst} = ({value} {op} {operand}) & {mask}")
            return
        if name == "div":
            w.emit(indent, f"_d = {operand}")
            w.emit(indent, f"{dst} = ({value} // _d) & {mask} if _d else 0")
            return
        if name == "mod":
            w.emit(indent, f"_d = {operand}")
            w.emit(indent, f"{dst} = ({value} % _d) & {mask} if _d else {value}")
            return
        if name == "lsh":
            w.emit(indent, f"{dst} = ({value} << ({operand} % {bits})) & {mask}")
            return
        if name == "rsh":
            w.emit(indent, f"{dst} = ({value} & {mask}) >> ({operand} % {bits})")
            return
        if name == "arsh":
            w.emit(indent, f"{dst} = ({_sx(value, bits)} >> ({operand} % {bits})) & {mask}")
            return
        if name == "neg":
            w.emit(indent, f"{dst} = (-{value}) & {mask}")
            return
        raise JitError(f"unhandled ALU {name}")
