"""Static verifier for extension bytecode.

The VMM refuses to attach bytecode that does not pass verification,
mirroring the kernel-eBPF contract the paper relies on for safety.
Checks performed:

* structural: non-empty, ≤ ``max_instructions``, intact ``lddw`` pairs,
  every opcode known;
* register discipline: writes only to r0-r9, reads only from r0-r10,
  no reads of registers never written on some path (conservative
  forward data-flow over the CFG, r1-r5 live on entry as arguments);
* control flow: every jump lands on a real instruction boundary inside
  the program, execution cannot fall off the end, an ``exit`` is
  reachable;
* stack bounds: direct ``[r10+off]`` dereferences must land inside the
  512-byte frame (r10 points one past the top, so valid offsets are
  ``-STACK_SIZE <= off`` and ``off + size <= 0``) — rejected statically
  instead of faulting at run time;
* termination: back-edges (loops) are rejected unless ``allow_loops``
  — in that case the interpreter's instruction budget bounds runtime;
* calls: helper ids must belong to the allowed set (the manifest lists
  the helpers each bytecode may use — §2.1);
* arithmetic: division/modulo by a zero *constant* is rejected
  (runtime zero divisors yield zero, as in the kernel).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_JMP,
    BPF_JMP32,
    BPF_K,
    BPF_LDX,
    BPF_ST,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDDW,
    SIZE_BYTES,
    Instruction,
    class_of,
    is_load_store,
)
from .memory import STACK_SIZE

__all__ = ["VerifierError", "verify", "VerifierConfig"]

_ALU_CODES = set(ALU_OPS.values())
_JMP_CODES = set(JMP_OPS.values())
_COND_JUMPS = {
    code
    for name, code in JMP_OPS.items()
    if name not in ("ja", "call", "exit")
}


class VerifierError(Exception):
    """Verification failed; ``index`` points at the offending slot."""

    def __init__(self, index: int, message: str):
        super().__init__(f"instruction {index}: {message}")
        self.index = index


class VerifierConfig:
    """Verification policy knobs."""

    __slots__ = ("max_instructions", "allow_loops", "allowed_helpers")

    def __init__(
        self,
        max_instructions: int = 4096,
        allow_loops: bool = False,
        allowed_helpers: Optional[Iterable[int]] = None,
    ):
        self.max_instructions = max_instructions
        self.allow_loops = allow_loops
        self.allowed_helpers: Optional[Set[int]] = (
            set(allowed_helpers) if allowed_helpers is not None else None
        )


def verify(
    program: Sequence[Instruction], config: Optional[VerifierConfig] = None
) -> None:
    """Raise :class:`VerifierError` unless ``program`` is acceptable."""
    config = config or VerifierConfig()
    count = len(program)
    if count == 0:
        raise VerifierError(0, "empty program")
    if count > config.max_instructions:
        raise VerifierError(0, f"program too long: {count}")

    lddw_seconds = _find_lddw_seconds(program)
    _check_opcodes(program, lddw_seconds, config)
    _check_control_flow(program, lddw_seconds, config)
    _check_register_flow(program, lddw_seconds)


def _find_lddw_seconds(program: Sequence[Instruction]) -> Set[int]:
    seconds: Set[int] = set()
    index = 0
    while index < len(program):
        if program[index].opcode == OP_LDDW:
            if index + 1 >= len(program):
                raise VerifierError(index, "lddw missing second slot")
            second = program[index + 1]
            if second.opcode != 0 or second.dst or second.src or second.offset:
                raise VerifierError(index + 1, "malformed lddw second slot")
            seconds.add(index + 1)
            index += 2
            continue
        index += 1
    return seconds


def _check_opcodes(program, lddw_seconds, config) -> None:
    for index, instruction in enumerate(program):
        if index in lddw_seconds:
            continue
        opcode = instruction.opcode
        klass = class_of(opcode)
        if opcode == OP_LDDW:
            if instruction.dst > 9:
                raise VerifierError(index, "lddw writes to bad register")
            continue
        if is_load_store(opcode):
            if (opcode & 0xE0) != 0x60:  # only BPF_MEM mode supported
                raise VerifierError(index, f"unsupported load/store mode {opcode:#x}")
            if klass == BPF_LDX and instruction.dst > 9:
                raise VerifierError(index, "load writes to bad register")
            if instruction.src > 10 or instruction.dst > 10:
                raise VerifierError(index, "register out of range")
            pointer = instruction.src if klass == BPF_LDX else instruction.dst
            if pointer == 10:
                size = SIZE_BYTES[opcode & 0x18]
                offset = instruction.offset
                if offset < -STACK_SIZE or offset + size > 0:
                    raise VerifierError(
                        index,
                        f"stack access out of bounds: [r10{offset:+d}] "
                        f"size {size} outside [-{STACK_SIZE}, 0)",
                    )
            continue
        if klass in (BPF_ALU, BPF_ALU64):
            operation = opcode & 0xF0
            if operation not in _ALU_CODES:
                raise VerifierError(index, f"unknown ALU opcode {opcode:#x}")
            if instruction.dst > 9:
                raise VerifierError(index, "ALU writes to bad register (r10 is read-only)")
            if (opcode & BPF_X) and instruction.src > 10:
                raise VerifierError(index, "register out of range")
            if (
                operation in (ALU_OPS["div"], ALU_OPS["mod"])
                and not (opcode & BPF_X)
                and instruction.imm == 0
            ):
                raise VerifierError(index, "division by zero constant")
            if operation == ALU_OPS["end"] and instruction.imm not in (16, 32, 64):
                raise VerifierError(index, f"bad byteswap width {instruction.imm}")
            continue
        if klass in (BPF_JMP, BPF_JMP32):
            operation = opcode & 0xF0
            if operation not in _JMP_CODES:
                raise VerifierError(index, f"unknown JMP opcode {opcode:#x}")
            if opcode == OP_CALL:
                if (
                    config.allowed_helpers is not None
                    and instruction.imm not in config.allowed_helpers
                ):
                    raise VerifierError(
                        index,
                        f"helper {instruction.imm} not in the manifest's allowed set",
                    )
                continue
            if operation in _COND_JUMPS and instruction.dst > 10:
                raise VerifierError(index, "register out of range")
            continue
        raise VerifierError(index, f"unknown opcode {opcode:#x}")


def _successors(program, index) -> List[int]:
    instruction = program[index]
    opcode = instruction.opcode
    if opcode == OP_EXIT:
        return []
    if opcode == OP_LDDW:
        return [index + 2]
    klass = class_of(opcode)
    if klass in (BPF_JMP, BPF_JMP32):
        operation = opcode & 0xF0
        if opcode == OP_JA:
            return [index + 1 + instruction.offset]
        if operation in _COND_JUMPS:
            return [index + 1, index + 1 + instruction.offset]
    return [index + 1]


def _check_control_flow(program, lddw_seconds, config) -> None:
    count = len(program)
    reachable: Set[int] = set()
    stack = [0]
    saw_exit = False
    back_edge = None
    while stack:
        index = stack.pop()
        if index in reachable:
            continue
        if not 0 <= index < count:
            raise VerifierError(index, "control flow leaves the program")
        if index in lddw_seconds:
            raise VerifierError(index, "jump into the middle of lddw")
        reachable.add(index)
        instruction = program[index]
        if instruction.opcode == OP_EXIT:
            saw_exit = True
        for successor in _successors(program, index):
            if not 0 <= successor < count:
                raise VerifierError(index, "jump target out of range")
            if successor <= index:
                back_edge = (index, successor)
            stack.append(successor)
    if not saw_exit:
        raise VerifierError(count - 1, "no reachable exit")
    if back_edge is not None and not config.allow_loops:
        source, target = back_edge
        raise VerifierError(
            source,
            f"back-edge to {target} (loops need VerifierConfig.allow_loops)",
        )
    # Falling off the end: the last reachable straight-line instruction
    # must not flow past the program.  _successors bounds-check above
    # already catches this because index+1 == count raises.


def _check_register_flow(program, lddw_seconds) -> None:
    """Conservative may-be-uninitialised analysis over the CFG.

    On entry r1 (context) and r10 (frame pointer) are initialised; the
    xBGP ABI passes a single argument pointer in r1.  r2-r5 are treated
    as initialised too (the kernel is stricter; helper glue in the VMM
    zeroes them), but r6-r9 must be written before read.
    """
    count = len(program)
    entry_state = frozenset({0, 1, 2, 3, 4, 5, 10})
    states: dict = {0: entry_state}
    worklist = [0]
    while worklist:
        index = worklist.pop()
        state = states[index]
        if index in lddw_seconds:
            continue
        instruction = program[index]
        reads, writes = _reads_writes(instruction)
        for register in reads:
            if register not in state:
                raise VerifierError(
                    index, f"r{register} may be read before initialisation"
                )
        new_state = frozenset(state | writes)
        for successor in _successors(program, index):
            if successor >= count:
                continue
            previous = states.get(successor)
            if previous is None:
                states[successor] = new_state
                worklist.append(successor)
            else:
                merged = previous & new_state
                if merged != previous:
                    states[successor] = merged
                    worklist.append(successor)


def _reads_writes(instruction: Instruction):
    opcode = instruction.opcode
    klass = class_of(opcode)
    reads: Set[int] = set()
    writes: Set[int] = set()
    if opcode == OP_LDDW:
        writes.add(instruction.dst)
    elif opcode == OP_EXIT:
        reads.add(0)
    elif opcode == OP_CALL:
        # Helper arguments r1-r5 are considered consumed; r0 is the result
        # and r1-r5 become scratch (clobbered).
        writes.update({0})
    elif is_load_store(opcode):
        if klass == BPF_LDX:
            reads.add(instruction.src)
            writes.add(instruction.dst)
        elif klass == BPF_STX:
            reads.add(instruction.dst)
            reads.add(instruction.src)
        elif klass == BPF_ST:
            reads.add(instruction.dst)
    elif klass in (BPF_ALU, BPF_ALU64):
        operation = opcode & 0xF0
        if operation == ALU_OPS["mov"]:
            writes.add(instruction.dst)
        else:
            reads.add(instruction.dst)
            writes.add(instruction.dst)
        if opcode & BPF_X:
            reads.add(instruction.src)
    elif klass in (BPF_JMP, BPF_JMP32):
        operation = opcode & 0xF0
        if operation in _COND_JUMPS:
            reads.add(instruction.dst)
            if opcode & BPF_X:
                reads.add(instruction.src)
    return reads, writes
