"""Helper-call registry: the bridge from bytecode to host functions.

A helper is a host-side Python callable the bytecode invokes with the
``call`` instruction.  Registries are small and explicit: each helper
has a stable numeric id (part of the ABI — the same ids must mean the
same functions on every xBGP-compliant host, or bytecode would not be
portable) and a name used by the assembler, the xc compiler and the
manifest's allowed-helpers list.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

__all__ = ["Helper", "HelperTable", "HelperError"]

#: Signature: helper(vm, r1, r2, r3, r4, r5) -> u64
HelperFn = Callable[..., int]


class HelperError(Exception):
    """A helper rejected its arguments or hit a host-side problem."""


class Helper:
    """One registered helper function."""

    __slots__ = ("helper_id", "name", "fn")

    def __init__(self, helper_id: int, name: str, fn: HelperFn):
        if helper_id < 0:
            raise ValueError(f"negative helper id {helper_id}")
        self.helper_id = helper_id
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"Helper({self.helper_id}, {self.name!r})"


class HelperTable:
    """Id- and name-addressable set of helpers for one VM execution."""

    def __init__(self) -> None:
        self._by_id: Dict[int, Helper] = {}
        self._by_name: Dict[str, Helper] = {}

    def register(self, helper_id: int, name: str, fn: HelperFn) -> Helper:
        if helper_id in self._by_id:
            raise ValueError(f"helper id {helper_id} already registered")
        if name in self._by_name:
            raise ValueError(f"helper name {name!r} already registered")
        helper = Helper(helper_id, name, fn)
        self._by_id[helper_id] = helper
        self._by_name[name] = helper
        return helper

    def get(self, helper_id: int) -> Optional[Helper]:
        return self._by_id.get(helper_id)

    def by_name(self, name: str) -> Optional[Helper]:
        return self._by_name.get(name)

    def name_to_id(self) -> Dict[str, int]:
        """Mapping for the assembler/compiler (``call get_attr``)."""
        return {name: helper.helper_id for name, helper in self._by_name.items()}

    def id_to_name(self) -> Dict[int, str]:
        """Mapping for the disassembler."""
        return {helper.helper_id: helper.name for helper in self._by_id.values()}

    def ids(self) -> Iterable[int]:
        return self._by_id.keys()

    def restricted(self, names: Iterable[str]) -> "HelperTable":
        """A sub-table exposing only ``names``.

        The manifest "lists the different xBGP API functions that the
        bytecode uses" (§2.1); the VMM builds the per-bytecode table
        with exactly that subset so a call to anything else faults.
        """
        table = HelperTable()
        for name in names:
            helper = self._by_name.get(name)
            if helper is None:
                raise KeyError(f"unknown helper {name!r}")
            table.register(helper.helper_id, helper.name, helper.fn)
        return table

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, helper_id: int) -> bool:
        return helper_id in self._by_id
