"""The eBPF interpreter.

Registers are Python integers masked to 64 bits; memory access goes
through :class:`repro.ebpf.memory.VmMemory`, so a program can only
touch its stack, its argument block, the helper-managed heap and any
shared regions the VMM attached.  Runtime protections on top of the
static verifier: an instruction budget (bounds even ``allow_loops``
programs) and kernel-style division semantics (x/0 == 0, x%0 == x).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

from .helpers import HelperError, HelperTable
from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_JMP,
    BPF_JMP32,
    BPF_LDX,
    BPF_ST,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDDW,
    SIZE_BYTES,
    Instruction,
    class_of,
)
from .memory import SandboxViolation, VmMemory

__all__ = ["VirtualMachine", "ExecutionError", "DEFAULT_STEP_BUDGET"]

_U64 = 0xFFFFFFFFFFFFFFFF
_U32 = 0xFFFFFFFF

DEFAULT_STEP_BUDGET = 1_000_000


class ExecutionError(Exception):
    """Raised when a program faults at runtime (budget, bad call…)."""

    def __init__(self, pc: int, message: str):
        super().__init__(f"pc={pc}: {message}")
        self.pc = pc


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _bswap(value: int, bits: int) -> int:
    return int.from_bytes(
        (value & ((1 << bits) - 1)).to_bytes(bits // 8, "little"), "big"
    )


class VirtualMachine:
    """One loaded program plus its sandbox, runnable many times."""

    def __init__(
        self,
        program: Sequence[Instruction],
        helpers: Optional[HelperTable] = None,
        memory: Optional[VmMemory] = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        jit: bool = False,
        trusted_layout: bool = False,
        tier: Optional[str] = None,
    ):
        if tier is None:
            tier = "jit" if jit else "interp"  # legacy boolean knob
        if tier not in ("interp", "jit", "native"):
            raise ValueError(f"bad tier {tier!r}")
        self.program = list(program)
        self.helpers = helpers or HelperTable()
        self.memory = memory or VmMemory()
        self.step_budget = step_budget
        self.steps_executed = 0
        self.helper_calls = 0
        #: The requested execution tier.  ``jit=True`` remains a
        #: deprecated alias for ``tier="jit"``.
        self.tier = tier
        #: True for both compiled tiers (jit and native): they share the
        #: translated-function plumbing (``_jit_run``, fast-path
        #: closures, profiled re-translation).
        self.jit = tier != "interp"
        self.trusted_layout = trusted_layout
        self._jit_run = None
        #: The tier actually executing, resolved by :meth:`prepare`:
        #: ``"native"`` may resolve to ``"jit"`` when the native
        #: compiler declines the program (see ``native_fallback_reason``).
        self.tier_used = tier if tier != "native" else None
        #: Why the native tier fell back to the JIT, or None.
        self.native_fallback_reason = None
        #: :class:`repro.ebpf.native.NativeInfo` for native translations.
        self.native_info = None
        #: Optional :class:`repro.telemetry.profiler.VmProfile` fed by
        #: profiled runs; installed/cleared via :meth:`set_profile`.
        self.profile = None
        #: Execution context / per-extension state, bound by the VMM
        #: around each run.  Initialised here so helper implementations
        #: can read them with plain attribute access.
        self.ctx = None
        self.program_state = None

    def prepare(self) -> None:
        """Eagerly translate (compiled tiers) so first run pays no compile cost.

        ``tier="native"`` tries the structured native compiler first and
        falls back to the JIT when it declines (unsupported opcode,
        oversized program, unstructurable control flow); the outcome is
        recorded in ``tier_used`` / ``native_fallback_reason`` so
        tiering decisions stay inspectable (``xbgp profile``).
        """
        if not self.jit or self._jit_run is not None:
            return
        from .jit import _BudgetError, translate

        self._budget_error = _BudgetError
        if self.tier == "native":
            from .native import NativeUnsupported, translate_native

            try:
                run, info = translate_native(
                    self.program,
                    self.helpers,
                    self.memory,
                    self.step_budget,
                    self,
                    trusted_layout=self.trusted_layout,
                    profile=self.profile,
                )
            except NativeUnsupported as exc:
                self.native_fallback_reason = str(exc)
            else:
                self._jit_run = run
                self.native_info = info
                self.tier_used = "native"
                return
        self._jit_run = translate(
            self.program,
            self.helpers,
            self.memory,
            self.step_budget,
            self,
            trusted_layout=self.trusted_layout,
            profile=self.profile,
        )
        self.tier_used = "jit"

    def set_profile(self, profile) -> None:
        """Install (or, with ``None``, remove) a hotspot profile.

        Interpreter mode merely flips :meth:`run` onto the profiled
        loop; compiled tiers re-translate so the block counters are
        compiled into the generated function (and compiled back out on
        removal).
        """
        if profile is self.profile:
            return
        self.profile = profile
        if self.jit:
            self._jit_run = None
            self.native_info = None
            self.native_fallback_reason = None
            self.prepare()

    def run(self, r1: int = 0, r2: int = 0, r3: int = 0, r4: int = 0, r5: int = 0) -> int:
        """Execute until ``exit``; return r0.

        May raise :class:`ExecutionError`, :class:`SandboxViolation` or
        :class:`HelperError` — the VMM treats all three as "extension
        code failed, fall back to native".

        ``steps_executed`` and ``helper_calls`` are reset here and
        report this run's instruction/helper counts afterwards — on
        returning, delegating (``next()``) and faulting runs alike, and
        identically under both engines (a budget blowout under the JIT
        reports the instructions executed before the block that blew
        the budget).

        Under the compiled tiers (``tier="jit"``/``"native"``) the
        program runs as translated Python — same semantics, far faster
        dispatch; see :mod:`repro.ebpf.jit` and :mod:`repro.ebpf.native`.
        """
        self.steps_executed = 0
        self.helper_calls = 0
        if self.jit:
            if self._jit_run is None:
                self.prepare()
            try:
                return self._jit_run(r1, r2, r3, r4, r5)
            except self._budget_error as exc:
                raise ExecutionError(
                    exc.pc, f"instruction budget ({self.step_budget}) exceeded"
                ) from exc
        if self.profile is not None:
            return self._run_profiled(r1, r2, r3, r4, r5)
        regs = [0] * 11
        regs[1], regs[2], regs[3], regs[4], regs[5] = (
            r1 & _U64,
            r2 & _U64,
            r3 & _U64,
            r4 & _U64,
            r5 & _U64,
        )
        regs[10] = self.memory.frame_pointer()
        program = self.program
        count = len(program)
        memory = self.memory
        budget = self.step_budget
        steps = 0
        helper_calls = 0
        pc = 0

        try:
            while True:
                if pc >= count or pc < 0:
                    raise ExecutionError(pc, "program counter out of range")
                steps += 1
                if steps > budget:
                    raise ExecutionError(pc, f"instruction budget ({budget}) exceeded")
                insn = program[pc]
                opcode = insn.opcode

                if opcode == OP_EXIT:
                    self.steps_executed = steps
                    self.helper_calls = helper_calls
                    return regs[0]

                klass = class_of(opcode)

                # -- lddw ----------------------------------------------------
                if opcode == OP_LDDW:
                    high = program[pc + 1].imm & _U32
                    regs[insn.dst] = (insn.imm & _U32) | (high << 32)
                    pc += 2
                    continue

                # -- ALU ----------------------------------------------------
                if klass == BPF_ALU64 or klass == BPF_ALU:
                    is64 = klass == BPF_ALU64
                    op = opcode & 0xF0
                    if op == ALU_OPS["end"]:
                        width = insn.imm
                        if opcode & BPF_X:  # be
                            regs[insn.dst] = _bswap(regs[insn.dst], width)
                        else:  # le: truncate
                            regs[insn.dst] = regs[insn.dst] & ((1 << width) - 1)
                        pc += 1
                        continue
                    if opcode & BPF_X:
                        operand = regs[insn.src]
                    else:
                        operand = insn.imm & _U64  # sign-extended imm
                    if not is64:
                        operand &= _U32
                    value = regs[insn.dst] if is64 else regs[insn.dst] & _U32
                    mask = _U64 if is64 else _U32
                    bits = 64 if is64 else 32
                    if op == ALU_OPS["add"]:
                        value = (value + operand) & mask
                    elif op == ALU_OPS["sub"]:
                        value = (value - operand) & mask
                    elif op == ALU_OPS["mul"]:
                        value = (value * operand) & mask
                    elif op == ALU_OPS["div"]:
                        divisor = operand & mask
                        value = (value // divisor) & mask if divisor else 0
                    elif op == ALU_OPS["mod"]:
                        divisor = operand & mask
                        value = (value % divisor) & mask if divisor else value
                    elif op == ALU_OPS["or"]:
                        value = (value | operand) & mask
                    elif op == ALU_OPS["and"]:
                        value = (value & operand) & mask
                    elif op == ALU_OPS["lsh"]:
                        value = (value << (operand % bits)) & mask
                    elif op == ALU_OPS["rsh"]:
                        value = (value & mask) >> (operand % bits)
                    elif op == ALU_OPS["neg"]:
                        value = (-value) & mask
                    elif op == ALU_OPS["xor"]:
                        value = (value ^ operand) & mask
                    elif op == ALU_OPS["mov"]:
                        value = operand & mask
                    elif op == ALU_OPS["arsh"]:
                        value = (_signed(value, bits) >> (operand % bits)) & mask
                    else:
                        raise ExecutionError(pc, f"bad ALU opcode {opcode:#x}")
                    regs[insn.dst] = value  # 32-bit ops zero-extend
                    pc += 1
                    continue

                # -- jumps ----------------------------------------------------
                if klass == BPF_JMP or klass == BPF_JMP32:
                    if opcode == OP_JA:
                        pc += 1 + insn.offset
                        continue
                    if opcode == OP_CALL:
                        helper = self.helpers.get(insn.imm)
                        if helper is None:
                            raise ExecutionError(pc, f"unknown helper {insn.imm}")
                        helper_calls += 1
                        result = helper.fn(self, regs[1], regs[2], regs[3], regs[4], regs[5])
                        regs[0] = int(result) & _U64
                        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
                        pc += 1
                        continue
                    op = opcode & 0xF0
                    wide = klass == BPF_JMP
                    mask = _U64 if wide else _U32
                    bits = 64 if wide else 32
                    left = regs[insn.dst] & mask
                    if opcode & BPF_X:
                        right = regs[insn.src] & mask
                    else:
                        right = insn.imm & mask
                    taken = False
                    if op == JMP_OPS["jeq"]:
                        taken = left == right
                    elif op == JMP_OPS["jne"]:
                        taken = left != right
                    elif op == JMP_OPS["jgt"]:
                        taken = left > right
                    elif op == JMP_OPS["jge"]:
                        taken = left >= right
                    elif op == JMP_OPS["jlt"]:
                        taken = left < right
                    elif op == JMP_OPS["jle"]:
                        taken = left <= right
                    elif op == JMP_OPS["jset"]:
                        taken = bool(left & right)
                    elif op == JMP_OPS["jsgt"]:
                        taken = _signed(left, bits) > _signed(right, bits)
                    elif op == JMP_OPS["jsge"]:
                        taken = _signed(left, bits) >= _signed(right, bits)
                    elif op == JMP_OPS["jslt"]:
                        taken = _signed(left, bits) < _signed(right, bits)
                    elif op == JMP_OPS["jsle"]:
                        taken = _signed(left, bits) <= _signed(right, bits)
                    else:
                        raise ExecutionError(pc, f"bad JMP opcode {opcode:#x}")
                    pc += 1 + (insn.offset if taken else 0)
                    continue

                # -- loads / stores ------------------------------------------
                size = SIZE_BYTES.get(opcode & 0x18)
                if size is None:
                    raise ExecutionError(pc, f"bad size in opcode {opcode:#x}")
                if klass == BPF_LDX:
                    address = (regs[insn.src] + insn.offset) & _U64
                    regs[insn.dst] = memory.read(address, size)
                elif klass == BPF_STX:
                    address = (regs[insn.dst] + insn.offset) & _U64
                    memory.write(address, size, regs[insn.src])
                elif klass == BPF_ST:
                    address = (regs[insn.dst] + insn.offset) & _U64
                    memory.write(address, size, insn.imm & _U64)
                else:
                    raise ExecutionError(pc, f"unknown opcode {opcode:#x}")
                pc += 1
        except Exception:
            # Aborted runs — faults, but also NextRequested escaping a
            # helper — still report how far they got, so telemetry can
            # charge budget blowouts and delegations their instructions.
            self.steps_executed = steps
            self.helper_calls = helper_calls
            raise

    def _run_profiled(
        self, r1: int = 0, r2: int = 0, r3: int = 0, r4: int = 0, r5: int = 0
    ) -> int:
        """The interpreter loop with hotspot accounting.

        A structural copy of :meth:`run`'s interpreter half, plus: an
        exact per-PC execution count (bumped with ``steps``, so
        ``sum(pc_counts) == steps_executed`` on every outcome, faults
        included), per-helper wall-clock attribution, and the stack
        high-watermark.  Kept as a separate loop so unprofiled runs pay
        nothing; the engine-parity tests pin it against :meth:`run`.
        """
        profile = self.profile
        pc_counts = profile.pc_counts
        helper_seconds = profile.helper_seconds
        helper_count = profile.helper_count
        stack_low = profile.stack_low
        stack_base = self.memory.stack.base
        stack_size = len(self.memory.stack.data)
        regs = [0] * 11
        regs[1], regs[2], regs[3], regs[4], regs[5] = (
            r1 & _U64,
            r2 & _U64,
            r3 & _U64,
            r4 & _U64,
            r5 & _U64,
        )
        regs[10] = self.memory.frame_pointer()
        program = self.program
        count = len(program)
        memory = self.memory
        budget = self.step_budget
        steps = 0
        helper_calls = 0
        pc = 0

        try:
            while True:
                if pc >= count or pc < 0:
                    raise ExecutionError(pc, "program counter out of range")
                steps += 1
                pc_counts[pc] += 1
                if steps > budget:
                    raise ExecutionError(pc, f"instruction budget ({budget}) exceeded")
                insn = program[pc]
                opcode = insn.opcode

                if opcode == OP_EXIT:
                    self.steps_executed = steps
                    self.helper_calls = helper_calls
                    return regs[0]

                klass = class_of(opcode)

                if opcode == OP_LDDW:
                    high = program[pc + 1].imm & _U32
                    regs[insn.dst] = (insn.imm & _U32) | (high << 32)
                    pc += 2
                    continue

                if klass == BPF_ALU64 or klass == BPF_ALU:
                    is64 = klass == BPF_ALU64
                    op = opcode & 0xF0
                    if op == ALU_OPS["end"]:
                        width = insn.imm
                        if opcode & BPF_X:  # be
                            regs[insn.dst] = _bswap(regs[insn.dst], width)
                        else:  # le: truncate
                            regs[insn.dst] = regs[insn.dst] & ((1 << width) - 1)
                        pc += 1
                        continue
                    if opcode & BPF_X:
                        operand = regs[insn.src]
                    else:
                        operand = insn.imm & _U64
                    if not is64:
                        operand &= _U32
                    value = regs[insn.dst] if is64 else regs[insn.dst] & _U32
                    mask = _U64 if is64 else _U32
                    bits = 64 if is64 else 32
                    if op == ALU_OPS["add"]:
                        value = (value + operand) & mask
                    elif op == ALU_OPS["sub"]:
                        value = (value - operand) & mask
                    elif op == ALU_OPS["mul"]:
                        value = (value * operand) & mask
                    elif op == ALU_OPS["div"]:
                        divisor = operand & mask
                        value = (value // divisor) & mask if divisor else 0
                    elif op == ALU_OPS["mod"]:
                        divisor = operand & mask
                        value = (value % divisor) & mask if divisor else value
                    elif op == ALU_OPS["or"]:
                        value = (value | operand) & mask
                    elif op == ALU_OPS["and"]:
                        value = (value & operand) & mask
                    elif op == ALU_OPS["lsh"]:
                        value = (value << (operand % bits)) & mask
                    elif op == ALU_OPS["rsh"]:
                        value = (value & mask) >> (operand % bits)
                    elif op == ALU_OPS["neg"]:
                        value = (-value) & mask
                    elif op == ALU_OPS["xor"]:
                        value = (value ^ operand) & mask
                    elif op == ALU_OPS["mov"]:
                        value = operand & mask
                    elif op == ALU_OPS["arsh"]:
                        value = (_signed(value, bits) >> (operand % bits)) & mask
                    else:
                        raise ExecutionError(pc, f"bad ALU opcode {opcode:#x}")
                    regs[insn.dst] = value
                    pc += 1
                    continue

                if klass == BPF_JMP or klass == BPF_JMP32:
                    if opcode == OP_JA:
                        pc += 1 + insn.offset
                        continue
                    if opcode == OP_CALL:
                        helper = self.helpers.get(insn.imm)
                        if helper is None:
                            raise ExecutionError(pc, f"unknown helper {insn.imm}")
                        helper_calls += 1
                        started = perf_counter()
                        result = helper.fn(
                            self, regs[1], regs[2], regs[3], regs[4], regs[5]
                        )
                        helper_seconds[insn.imm] += perf_counter() - started
                        helper_count[insn.imm] += 1
                        regs[0] = int(result) & _U64
                        regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0
                        pc += 1
                        continue
                    op = opcode & 0xF0
                    wide = klass == BPF_JMP
                    mask = _U64 if wide else _U32
                    bits = 64 if wide else 32
                    left = regs[insn.dst] & mask
                    if opcode & BPF_X:
                        right = regs[insn.src] & mask
                    else:
                        right = insn.imm & mask
                    taken = False
                    if op == JMP_OPS["jeq"]:
                        taken = left == right
                    elif op == JMP_OPS["jne"]:
                        taken = left != right
                    elif op == JMP_OPS["jgt"]:
                        taken = left > right
                    elif op == JMP_OPS["jge"]:
                        taken = left >= right
                    elif op == JMP_OPS["jlt"]:
                        taken = left < right
                    elif op == JMP_OPS["jle"]:
                        taken = left <= right
                    elif op == JMP_OPS["jset"]:
                        taken = bool(left & right)
                    elif op == JMP_OPS["jsgt"]:
                        taken = _signed(left, bits) > _signed(right, bits)
                    elif op == JMP_OPS["jsge"]:
                        taken = _signed(left, bits) >= _signed(right, bits)
                    elif op == JMP_OPS["jslt"]:
                        taken = _signed(left, bits) < _signed(right, bits)
                    elif op == JMP_OPS["jsle"]:
                        taken = _signed(left, bits) <= _signed(right, bits)
                    else:
                        raise ExecutionError(pc, f"bad JMP opcode {opcode:#x}")
                    pc += 1 + (insn.offset if taken else 0)
                    continue

                size = SIZE_BYTES.get(opcode & 0x18)
                if size is None:
                    raise ExecutionError(pc, f"bad size in opcode {opcode:#x}")
                if klass == BPF_LDX:
                    address = (regs[insn.src] + insn.offset) & _U64
                    regs[insn.dst] = memory.read(address, size)
                elif klass == BPF_STX:
                    address = (regs[insn.dst] + insn.offset) & _U64
                    memory.write(address, size, regs[insn.src])
                elif klass == BPF_ST:
                    address = (regs[insn.dst] + insn.offset) & _U64
                    memory.write(address, size, insn.imm & _U64)
                else:
                    raise ExecutionError(pc, f"unknown opcode {opcode:#x}")
                offset = address - stack_base
                if 0 <= offset < stack_size and offset < stack_low[0]:
                    stack_low[0] = offset
                pc += 1
        except Exception:
            self.steps_executed = steps
            self.helper_calls = helper_calls
            raise
