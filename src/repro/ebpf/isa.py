"""The eBPF instruction set: encoding, decoding and opcode tables.

Instructions are the real 64-bit eBPF layout::

    opcode(8) | dst_reg(4) | src_reg(4) | offset(s16) | imm(s32)

with ``lddw`` (load 64-bit immediate) occupying two slots.  Programs
produced by :mod:`repro.xc` or :mod:`repro.ebpf.assembler` serialize to
byte strings indistinguishable from clang-produced eBPF objects at the
instruction level, which is what lets the repo claim bytecode-level
fidelity to the paper's artifact.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, NamedTuple

__all__ = [
    "Instruction",
    "encode_program",
    "decode_program",
    "BPF_LD",
    "BPF_LDX",
    "BPF_ST",
    "BPF_STX",
    "BPF_ALU",
    "BPF_JMP",
    "BPF_JMP32",
    "BPF_ALU64",
    "BPF_W",
    "BPF_H",
    "BPF_B",
    "BPF_DW",
    "BPF_IMM",
    "BPF_MEM",
    "BPF_K",
    "BPF_X",
    "ALU_OPS",
    "JMP_OPS",
    "OP_LDDW",
    "OP_CALL",
    "OP_EXIT",
    "OP_JA",
    "SIZE_BYTES",
    "class_of",
    "is_load_store",
    "InstructionError",
]


class InstructionError(ValueError):
    """Raised for malformed instruction encodings."""


# -- instruction classes (low 3 bits of opcode) ------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

# -- size field (bits 3-4) for load/store ------------------------------
BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_BYTES = {BPF_W: 4, BPF_H: 2, BPF_B: 1, BPF_DW: 8}

# -- mode field (bits 5-7) for load/store ------------------------------
BPF_IMM = 0x00
BPF_MEM = 0x60

# -- source field (bit 3) for ALU/JMP ----------------------------------
BPF_K = 0x00  # use 32-bit immediate
BPF_X = 0x08  # use source register

# -- ALU operations (bits 4-7) ------------------------------------------
ALU_OPS = {
    "add": 0x00,
    "sub": 0x10,
    "mul": 0x20,
    "div": 0x30,
    "or": 0x40,
    "and": 0x50,
    "lsh": 0x60,
    "rsh": 0x70,
    "neg": 0x80,
    "mod": 0x90,
    "xor": 0xA0,
    "mov": 0xB0,
    "arsh": 0xC0,
    "end": 0xD0,
}

# -- JMP operations (bits 4-7) -------------------------------------------
JMP_OPS = {
    "ja": 0x00,
    "jeq": 0x10,
    "jgt": 0x20,
    "jge": 0x30,
    "jset": 0x40,
    "jne": 0x50,
    "jsgt": 0x60,
    "jsge": 0x70,
    "call": 0x80,
    "exit": 0x90,
    "jlt": 0xA0,
    "jle": 0xB0,
    "jslt": 0xC0,
    "jsle": 0xD0,
}

# -- frequently referenced full opcodes ----------------------------------
OP_LDDW = BPF_LD | BPF_IMM | BPF_DW  # 0x18
OP_CALL = BPF_JMP | JMP_OPS["call"]  # 0x85
OP_EXIT = BPF_JMP | JMP_OPS["exit"]  # 0x95
OP_JA = BPF_JMP | JMP_OPS["ja"]  # 0x05

_S16 = struct.Struct("<h")
_S32 = struct.Struct("<i")
_INSN = struct.Struct("<BBhi")


class Instruction(NamedTuple):
    """One decoded eBPF instruction slot."""

    opcode: int
    dst: int
    src: int
    offset: int
    imm: int

    def encode(self) -> bytes:
        if not 0 <= self.dst <= 15 or not 0 <= self.src <= 15:
            raise InstructionError(f"register field out of range: {self}")
        regs = (self.src << 4) | self.dst
        return _INSN.pack(self.opcode, regs, self.offset, self.imm)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "Instruction":
        opcode, regs, off, imm = _INSN.unpack_from(data, offset)
        return cls(opcode, regs & 0x0F, regs >> 4, off, imm)


def class_of(opcode: int) -> int:
    """Instruction class (low three bits)."""
    return opcode & 0x07


def is_load_store(opcode: int) -> bool:
    return class_of(opcode) in (BPF_LD, BPF_LDX, BPF_ST, BPF_STX)


def encode_program(instructions: Iterable[Instruction]) -> bytes:
    """Serialize instruction slots to eBPF object bytes."""
    return b"".join(instruction.encode() for instruction in instructions)


def decode_program(data: bytes) -> List[Instruction]:
    """Deserialize eBPF object bytes into instruction slots."""
    if len(data) % 8 != 0:
        raise InstructionError(f"program size {len(data)} not a multiple of 8")
    return [Instruction.decode(data, offset) for offset in range(0, len(data), 8)]
