"""eBPF → specialized structured Python (the "native" tier).

The third execution tier (ROADMAP item 2).  Where the JIT keeps a
``while True`` dispatch loop over basic-block leaders, this compiler
reconstructs *structured* control flow from the verified program's CFG
and emits a single specialized Python function:

* forward conditional branches become ``if not cond:`` regions and
  if/else diamonds (detected from the trailing-``ja`` pattern xc's
  codegen produces), so straight-line plugin code runs with **zero
  dispatch** — no ``pc`` variable exists in the structured section;
* natural loops (contiguous back-edge regions) become ``while True:``
  with ``continue``/``break``, re-checking the instruction budget at
  the loop header every iteration exactly like a JIT block entry;
* stack accesses whose address is provably ``FP + constant`` — either
  directly ``[r10 + off]`` (statically bounds-checked by the verifier)
  or through a register the per-block dataflow shows holds a copied
  frame pointer — are lowered to direct ``bytearray`` operations with
  **no runtime bounds re-checks**; 8-byte scalar slots still promote to
  Python locals as in the JIT.  Heap and unprovable accesses keep the
  JIT's probe sequence so fault behaviour (and the differential-fuzz
  oracle's view of it) is bit-identical;
* control flow the structurer cannot express (jumps into another
  loop's body, overlapping loop ranges…) *bails*: the generated code
  raises an in-function :class:`_Bail` caught by a handler whose body
  is the JIT's dispatch loop.  Python exception handlers share the
  function's locals, so registers, promoted slots and the step/helper
  counters survive the demotion and the run completes with identical
  semantics.  Programs where more than half the blocks would live only
  in the bail tail raise :class:`NativeUnsupported` instead and the VM
  falls back to the JIT tier wholesale (recorded as
  ``native_fallback_reason`` for `xbgp profile`).

Step/helper accounting follows the JIT contract exactly: one step per
executed instruction (``lddw`` counts once), flushed before every
fault-capable operation and at every block boundary, budget checked
per block — so the three-way fuzz oracle (interp × jit × native) holds
result, steps, helper-call sequence and heap image equal, with
per-block budget granularity remaining the single documented
divergence.  Direct stack operations cannot fault, which is what lets
the structured section batch ``steps`` further than the JIT can.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .helpers import HelperTable
from .isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_JMP,
    BPF_JMP32,
    BPF_LDX,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    OP_CALL,
    OP_EXIT,
    OP_JA,
    OP_LDDW,
    SIZE_BYTES,
    Instruction,
    class_of,
    is_load_store,
)
from .jit import (
    _COND,
    _JMP_NAMES,
    _M32,
    _M64,
    _SIGNED_COND,
    _BlockEmitter,
    _Writer,
    _count_insns,
    _leaders,
    _promotable_slots,
    _reg,
    _slot_var,
    _sx,
    emit_dispatch_loop,
)
from .memory import VmMemory
from .vm import ExecutionError

__all__ = ["translate_native", "NativeUnsupported", "NativeInfo"]

#: Programs larger than this stay on the JIT: structured emission is
#: linear, but ``compile()`` time at attach grows with program size and
#: plugins this large are outside the xc-generated shape anyway.
MAX_PROGRAM_SLOTS = 16384

#: Opcodes pinned to the JIT tier.  Empty by default — the native tier
#: covers the full ISA — but kept as an explicit seam so ISA growth (or
#: an operator chasing a suspected miscompile) can demote individual
#: opcodes without losing the rest of the program to the interpreter.
PINNED_OPCODES: frozenset = frozenset()


class NativeUnsupported(Exception):
    """The program cannot (or should not) be compiled by this tier.

    The VM catches this at :meth:`~repro.ebpf.vm.VirtualMachine.prepare`
    time and falls back to the JIT translation, recording the reason.
    """


class _Bail(Exception):
    """Raised *inside* the generated function to demote the rest of the
    run onto the dispatch tail.  Never escapes ``run``."""

    __slots__ = ("pc",)

    def __init__(self, pc: int):
        super().__init__(f"pc={pc}")
        self.pc = pc


class NativeInfo:
    """Per-translation attribution consumed by the profiler and CLI."""

    __slots__ = (
        "structured_blocks",
        "bail_blocks",
        "bail_sites",
        "loops",
        "direct_stack_ops",
        "source",
    )

    def __init__(
        self,
        structured_blocks: List[int],
        bail_blocks: List[int],
        bail_sites: int,
        loops: int,
        direct_stack_ops: int,
        source: str,
    ):
        self.structured_blocks = structured_blocks
        self.bail_blocks = bail_blocks
        self.bail_sites = bail_sites
        self.loops = loops
        self.direct_stack_ops = direct_stack_ops
        self.source = source


def _scan_supported(program: Sequence[Instruction]) -> None:
    """Reject unknown/pinned opcodes before any structural work."""
    index = 0
    count = len(program)
    while index < count:
        insn = program[index]
        opcode = insn.opcode
        if opcode in PINNED_OPCODES:
            raise NativeUnsupported(f"opcode {opcode:#x} pinned to the jit tier")
        width = 2 if opcode == OP_LDDW else 1
        klass = class_of(opcode)
        if opcode in (OP_LDDW, OP_EXIT, OP_CALL, OP_JA):
            pass
        elif klass in (BPF_JMP, BPF_JMP32):
            if (opcode & 0xF0) not in _JMP_NAMES:
                raise NativeUnsupported(f"unknown jump opcode {opcode:#x} at {index}")
        elif klass in (BPF_ALU, BPF_ALU64):
            if (opcode & 0xF0) not in {code for code in ALU_OPS.values()}:
                raise NativeUnsupported(f"unknown ALU opcode {opcode:#x} at {index}")
        elif is_load_store(opcode):
            if SIZE_BYTES.get(opcode & 0x18) is None:
                raise NativeUnsupported(f"bad size in opcode {opcode:#x} at {index}")
        else:
            raise NativeUnsupported(f"unknown opcode {opcode:#x} at {index}")
        index += width


def _find_loops(program: Sequence[Instruction]) -> Dict[int, int]:
    """Back-edge targets → one past the last back-edge source.

    ``loops[h] = e`` means every jump targeting ``h`` from behind sits
    in ``[h, e)``; if that whole range nests inside the region being
    emitted, the loop is expressible as ``while True:``.
    """
    loops: Dict[int, int] = {}
    index = 0
    count = len(program)
    while index < count:
        insn = program[index]
        opcode = insn.opcode
        width = 2 if opcode == OP_LDDW else 1
        klass = class_of(opcode)
        if (
            klass in (BPF_JMP, BPF_JMP32)
            and opcode not in (OP_CALL, OP_EXIT)
        ):
            target = index + 1 + insn.offset
            if target <= index:
                loops[target] = max(loops.get(target, 0), index + 1)
        index += width
    return loops


def _insn_starts(program: Sequence[Instruction]) -> Set[int]:
    starts: Set[int] = set()
    index = 0
    while index < len(program):
        starts.add(index)
        index += 2 if program[index].opcode == OP_LDDW else 1
    return starts


class _NativeEmitter(_BlockEmitter):
    """The JIT block emitter plus FP-provenance direct stack lowering.

    Tracks, per basic block, which registers hold ``FP + constant``
    (seeded by ``mov rX, r10``, propagated through 64-bit ``mov``/
    ``add imm``/``sub imm``, killed by anything else).  Loads/stores
    through such registers — and through ``r10`` itself, whose offsets
    the verifier bounds statically — compile to direct ``stk`` buffer
    operations with no runtime checks.  Everything else falls back to
    the inherited probe sequence, keeping fault behaviour identical to
    the JIT.
    """

    def __init__(self, program, slots, heap_first, profiled, stack_size):
        super().__init__(program, slots, heap_first, profiled)
        self.stack_size = stack_size
        self.fp_delta: Dict[int, int] = {}
        #: promoted-slot offset -> FP delta, for pointers that round-trip
        #: through a stack slot (xc codegen spills every temp): the slot
        #: is a Python local, so provenance survives the store/reload.
        self.slot_delta: Dict[int, int] = {}
        self.direct_stack_ops = 0

    def begin_block(self, leader: int) -> None:
        self.block_leader = leader
        self.mirrors.reset()
        self.fp_delta.clear()
        self.slot_delta.clear()

    # -- FP provenance ---------------------------------------------------

    def untrack(self, register: int) -> None:
        self.fp_delta.pop(register, None)

    def untrack_many(self, registers) -> None:
        for register in registers:
            self.fp_delta.pop(register, None)

    def track_alu(self, insn: Instruction, klass: int) -> None:
        """Update FP provenance after an ALU op wrote ``insn.dst``."""
        op = insn.opcode & 0xF0
        if klass == BPF_ALU64:
            if op == ALU_OPS["mov"] and insn.opcode & BPF_X:
                if insn.src == 10:
                    self.fp_delta[insn.dst] = 0
                    return
                delta = self.fp_delta.get(insn.src)
                if delta is not None:
                    self.fp_delta[insn.dst] = delta
                    return
            elif op in (ALU_OPS["add"], ALU_OPS["sub"]) and not (
                insn.opcode & BPF_X
            ):
                delta = self.fp_delta.get(insn.dst)
                if delta is not None:
                    self.fp_delta[insn.dst] = delta + (
                        insn.imm if op == ALU_OPS["add"] else -insn.imm
                    )
                    return
        self.untrack(insn.dst)

    def _overlaps_slot(self, total: int, size: int) -> bool:
        return any(s < total + size and total < s + 8 for s in self.slots)

    # -- lowering --------------------------------------------------------

    def _emit_load_store(self, w, indent, insn, klass) -> None:
        size = SIZE_BYTES[insn.opcode & 0x18]
        base = insn.src if klass == BPF_LDX else insn.dst
        offset = insn.offset
        # Exactly the accesses the base class routes to promoted slot
        # locals must keep doing so; everything else may direct-lower.
        slot_handled = base == 10 and offset in self.slots
        if slot_handled:
            super()._emit_load_store(w, indent, insn, klass)
            if klass == BPF_LDX:
                delta = self.slot_delta.get(offset)
                if delta is not None:
                    self.fp_delta[insn.dst] = delta
                else:
                    self.untrack(insn.dst)
            elif klass == BPF_STX:
                delta = self.fp_delta.get(insn.src)
                if delta is not None:
                    self.slot_delta[offset] = delta
                else:
                    self.slot_delta.pop(offset, None)
            else:  # BPF_ST: an immediate is never an FP pointer
                self.slot_delta.pop(offset, None)
            return
        if not self.profiled:
            delta = 0 if base == 10 else self.fp_delta.get(base)
            if delta is not None:
                total = delta + offset
                if (
                    -self.stack_size <= total
                    and total + size <= 0
                    and not self._overlaps_slot(total, size)
                ):
                    self._emit_direct_stack(
                        w, indent, insn, klass, size, self.stack_size + total
                    )
                    if klass == BPF_LDX:
                        self.mirrors.kill_reg(insn.dst)
                        self.untrack(insn.dst)
                    return
        super()._emit_load_store(w, indent, insn, klass)
        if klass == BPF_LDX:
            self.untrack(insn.dst)

    def _emit_direct_stack(self, w, indent, insn, klass, size, o) -> None:
        # Verifier/dataflow proved [o, o+size) ⊆ the stack buffer: no
        # probe, no flush (direct buffer ops cannot fault).
        self.direct_stack_ops += 1
        if klass == BPF_LDX:
            dst = _reg(insn.dst)
            if size == 1:
                w.emit(indent, f"{dst} = stk[{o}]")
            else:
                w.emit(indent, f"{dst} = int_from(stk[{o}:{o + size}], 'little')")
            return
        if klass == BPF_STX:
            src = _reg(insn.src)
            if size == 1:
                w.emit(indent, f"stk[{o}] = {src} & 0xff")
            elif size == 8:
                # registers are invariantly masked to 64 bits
                w.emit(indent, f"stk[{o}:{o + 8}] = {src}.to_bytes(8, 'little')")
            else:
                mask = (1 << (8 * size)) - 1
                w.emit(
                    indent,
                    f"stk[{o}:{o + size}] = ({src} & {mask})"
                    f".to_bytes({size}, 'little')",
                )
            return
        # BPF_ST: the stored bytes are a translate-time constant.
        data = ((insn.imm & _M64) & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )
        if size == 1:
            w.emit(indent, f"stk[{o}] = {data[0]}")
        else:
            w.emit(indent, f"stk[{o}:{o + size}] = {data!r}")

    # -- condition rendering --------------------------------------------

    def cond_expr(self, insn: Instruction, klass: int) -> str:
        name = _JMP_NAMES[insn.opcode & 0xF0]
        wide = klass == BPF_JMP
        mask = _M64 if wide else _M32
        bits = 64 if wide else 32
        dst = _reg(insn.dst)
        left = dst if wide else f"({dst} & {_M32})"
        if insn.opcode & BPF_X:
            right = _reg(insn.src) if wide else f"({_reg(insn.src)} & {_M32})"
        else:
            right = str(insn.imm & mask)
        if name in _COND:
            return f"{left} {_COND[name]} {right}"
        if name == "jset":
            return f"({left} & {right})"
        if name in _SIGNED_COND:
            return f"{_sx(left, bits)} {_SIGNED_COND[name]} {_sx(right, bits)}"
        raise NativeUnsupported(f"bad jump {insn.opcode:#x}")


class _Structurer:
    """Walks the program in layout order, emitting structured Python."""

    def __init__(
        self,
        program: Sequence[Instruction],
        leaders: List[int],
        loops: Dict[int, int],
        insn_starts: Set[int],
        emitter: _NativeEmitter,
        step_budget: int,
        w: _Writer,
        profiled: bool,
    ):
        self.program = program
        self.leaders = leaders
        self.leader_set = set(leaders)
        self.loops = loops
        self.insn_starts = insn_starts
        self.emitter = emitter
        self.step_budget = step_budget
        self.w = w
        self.profiled = profiled
        count = len(program)
        self.block_count = {
            leader: _count_insns(
                program,
                leader,
                leaders[i + 1] if i + 1 < len(leaders) else count,
            )
            for i, leader in enumerate(leaders)
        }
        self.structured: Set[int] = set()
        self.active_headers: Set[int] = set()
        self.bail_sites = 0
        self.bail_targets: Set[int] = set()
        self.loop_count = 0
        self.preds = self._pred_counts()

    def _pred_counts(self) -> Dict[int, int]:
        """CFG in-degree per leader (entry counts as one edge)."""
        program = self.program
        count = len(program)
        preds: Dict[int, int] = {0: 1}
        index = 0
        while index < count:
            insn = program[index]
            opcode = insn.opcode
            after = index + (2 if opcode == OP_LDDW else 1)
            if opcode == OP_EXIT:
                pass
            elif opcode == OP_JA:
                target = index + 1 + insn.offset
                preds[target] = preds.get(target, 0) + 1
            elif (
                class_of(opcode) in (BPF_JMP, BPF_JMP32)
                and opcode != OP_CALL
            ):
                target = index + 1 + insn.offset
                preds[target] = preds.get(target, 0) + 1
                preds[after] = preds.get(after, 0) + 1
            else:
                preds[after] = preds.get(after, 0) + 1
            index = after
        return preds

    def _bail(self, w: _Writer, indent: int, target: int) -> None:
        self.emitter._flush_steps(w, indent)
        w.emit(indent, f"raise Bail({target})")
        self.bail_sites += 1
        self.bail_targets.add(target)

    def _enter_leader(self, w: _Writer, indent: int, leader: int) -> None:
        em = self.emitter
        header = leader in self.active_headers
        if (
            not header
            and not self.profiled
            and self.preds.get(leader, 0) <= 1
        ):
            # Single-predecessor leader reached by fall-through: there
            # is exactly one static path here, so the mirror state,
            # FP provenance and pending step count of the predecessor
            # all still hold.  Fuse the blocks — no flush, no reset —
            # which turns branch arms into straight-line code.  Joins
            # and loop headers (in-degree >= 2) still reset, and
            # profiled translations never fuse so per-block counters
            # stay exact.
            self.structured.add(leader)
            return
        em._flush_steps(w, indent)
        if header:
            # The budget guard lives only where a run can actually
            # diverge from the interpreter's abort decision: loop
            # headers (the sole way step counts grow unboundedly),
            # helper-call sites and exit.  Straight-line blocks are
            # bounded by the verifier's max_instructions, so skipping
            # their per-leader checks never lets an over-budget run
            # return — it is caught at the next header or at exit with
            # the exact step count (the known per-block-vs-per-step
            # abort-point skew the oracle already normalises).
            w.emit(
                indent,
                f"if steps + {self.block_count[leader]} > {self.step_budget}: "
                f"raise ExecBudget({leader})",
            )
        if self.profiled:
            w.emit(indent, f"PB[{leader}] += 1")
        em.begin_block(leader)
        self.structured.add(leader)

    def emit_range(self, i: int, end: int, ctx: Dict[int, str], indent: int) -> bool:
        """Emit execution from slot ``i`` until ``end``.

        ``ctx`` maps jump targets of the innermost enclosing loop to the
        Python statement realising them (``continue`` for the header,
        ``break`` for the loop end).  Returns True when every path
        terminates (exit/bail/loop action) before reaching ``end``.
        """
        if indent > 80:
            # CPython's parser caps indentation at 100 levels; long
            # early-return chains nest an else per return.  Demote the
            # whole program rather than risk a SyntaxError.
            raise NativeUnsupported("structured control flow nests too deeply")
        w = self.w
        em = self.emitter
        program = self.program
        while i < end:
            loop_end = self.loops.get(i)
            if loop_end is not None and i not in self.active_headers:
                em._flush_steps(w, indent)
                if loop_end > end:
                    # Loop body crosses the current region (overlapping
                    # loops / jump into a sibling loop): demote.
                    self._bail(w, indent, i)
                    return True
                self.loop_count += 1
                w.emit(indent, "while True:")
                self.active_headers.add(i)
                inner = {i: "continue", loop_end: "break"}
                terminated = self.emit_range(i, loop_end, inner, indent + 1)
                self.active_headers.discard(i)
                if not terminated:
                    w.emit(indent + 1, "break")
                i = loop_end
                continue
            if i in self.leader_set:
                self._enter_leader(w, indent, i)
            insn = program[i]
            opcode = insn.opcode
            klass = class_of(opcode)
            em._pending += 1

            if opcode == OP_LDDW:
                value = (insn.imm & _M32) | ((program[i + 1].imm & _M32) << 32)
                w.emit(indent, f"{_reg(insn.dst)} = {value}")
                em.mirrors.kill_reg(insn.dst)
                em.untrack(insn.dst)
                i += 2
                continue

            if opcode == OP_EXIT:
                em._flush_steps(w, indent)
                # ``steps`` is exact here (the exit pre-counted): abort
                # iff the interpreter would have aborted somewhere.
                w.emit(
                    indent,
                    f"if steps > {self.step_budget}: raise ExecBudget({i})",
                )
                w.emit(indent, "vm.steps_executed = steps; vm.helper_calls = hc")
                w.emit(indent, "return r0")
                return True

            if opcode == OP_CALL:
                em._flush_steps(w, indent)
                # Never run a helper (observable side effects) on a run
                # the interpreter would already have aborted.
                w.emit(
                    indent,
                    f"if steps > {self.step_budget}: raise ExecBudget({i})",
                )
                w.emit(indent, "hc += 1")
                if self.profiled:
                    w.emit(indent, "_t = perf()")
                    w.emit(
                        indent,
                        f"r0 = H{insn.imm}(vm, r1, r2, r3, r4, r5) & {_M64}",
                    )
                    w.emit(indent, f"HT[{insn.imm}] += perf() - _t")
                    w.emit(indent, f"HK[{insn.imm}] += 1")
                else:
                    w.emit(
                        indent,
                        f"r0 = H{insn.imm}(vm, r1, r2, r3, r4, r5) & {_M64}",
                    )
                w.emit(indent, "r1 = r2 = r3 = r4 = r5 = 0")
                em.mirrors.kill_regs(range(0, 6))
                em.untrack_many(range(0, 6))
                i += 1
                continue

            if opcode == OP_JA:
                target = i + 1 + insn.offset
                action = ctx.get(target)
                if action is not None:
                    em._flush_steps(w, indent)
                    w.emit(indent, action)
                    return True
                if i < target <= end:
                    # Forward skip: [i+1, target) is unreachable from the
                    # structured section — the walker just moves on (the
                    # ja itself is already counted in _pending).
                    i = target
                    continue
                # Backward to a non-active header, or forward out of the
                # region: demote onto the dispatch tail.
                self._bail(w, indent, target)
                return True

            if klass in (BPF_JMP, BPF_JMP32):
                target = i + 1 + insn.offset
                cond = em.cond_expr(insn, klass)
                action = ctx.get(target)
                if action is not None:
                    em._flush_steps(w, indent)
                    w.emit(indent, f"if {cond}:")
                    w.emit(indent + 1, action)
                    i += 1
                    continue
                if target == i + 1:
                    # Branch to fall-through: the condition is dead but
                    # the instruction still costs a step.
                    i += 1
                    continue
                if i + 1 < target <= end:
                    em._flush_steps(w, indent)
                    # if/else diamond: the skipped region ends in an
                    # unconditional forward ja over the taken region.
                    join = None
                    j = target - 1
                    if j > i and j in self.insn_starts and program[j].opcode == OP_JA:
                        u = j + 1 + program[j].offset
                        if target < u <= end and ctx.get(u) is None:
                            join = u
                    if join is not None:
                        w.emit(indent, f"if not ({cond}):")
                        then_done = self.emit_range(i + 1, j, ctx, indent + 1)
                        if not then_done:
                            em._pending += 1  # the folded ja
                            em._flush_steps(w, indent + 1)
                        w.emit(indent, "else:")
                        self.emit_range(target, join, ctx, indent + 1)
                        i = join
                        continue
                    w.emit(indent, f"if not ({cond}):")
                    self.emit_range(i + 1, target, ctx, indent + 1)
                    i = target
                    continue
                # Target outside the region and not a loop action:
                # conditional demotion onto the dispatch tail.
                em._flush_steps(w, indent)
                w.emit(indent, f"if {cond}:")
                w.emit(indent + 1, f"raise Bail({target})")
                self.bail_sites += 1
                self.bail_targets.add(target)
                i += 1
                continue

            if klass in (BPF_ALU, BPF_ALU64):
                em._emit_alu(w, indent, insn, klass)
                em.mirrors.kill_reg(insn.dst)
                em.track_alu(insn, klass)
                i += 1
                continue

            if is_load_store(opcode):
                em._emit_load_store(w, indent, insn, klass)
                i += 1
                continue

            raise NativeUnsupported(f"unhandled opcode {opcode:#x} at {i}")

        em._flush_steps(w, indent)
        return False


def translate_native(
    program: Sequence[Instruction],
    helpers: HelperTable,
    memory: VmMemory,
    step_budget: int,
    vm,
    trusted_layout: bool = False,
    profile=None,
) -> Tuple[object, NativeInfo]:
    """Compile ``program`` to a structured ``run(r1..r5) -> r0``.

    Returns ``(run, info)`` or raises :class:`NativeUnsupported` when
    the program is outside this tier's envelope (unknown/pinned opcode,
    oversized, or control flow so irregular that most blocks would only
    be reachable through the bail tail) — the VM then falls back to the
    JIT.  Semantics, step/helper accounting and fault behaviour are
    identical to the interpreter and JIT; see the module docstring.
    """
    count = len(program)
    if count == 0:
        raise NativeUnsupported("empty program")
    if count > MAX_PROGRAM_SLOTS:
        raise NativeUnsupported(
            f"program too large for the native tier ({count} > {MAX_PROGRAM_SLOTS} slots)"
        )
    _scan_supported(program)

    leaders = _leaders(program)
    loops = _find_loops(program)
    insn_starts = _insn_starts(program)
    slots = _promotable_slots(program, trusted_layout) if profile is None else set()

    from .jit import _BudgetError

    heap = memory.heap_region
    stack = memory.stack
    namespace: Dict[str, object] = {
        "__builtins__": {},
        "int_from": int.from_bytes,
        "mem_read": memory.read,
        "mem_write": memory.write,
        "vm": vm,
        "ExecBudget": _BudgetError,
        "Bail": _Bail,
        "XErr": ExecutionError,
        "BaseException": BaseException,
        "FP": memory.frame_pointer(),
        "HB": heap.base,
        "HS": len(heap.data),
        "heap": heap.data,
        "SB": stack.base,
        "SS": len(stack.data),
        "stk": stack.data,
    }
    for helper_id in helpers.ids():
        namespace[f"H{helper_id}"] = helpers.get(helper_id).fn
    if profile is not None:
        from time import perf_counter

        namespace["PB"] = profile.block_entries
        namespace["PI"] = profile.block_insns
        namespace["HT"] = profile.helper_seconds
        namespace["HK"] = profile.helper_count
        namespace["PSL"] = profile.stack_low
        namespace["perf"] = perf_counter

    emitter = _NativeEmitter(
        program,
        slots,
        heap_first=bool(slots),
        profiled=profile is not None,
        stack_size=len(stack.data),
    )

    w = _Writer()
    w.emit(0, "def run(r1=0, r2=0, r3=0, r4=0, r5=0):")
    w.emit(1, "r0 = r6 = r7 = r8 = r9 = 0")
    w.emit(1, f"r1 &= {_M64}; r2 &= {_M64}; r3 &= {_M64}; r4 &= {_M64}; r5 &= {_M64}")
    w.emit(1, "r10 = FP")
    for offset in sorted(slots):
        w.emit(1, f"{_slot_var(offset)} = 0")
    w.emit(1, "steps = 0")
    w.emit(1, "hc = 0")
    w.emit(1, "try:")
    w.emit(2, "try:")

    structurer = _Structurer(
        program, leaders, loops, insn_starts, emitter, step_budget, w,
        profiled=profile is not None,
    )
    terminated = structurer.emit_range(0, count, {}, 3)
    if not terminated:
        # The verifier rejects fall-off-the-end programs; defensive.
        w.emit(3, f'raise XErr({count}, "program counter out of range")')

    if structurer.bail_sites:
        bail_blocks = [l for l in leaders if l not in structurer.structured]
        if 2 * len(bail_blocks) > len(leaders):
            raise NativeUnsupported(
                "control flow too irregular for the native tier: "
                f"{len(bail_blocks)}/{len(leaders)} blocks reachable only "
                "through the dispatch tail"
            )
        # Demoted control flow: a JIT-style dispatch loop sharing this
        # function's locals (registers, slots, steps/hc all survive the
        # raise).  Full leader list so fall-through inlining stays valid.
        w.emit(2, "except Bail as _b:")
        w.emit(3, "pc = _b.pc")
        w.emit(3, "while True:")
        tail = _BlockEmitter(
            program, slots, heap_first=bool(slots), profiled=profile is not None
        )
        emit_dispatch_loop(
            w, program, leaders, tail, step_budget, 4, profile is not None
        )
    else:
        bail_blocks = []
        w.emit(2, "except Bail:")  # unreachable: no bail sites were emitted
        w.emit(3, "raise")

    w.emit(1, "except BaseException:")
    w.emit(2, "vm.steps_executed = steps; vm.helper_calls = hc")
    w.emit(2, "raise")

    source = "\n".join(w.lines)
    try:
        exec(compile(source, "<ebpf-native>", "exec"), namespace)  # noqa: S102
    except SyntaxError as exc:  # pragma: no cover - would be a bug
        raise NativeUnsupported(f"generated bad code: {exc}\n{source}") from exc

    info = NativeInfo(
        structured_blocks=sorted(structurer.structured),
        bail_blocks=bail_blocks,
        bail_sites=structurer.bail_sites,
        loops=structurer.loop_count,
        direct_stack_ops=emitter.direct_stack_ops,
        source=source,
    )
    return namespace["run"], info
