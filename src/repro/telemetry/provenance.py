"""Per-route provenance: the "why" record behind every RIB entry.

PR 1's counters say *that* an extension ran; this module records *what
it did to a given route* and *why the prefix ended up in (or out of)
the Loc-RIB*:

* every xBGP API call an extension makes against a route (which
  attribute it read, what it wrote, whether ``next()`` delegated);
* every extension run outcome at every insertion point, including
  fallbacks — attributed to the faulting code, or to the circuit
  breaker when quarantine skipped it;
* every decision-process elimination: which RFC 4271 ladder step (or
  which BGP_DECISION extension) eliminated each competing path;
* every Loc-RIB change and every export action per peer.

Records are grouped into *stories* — one story per (prefix, triggering
UPDATE) — kept in a bounded ring per prefix, so a flapping route keeps
its recent history without unbounded growth.  A :class:`SpanRecorder`
ties the same steps into cross-router causal traces.

The tracker also derives convergence observability: per-prefix flap
counts (Loc-RIB best-path changes), time-to-quiescence (clock of the
last change) and an oscillation detector that flags prefixes whose
best path *returns to a previously abandoned path* — the signature of
a divergent decision process (Griffin's BAD GADGET; Godfrey's
"BGP stability is precarious" shows essentially any decision change
can cause this), as opposed to ordinary convergence which only ever
moves forward through new best paths.

Everything is off unless a daemon's ``enable_provenance()`` installed
a tracker; the hosts' ``provenance`` attribute is ``None`` otherwise
and every hook site is a single None check.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..bgp.constants import AttrTypeCode
from ..bgp.prefix import format_ipv4
from .spans import DEFAULT_SPAN_CAPACITY, SpanRecorder

__all__ = ["ProvenanceTracker", "DEFAULT_STORIES_PER_PREFIX", "attr_name"]

DEFAULT_STORIES_PER_PREFIX = 16
#: Best-path history kept per prefix for flap/oscillation analysis.
_HISTORY_LIMIT = 128


def attr_name(code: int) -> str:
    """Human name of a path-attribute type code (falls back to the number)."""
    try:
        return AttrTypeCode(code).name
    except ValueError:
        return f"attr_{code}"


def _peer_name(neighbor) -> Optional[str]:
    if neighbor is None:
        return None
    return format_ipv4(neighbor.peer_address)


class ProvenanceTracker:
    """Per-router provenance recorder, spans included.

    One tracker belongs to one daemon; the daemon installs it on its
    host glue (``host.provenance``) so the VMM and the helper layer can
    reach it through the execution context, and on its Loc-RIB
    (``on_change``) so best-path changes are captured no matter which
    code path installed them.
    """

    def __init__(
        self,
        router: str,
        implementation: str = "",
        stories_per_prefix: int = DEFAULT_STORIES_PER_PREFIX,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ):
        if stories_per_prefix < 1:
            raise ValueError("stories_per_prefix must be >= 1")
        self.router = router
        self.implementation = implementation
        self.clock: Callable[[], float] = clock or time.monotonic
        self.spans = SpanRecorder(router, span_capacity, clock=self.clock)
        self.stories_per_prefix = stories_per_prefix
        self._stories: Dict[str, Deque[Dict[str, object]]] = {}
        #: Parent span ref delivered with the bytes currently being
        #: ingested (set by receive_raw, consumed by begin_update).
        self.pending_parent: Optional[Tuple[str, str]] = None
        #: Active span stack: update/originate root, then phases, then
        #: extension runs.  The top is the causal parent of anything
        #: that happens next (including sends to other routers).
        self._stack: List[Dict[str, object]] = []
        #: Events recorded before any story exists for the prefix in
        #: scope (BGP_RECEIVE_MESSAGE runs, which precede NLRI import);
        #: copied into each story the same update then opens.
        self._update_events: List[Dict[str, object]] = []
        #: Name of the last extension that *returned* a verdict, per
        #: insertion point — used to attribute decision verdicts.
        self._last_return: Dict[str, str] = {}
        # Convergence observability.
        self._best_history: Dict[str, List[object]] = {}
        self._flaps: Dict[str, int] = {}
        self._revisits: Dict[str, int] = {}
        self._last_change: Dict[str, float] = {}

    # -- clock wiring ------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the timestamp source (the simulator injects its virtual
        clock so spans and quiescence are in simulated seconds)."""
        self.clock = clock
        self.spans.clock = clock

    # -- span lifecycle ----------------------------------------------------

    def active_ref(self) -> Optional[Tuple[str, str]]:
        """(trace, span) of the innermost active span, or None.

        This is what a simulated link ships with the bytes: the
        receiver's UPDATE span adopts it as parent, extending the trace
        across routers.
        """
        if not self._stack:
            return None
        return SpanRecorder.ref(self._stack[-1])

    def begin_update(self, neighbor, kind: str = "update", **fields: object):
        """Open the root span for one UPDATE (or local origination)."""
        parent = self.pending_parent
        span = self.spans.start(kind, parent, peer=_peer_name(neighbor), **fields)
        self._stack.append(span)
        self._update_events = []
        return span

    def end_update(self) -> None:
        """Close the update span opened by :meth:`begin_update`.

        Also finishes any nested span an exception left open, rather
        than mis-parenting the next update under it.
        """
        while self._stack:
            self.spans.finish(self._stack.pop())
        self._update_events = []

    def begin_phase(self, kind: str, prefix) -> Dict[str, object]:
        """Open a child span for one processing phase (decision/export)."""
        parent = self._stack[-1] if self._stack else None
        span = self.spans.start(kind, parent, prefix=str(prefix))
        self._stack.append(span)
        return span

    def end_phase(self, span: Dict[str, object], **fields: object) -> None:
        self.spans.finish(span, **fields)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- stories -----------------------------------------------------------

    def begin_route(self, prefix, neighbor) -> Dict[str, object]:
        """Open the story of one NLRI import.

        Any events already recorded at update level (BGP_RECEIVE_MESSAGE
        extension runs rewrite attributes *before* per-prefix import)
        are copied in: they are part of this route's causality.
        """
        root = self._stack[0] if self._stack else None
        story: Dict[str, object] = {
            "router": self.router,
            "implementation": self.implementation,
            "prefix": str(prefix),
            "peer": _peer_name(neighbor),
            "session": (
                "ebgp" if neighbor is not None and neighbor.is_ebgp() else "ibgp"
            )
            if neighbor is not None
            else "local",
            "trace": root["trace"] if root is not None else None,
            "ts": self.clock(),
            "events": list(self._update_events),
        }
        ring = self._stories.get(story["prefix"])
        if ring is None:
            ring = deque(maxlen=self.stories_per_prefix)
            self._stories[story["prefix"]] = ring
        ring.append(story)
        return story

    def _story_for(self, prefix) -> Dict[str, object]:
        """Latest story for ``prefix``, synthesising one if needed.

        Decision/export activity can hit a prefix without a fresh
        import (a withdrawal elsewhere re-runs the decision); those
        events still deserve a home.
        """
        key = str(prefix)
        ring = self._stories.get(key)
        if ring:
            return ring[-1]
        root = self._stack[0] if self._stack else None
        story: Dict[str, object] = {
            "router": self.router,
            "implementation": self.implementation,
            "prefix": key,
            "peer": None,
            "session": "local",
            "trace": root["trace"] if root is not None else None,
            "ts": self.clock(),
            "events": [],
        }
        self._stories[key] = deque([story], maxlen=self.stories_per_prefix)
        return story

    def _record(self, prefix, event: Dict[str, object]) -> None:
        if prefix is None:
            self._update_events.append(event)
        else:
            self._story_for(prefix)["events"].append(event)

    # -- VMM hooks ---------------------------------------------------------

    def vmm_enter(self, ctx, point: str, name: str) -> None:
        parent = self._stack[-1] if self._stack else None
        span = self.spans.start("extension", parent, point=point, extension=name)
        self._stack.append(span)
        ctx.span = SpanRecorder.ref(span)

    def vmm_exit(
        self,
        ctx,
        point: str,
        name: str,
        outcome: str,
        verdict: Optional[int] = None,
        error: Optional[str] = None,
    ) -> None:
        if self._stack:
            self.spans.finish(self._stack.pop(), outcome=outcome)
        ctx.span = None
        if outcome == "return":
            self._last_return[point] = name
        event: Dict[str, object] = {
            "op": "extension",
            "point": point,
            "extension": name,
            "outcome": outcome,
        }
        if verdict is not None:
            event["verdict"] = verdict
        if error is not None:
            event["error"] = error
        self._record(ctx.prefix, event)

    def vmm_skip(self, ctx, point: str, name: str) -> None:
        """A quarantined code was skipped: the breaker, not the code,
        is responsible for whatever the native path does next."""
        self._record(
            ctx.prefix,
            {
                "op": "skip",
                "point": point,
                "extension": name,
                "reason": "quarantined",
                "by": "circuit-breaker",
            },
        )

    def vmm_fallback(self, ctx, point: str, name: str, error: str) -> None:
        self._record(
            ctx.prefix,
            {
                "op": "fallback",
                "point": point,
                "extension": name,
                "reason": "error",
                "error": error,
            },
        )

    def vmm_native(self, ctx, point: str) -> None:
        """The chain exhausted (every code delegated or none attached
        beyond skips): the native default ran."""
        self._record(ctx.prefix, {"op": "native", "point": point})

    # -- API hooks (repro.core.api) ----------------------------------------

    def record_api(self, ctx, op: str, **detail: object) -> None:
        event: Dict[str, object] = {"op": op}
        if self._stack:
            top = self._stack[-1]
            if top["kind"] == "extension":
                event["extension"] = top.get("extension")
                event["point"] = top.get("point")
        for key, value in detail.items():
            if isinstance(value, (bytes, bytearray)):
                value = bytes(value).hex()
            event[key] = value
        if "code" in event:
            event["attr"] = attr_name(event["code"])  # type: ignore[arg-type]
        self._record(ctx.prefix, event)

    # -- ingest / filter / decision / RIB / export hooks --------------------

    def record_withdraw(self, prefix, neighbor) -> None:
        self._record(
            prefix, {"op": "withdraw", "peer": _peer_name(neighbor)}
        )

    def record_filter(self, prefix, reason: str) -> None:
        self._record(prefix, {"op": "filtered", "reason": reason})

    def record_elimination(
        self, prefix, step: str, eliminated, kept, by: str = "native"
    ) -> None:
        """One pairwise decision: ``eliminated`` lost to ``kept`` at
        ladder ``step`` (or by an extension's verdict)."""
        if by == "extension":
            name = self._last_return.get("bgp_decision")
            if name:
                by = f"extension:{name}"
        event: Dict[str, object] = {
            "op": "decision",
            "step": step,
            "by": by,
            "kept": self._route_summary(kept),
        }
        if eliminated is not None:
            event["eliminated"] = self._route_summary(eliminated)
        self._record(prefix, event)

    @staticmethod
    def _route_summary(route) -> Dict[str, object]:
        if route is None:
            return {}
        source = route.source
        return {
            "peer": format_ipv4(source.peer_address) if source is not None else "local",
            "as_path_length": route.as_path_length(),
            "local_pref": route.local_pref(),
        }

    def rib_changed(self, action: str, prefix, route, previous) -> None:
        """Loc-RIB observer (wired to :attr:`LocRib.on_change`)."""
        parent = self._stack[-1] if self._stack else None
        self.spans.point("rib", parent, prefix=str(prefix), action=action)
        event: Dict[str, object] = {"op": "rib", "action": action}
        if route is not None:
            event["best"] = self._route_summary(route)
        self._record(prefix, event)
        self._note_best(prefix, self._best_key(route))

    @staticmethod
    def _best_key(route) -> object:
        if route is None:
            return None
        return route.story_key()

    def _note_best(self, prefix, key: object) -> None:
        name = str(prefix)
        history = self._best_history.setdefault(name, [])
        if history and history[-1] == key:
            return
        if key is not None and key in history:
            # The best path went back to a path it had previously
            # abandoned: convergence never does this, oscillation
            # always does (eventually).
            self._revisits[name] = self._revisits.get(name, 0) + 1
        history.append(key)
        if len(history) > _HISTORY_LIMIT:
            del history[: len(history) - _HISTORY_LIMIT]
        if len(history) > 1:
            self._flaps[name] = self._flaps.get(name, 0) + 1
        self._last_change[name] = self.clock()

    def record_export(self, prefix, peer_address: int, action: str) -> None:
        self._record(
            prefix,
            {"op": "export", "peer": format_ipv4(peer_address), "action": action},
        )

    # -- convergence observability ------------------------------------------

    def flap_counts(self) -> Dict[str, int]:
        """Best-path changes per prefix beyond the initial install."""
        return dict(self._flaps)

    def oscillating(self, min_revisits: int = 2) -> List[str]:
        """Prefixes whose best path returned to a previously abandoned
        path at least ``min_revisits`` times."""
        return sorted(
            name
            for name, revisits in self._revisits.items()
            if revisits >= min_revisits
        )

    def time_of_last_change(self) -> float:
        """Clock value of the most recent best-path change (0 if none):
        on the simulated clock this is the time-to-quiescence."""
        return max(self._last_change.values(), default=0.0)

    def convergence_report(self) -> Dict[str, object]:
        return {
            "router": self.router,
            "flaps": self.flap_counts(),
            "revisits": dict(self._revisits),
            "oscillating": self.oscillating(),
            "time_of_last_change": self.time_of_last_change(),
        }

    # -- queries -----------------------------------------------------------

    def stories(self, prefix) -> List[Dict[str, object]]:
        """The buffered stories for ``prefix``, oldest first."""
        return list(self._stories.get(str(prefix), ()))

    def explain(self, prefix) -> Dict[str, object]:
        """Everything known about ``prefix``, JSON-able."""
        name = str(prefix)
        return {
            "router": self.router,
            "implementation": self.implementation,
            "prefix": name,
            "stories": self.stories(prefix),
            "flaps": self._flaps.get(name, 0),
            "oscillating": name in self.oscillating(),
        }

    def render_explain(self, prefix) -> str:
        """The full story of ``prefix`` as human-readable text."""
        report = self.explain(prefix)
        lines = [
            f"{report['prefix']} on {self.router} ({self.implementation})"
            f" — {report['flaps']} flap(s)"
            + (" [OSCILLATING]" if report["oscillating"] else "")
        ]
        stories = report["stories"]
        if not stories:
            lines.append("  no provenance recorded (prefix never seen?)")
            return "\n".join(lines)
        for index, story in enumerate(stories, 1):
            peer = story["peer"] or "local"
            lines.append(
                f"story #{index} [trace {story['trace']}] "
                f"learned from {peer} ({story['session']})"
            )
            for event in story["events"]:
                lines.append("  " + self._render_event(event))
        return "\n".join(lines)

    @staticmethod
    def _render_event(event: Dict[str, object]) -> str:
        op = event["op"]
        where = ""
        if event.get("extension"):
            where = f"{event.get('point')}/{event.get('extension')}: "
        if op == "extension":
            detail = f"outcome={event['outcome']}"
            if "verdict" in event:
                detail += f" verdict={event['verdict']}"
            if "error" in event:
                detail += f" error={event['error']!r}"
            return f"{where}{detail}"
        if op == "get_attr":
            found = "-> present" if event.get("found") else "-> absent"
            return f"{where}get_attr({event.get('attr')}) {found}"
        if op in ("set_attr", "add_attr"):
            value = event.get("value")
            shown = f" = {value}" if value is not None else ""
            ok = "" if event.get("ok", True) else " [refused]"
            return f"{where}{op}({event.get('attr')}){shown}{ok}"
        if op == "remove_attr":
            ok = "" if event.get("ok", True) else " [absent]"
            return f"{where}remove_attr({event.get('attr')}){ok}"
        if op == "skip":
            return (
                f"{event.get('point')}/{event.get('extension')} skipped "
                f"by {event.get('by')} (quarantined)"
            )
        if op == "fallback":
            return (
                f"{event.get('point')}/{event.get('extension')} FAULTED "
                f"({event.get('error')}); native fallback"
            )
        if op == "native":
            return f"{event.get('point')}: native default ran"
        if op == "filtered":
            return f"rejected: {event.get('reason')}"
        if op == "withdraw":
            return f"withdrawn by {event.get('peer')}"
        if op == "decision":
            kept = event.get("kept", {})
            eliminated = event.get("eliminated")
            if eliminated:
                return (
                    f"decision: kept via {kept.get('peer')} over "
                    f"via {eliminated.get('peer')} (step: {event.get('step')}, "
                    f"by {event.get('by')})"
                )
            return f"decision: only candidate via {kept.get('peer')}"
        if op == "rib":
            return f"loc-rib: {event.get('action')}"
        if op == "export":
            return f"export -> {event.get('peer')}: {event.get('action')}"
        extras = {k: v for k, v in event.items() if k != "op"}
        return f"{op}: {extras}"

    # -- export ------------------------------------------------------------

    def export_jsonl(self, destination: Union[str, io.TextIOBase]) -> int:
        """Stories + spans + convergence report as JSON Lines."""
        records: List[Dict[str, object]] = []
        for ring in self._stories.values():
            for story in ring:
                records.append({"type": "story", **story})
        for span in self.spans.spans():
            records.append({"type": "span", **span})
        records.append({"type": "convergence", **self.convergence_report()})
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        else:
            for record in records:
                destination.write(json.dumps(record) + "\n")
        return len(records)
