"""HTTP exporter: ``/metrics``, ``/health``, ``/events`` on stdlib only.

ROADMAP item 4 wants "the existing Prometheus/stats/health endpoints"
on a long-running daemon; this is that surface, built on
``http.server`` (no dependencies, per the repo's discipline) and
attachable to anything that can produce a registry:

* ``GET /metrics`` — Prometheus text exposition (v0.0.4) of the current
  registry;
* ``GET /health``  — the quarantine/circuit-breaker table as JSON;
  ``200`` when every breaker is closed, ``503`` when any extension sits
  in quarantine (so load-balancer-style checks work unmodified);
* ``GET /events``  — the recent structured-event ring as JSON
  (``?event=<type>`` filters, ``?limit=<n>`` truncates to the tail);
* ``GET /alerts``  — the alert engine's rule table as JSON (state,
  last value, fire counts); a firing **critical** rule also turns
  ``/health`` into a 503, so existing probes catch alert regressions
  without learning a new endpoint;
* ``GET /timeseries`` — the recorded metric time-series as JSON
  (``?limit=<n>`` truncates to the most recent samples);
* ``GET /``        — a plain-text index of the above.

Sources are late-bound callables, so the same exporter can serve a live
harness DUT, the progress registry of an in-flight sharded replay, and
the merged post-replay registry, switching as the run advances.  All
reads happen under :attr:`TelemetryExporter.lock`; writers that mutate
the served registry from another thread should hold the same lock.

The server runs on a daemon thread (``ThreadingHTTPServer``), binds
``port=0`` for an ephemeral port by default, and is also a context
manager (``with TelemetryExporter(...) as exporter:``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from .metrics import MetricsRegistry, render_prometheus

__all__ = ["TelemetryExporter"]

#: Every JSON endpoint declares its charset explicitly, like /metrics.
_JSON_TYPE = "application/json; charset=utf-8"


class TelemetryExporter:
    """Serve telemetry over HTTP (see module docstring).

    ``telemetry`` may be a :class:`~repro.telemetry.Telemetry` facade
    (registry + health wired automatically); each source can also be
    given explicitly as a value or a zero-argument callable:

    * ``registry``  — :class:`MetricsRegistry` (or ``() -> registry``);
    * ``health``    — list of breaker rows (or a callable producing it);
    * ``events``    — an :class:`~repro.telemetry.events.EventLog`, a
      list of event dicts, or a callable producing either;
    * ``alerts``    — an :class:`~repro.telemetry.alerts.AlertEngine`,
      a snapshot dict, or a callable producing either;
    * ``timeseries`` — a :class:`~repro.telemetry.timeseries.TimeSeries`,
      a list of samples, or a callable producing either.
    """

    def __init__(
        self,
        telemetry=None,
        *,
        registry=None,
        health=None,
        events=None,
        alerts=None,
        timeseries=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if telemetry is not None:
            registry = registry if registry is not None else telemetry.registry
            health = health if health is not None else telemetry.health.snapshot
        self._registry_source = registry
        self._health_source = health
        self._events_source = events
        self._alerts_source = alerts
        self._timeseries_source = timeseries
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self.lock = threading.RLock()
        self.requests_served = 0
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- source resolution -------------------------------------------------

    @staticmethod
    def _resolve(source):
        return source() if callable(source) else source

    def registry(self) -> MetricsRegistry:
        registry = self._resolve(self._registry_source)
        return registry if registry is not None else MetricsRegistry()

    def health_rows(self) -> List[Dict[str, object]]:
        rows = self._resolve(self._health_source)
        return list(rows) if rows is not None else []

    def event_list(self) -> List[Dict[str, object]]:
        source = self._resolve(self._events_source)
        if source is None:
            return []
        if hasattr(source, "events"):
            return source.events()
        return list(source)

    def alerts_snapshot(self):
        source = self._resolve(self._alerts_source)
        if source is None:
            return {"rules": [], "firing": 0, "critical_firing": False}
        if hasattr(source, "snapshot"):
            return source.snapshot()
        return source

    def timeseries_samples(self) -> List[Dict[str, object]]:
        source = self._resolve(self._timeseries_source)
        if source is None:
            return []
        if hasattr(source, "samples"):
            return source.samples()
        return list(source)

    def replace_sources(
        self,
        registry=None,
        health=None,
        events=None,
        alerts=None,
        timeseries=None,
    ) -> None:
        """Swap sources atomically (e.g. live progress → merged result)."""
        with self.lock:
            if registry is not None:
                self._registry_source = registry
            if health is not None:
                self._health_source = health
            if events is not None:
                self._events_source = events
            if alerts is not None:
                self._alerts_source = alerts
            if timeseries is not None:
                self._timeseries_source = timeseries

    # -- responses ---------------------------------------------------------

    def _render_metrics(self) -> bytes:
        with self.lock:
            return render_prometheus(self.registry()).encode()

    def _render_health(self):
        with self.lock:
            rows = self.health_rows()
            alerts = self.alerts_snapshot()
        open_rows = [row for row in rows if row.get("state") == "open"]
        critical = bool(alerts.get("critical_firing"))
        body = {
            "status": "degraded" if (open_rows or critical) else "ok",
            "extensions": len(rows),
            "quarantined": len(open_rows),
            "alerts_firing": alerts.get("firing", 0),
            "critical_alerts": critical,
            "breakers": rows,
        }
        degraded = bool(open_rows) or critical
        return (503 if degraded else 200), json.dumps(body, indent=2).encode()

    def _render_events(self, query: Dict[str, List[str]]) -> bytes:
        with self.lock:
            events = self.event_list()
        kinds = query.get("event")
        if kinds:
            wanted = {k for value in kinds for k in value.split(",")}
            events = [e for e in events if e.get("event") in wanted]
        limits = query.get("limit")
        if limits:
            try:
                limit = int(limits[0])
            except ValueError:
                limit = 0
            if limit > 0:
                events = events[-limit:]
        return json.dumps({"count": len(events), "events": events}).encode()

    def _render_alerts(self) -> bytes:
        with self.lock:
            snapshot = self.alerts_snapshot()
        return json.dumps(snapshot, indent=2).encode()

    def _render_timeseries(self, query: Dict[str, List[str]]) -> bytes:
        with self.lock:
            samples = self.timeseries_samples()
        limits = query.get("limit")
        if limits:
            try:
                limit = int(limits[0])
            except ValueError:
                limit = 0
            if limit > 0:
                samples = samples[-limit:]
        return json.dumps({"count": len(samples), "samples": samples}).encode()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TelemetryExporter":
        if self._server is not None:
            return self
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence per-request noise
                pass

            def _reply(self, status: int, content_type: str, body: bytes):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 (stdlib naming)
                parsed = urlparse(self.path)
                exporter.requests_served += 1
                try:
                    if parsed.path == "/metrics":
                        self._reply(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            exporter._render_metrics(),
                        )
                    elif parsed.path == "/health":
                        status, body = exporter._render_health()
                        self._reply(status, _JSON_TYPE, body)
                    elif parsed.path == "/events":
                        self._reply(
                            200,
                            _JSON_TYPE,
                            exporter._render_events(parse_qs(parsed.query)),
                        )
                    elif parsed.path == "/alerts":
                        self._reply(200, _JSON_TYPE, exporter._render_alerts())
                    elif parsed.path == "/timeseries":
                        self._reply(
                            200,
                            _JSON_TYPE,
                            exporter._render_timeseries(parse_qs(parsed.query)),
                        )
                    elif parsed.path == "/":
                        self._reply(
                            200,
                            "text/plain; charset=utf-8",
                            b"xbgp telemetry exporter\n"
                            b"  /metrics     Prometheus text exposition\n"
                            b"  /health      quarantine/breaker table (JSON)\n"
                            b"  /events      recent structured events (JSON)\n"
                            b"  /alerts      alert-rule states (JSON)\n"
                            b"  /timeseries  recorded metric samples (JSON)\n",
                        )
                    else:
                        self._reply(404, "text/plain", b"not found\n")
                except BrokenPipeError:
                    pass

        server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        server.daemon_threads = True
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="xbgp-telemetry-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, thread = self._server, self._thread
        self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5)

    def url(self, path: str = "/metrics") -> str:
        if self.port is None:
            raise RuntimeError("exporter not started")
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
