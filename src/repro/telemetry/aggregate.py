"""Serializable, mergeable metrics snapshots (the cross-process plane).

:class:`~repro.telemetry.metrics.MetricsRegistry` lives in one process;
the sharded full-table replay runs many.  This module makes registries
*portable*: :func:`snapshot_registry` captures one with full fidelity
(exact histogram buckets, not quantile summaries), the snapshot is
plain JSON-able data that survives pickling through a ``multiprocessing``
pipe or a file on disk, and :func:`merge_into` folds any number of
snapshots back into a single registry under well-defined per-kind
semantics:

* **counters** add — each process counted disjoint events;
* **histograms** merge bucket-wise (boundaries must be identical,
  mismatches raise);
* **gauges** follow a per-family policy: ``max`` (default — keeps the
  merge commutative and associative), ``min``, ``sum``, or ``last``
  (last snapshot wins, for "current value" gauges where order means
  something);
* **label sets** union; a family whose label *names* disagree between
  snapshots is a schema collision and raises.

``labels={"shard": "3"}`` stamps every merged series with its origin,
which is how the parent of a sharded replay keeps per-shard
attribution while still exposing one registry on ``/metrics``.

With the default policies the merge is a commutative monoid with the
empty snapshot as identity — pinned by the merge-law tests, and the
reason offline aggregation (``xbgp stats --merge``) needs no ordering
discipline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "SNAPSHOT_VERSION",
    "GAUGE_POLICIES",
    "merge_into",
    "merge_snapshots",
    "registry_from_snapshot",
    "snapshot_registry",
]

SNAPSHOT_VERSION = 1

#: Valid gauge merge policies.
GAUGE_POLICIES = ("max", "min", "sum", "last")


def snapshot_registry(registry: MetricsRegistry) -> Dict[str, object]:
    """Full-fidelity, JSON-able capture of ``registry``.

    Unlike :meth:`MetricsRegistry.to_json` (a human-facing view with
    quantile summaries), this keeps raw histogram bucket counts so a
    snapshot can be merged or restored without information loss.
    Function-backed gauges are collapsed to their current value — a
    callable cannot cross a process boundary.
    """
    families: Dict[str, object] = {}
    for family in registry.families():
        series: List[Dict[str, object]] = []
        boundaries: Optional[List[float]] = None
        for values in sorted(family.children):
            child = family.children[values]
            row: Dict[str, object] = {"labels": list(values)}
            if family.kind == "counter":
                row["value"] = child.value
            elif family.kind == "gauge":
                row["value"] = child.get()
            else:
                boundaries = list(child.boundaries)
                row["counts"] = list(child.counts)
                row["sum"] = child.sum
                row["count"] = child.count
            series.append(row)
        if family.kind == "histogram" and boundaries is None:
            # No children yet: fall back to the family's configured
            # boundaries (None = the module default, resolved by the
            # first child on restore).
            boundaries = list(family.buckets) if family.buckets is not None else None
        families[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "label_names": list(family.label_names),
            "buckets": boundaries,
            "series": series,
        }
    return {"snapshot_version": SNAPSHOT_VERSION, "families": families}


def _check_snapshot(snapshot: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    if not isinstance(snapshot, dict) or "families" not in snapshot:
        raise ValueError("not a registry snapshot (missing 'families')")
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot_version {version!r}, expected {SNAPSHOT_VERSION}"
        )
    return snapshot["families"]  # type: ignore[return-value]


def registry_from_snapshot(snapshot: Dict[str, object]) -> MetricsRegistry:
    """Rebuild a live :class:`MetricsRegistry` from a snapshot."""
    registry = MetricsRegistry()
    merge_into(registry, snapshot)
    return registry


def merge_into(
    registry: MetricsRegistry,
    snapshot: Dict[str, object],
    labels: Optional[Dict[str, str]] = None,
    gauge_policy: Optional[Dict[str, str]] = None,
) -> MetricsRegistry:
    """Fold ``snapshot`` into ``registry`` (see module docstring).

    ``labels`` adds constant labels to every merged series (e.g.
    ``{"shard": "2"}``); a name already used by a family is a collision
    and raises.  ``gauge_policy`` maps family name → one of
    :data:`GAUGE_POLICIES`; unlisted gauge families use ``max``.
    """
    extra = dict(labels or {})
    policies = gauge_policy or {}
    for value in policies.values():
        if value not in GAUGE_POLICIES:
            raise ValueError(f"unknown gauge policy {value!r}")
    incoming_families = _check_snapshot(snapshot)
    for name in sorted(incoming_families):
        family = incoming_families[name]
        kind = family["kind"]
        help_text = family.get("help", "")
        label_names: List[str] = list(family["label_names"])
        collisions = set(label_names) & set(extra)
        if collisions:
            raise ValueError(
                f"metric {name!r}: extra label(s) {sorted(collisions)} "
                "collide with the family's own label names"
            )
        buckets: Optional[Sequence[float]] = family.get("buckets")
        existing = registry._families.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {existing.kind} here, "
                    f"a {kind} in the snapshot"
                )
            merged_names = tuple(sorted(set(label_names) | set(extra)))
            if existing.label_names != merged_names:
                raise ValueError(
                    f"metric {name!r} labels {existing.label_names} != "
                    f"{merged_names} (label-set collision)"
                )
        policy = policies.get(name, "max")
        for row in family["series"]:
            values = [str(v) for v in row["labels"]]
            if len(values) != len(label_names):
                raise ValueError(
                    f"metric {name!r}: series carries {len(values)} label "
                    f"values for {len(label_names)} label names"
                )
            all_labels = dict(zip(label_names, values))
            all_labels.update(extra)
            if kind == "counter":
                child: Counter = registry.counter(name, help_text, **all_labels)
                amount = row["value"]
                if amount < 0:
                    raise ValueError(f"metric {name!r}: negative counter value")
                child.value += amount
            elif kind == "gauge":
                family_obj = registry._families.get(name)
                child_key = tuple(
                    str(all_labels[key]) for key in sorted(all_labels)
                )
                fresh = (
                    family_obj is None or child_key not in family_obj.children
                )
                gauge: Gauge = registry.gauge(name, help_text, **all_labels)
                incoming = float(row["value"])
                if policy == "last" or fresh:
                    gauge.set(incoming)
                elif policy == "max":
                    gauge.set(max(gauge.get(), incoming))
                elif policy == "min":
                    gauge.set(min(gauge.get(), incoming))
                else:  # sum
                    gauge.set(gauge.get() + incoming)
            else:
                hist: Histogram = registry.histogram(
                    name, help_text, buckets=buckets, **all_labels
                )
                counts = row["counts"]
                incoming_bounds = list(buckets) if buckets is not None else None
                if (
                    incoming_bounds is not None
                    and hist.boundaries != incoming_bounds
                ) or len(hist.counts) != len(counts):
                    raise ValueError(
                        f"metric {name!r}: histogram bucket boundaries differ "
                        "between snapshots; refusing a lossy merge"
                    )
                for index, count in enumerate(counts):
                    hist.counts[index] += count
                hist.sum += row["sum"]
                hist.count += row["count"]
    return registry


def merge_snapshots(
    snapshots: Iterable[Dict[str, object]],
    gauge_policy: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Merge many snapshots into one (fresh-registry fold)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        merge_into(registry, snapshot, gauge_policy=gauge_policy)
    return snapshot_registry(registry)
