"""Causal spans across the update path.

A *span* is one timed step of a route's life — the processing of an
UPDATE, one extension code's run, the decision process for a prefix,
the export pass — linked to its parent step by ``(trace, span)`` ids.
A *trace* groups every span caused by one original event; when a
router advertises a route over a simulated link, the receiving
router's UPDATE span adopts the sender's trace id, so one trace spans
routers and the full causal chain of a route can be reconstructed
end-to-end.

The recorder is a bounded ring (like :class:`~repro.telemetry.trace
.TraceRing`): long-lived daemons keep recording, old spans are evicted
and the eviction is counted.  Timestamps come from an injectable
``clock`` — wall-clock monotonic by default, the simulator's virtual
clock when a :class:`~repro.sim.network.Network` wires it up.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

__all__ = ["SpanRecorder", "DEFAULT_SPAN_CAPACITY"]

DEFAULT_SPAN_CAPACITY = 8192

#: A portable reference to a span: (trace id, span id).  Refs cross
#: router boundaries (scheduled with the bytes on a simulated link) and
#: deserialise trivially from JSONL.
SpanRef = Tuple[str, str]


class SpanRecorder:
    """Fixed-capacity ring of span dicts for one router."""

    def __init__(
        self,
        router: str,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ):
        if capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.router = router
        self.capacity = capacity
        self.clock: Callable[[], float] = clock or time.monotonic
        self._spans: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0

    # -- recording -------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.router}#{self._seq}"

    def start(
        self,
        kind: str,
        parent: Optional[Union[Dict[str, object], SpanRef]] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Open a span; returns the (mutable, in-ring) span dict.

        ``parent`` is either a span dict previously returned by this
        recorder or a ``(trace, span)`` ref from *another* recorder —
        the new span joins the parent's trace either way.  With no
        parent the span roots a fresh trace.
        """
        span_id = self._next_id()
        if parent is None:
            trace_id = span_id
            parent_id: Optional[str] = None
        elif isinstance(parent, dict):
            trace_id = parent["trace"]  # type: ignore[assignment]
            parent_id = parent["span"]  # type: ignore[assignment]
        else:
            trace_id, parent_id = parent
        span: Dict[str, object] = {
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "router": self.router,
            "kind": kind,
            "start": self.clock(),
        }
        if fields:
            span.update(fields)
        self._spans.append(span)
        return span

    def finish(self, span: Dict[str, object], **fields: object) -> Dict[str, object]:
        """Close a span (records ``end``); extra fields are merged in."""
        span["end"] = self.clock()
        if fields:
            span.update(fields)
        return span

    def point(
        self,
        kind: str,
        parent: Optional[Union[Dict[str, object], SpanRef]] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """An instantaneous span (start == end)."""
        span = self.start(kind, parent, **fields)
        span["end"] = span["start"]
        return span

    @staticmethod
    def ref(span: Dict[str, object]) -> SpanRef:
        """The portable (trace, span) reference of ``span``."""
        return (span["trace"], span["span"])  # type: ignore[return-value]

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def recorded(self) -> int:
        return self._seq

    @property
    def evicted(self) -> int:
        return self._seq - len(self._spans)

    def spans(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        if kind is None:
            return list(self._spans)
        return [span for span in self._spans if span["kind"] == kind]

    def for_trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every buffered span belonging to ``trace_id``, in start order."""
        return [span for span in self._spans if span["trace"] == trace_id]

    def clear(self) -> None:
        self._spans.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "buffered": len(self._spans),
            "recorded": self._seq,
            "evicted": self.evicted,
        }

    # -- export -----------------------------------------------------------

    def export_jsonl(self, destination: Union[str, io.TextIOBase]) -> int:
        """Write buffered spans as JSON Lines; returns the span count."""
        spans = list(self._spans)
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                for span in spans:
                    handle.write(json.dumps(span) + "\n")
        else:
            for span in spans:
                destination.write(json.dumps(span) + "\n")
        return len(spans)
