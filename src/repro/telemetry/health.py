"""Extension fault management: a per-extension circuit breaker.

The paper's future-work section notes the VMM "needs to monitor the
execution of the bytecodes and their impact on the router".  This
module supplies the *act* half of that monitoring: an extension that
fails repeatedly (sandbox faults, blown instruction budgets, helper
errors) is **quarantined** — skipped by the VMM so the rest of the
chain and the host's native function keep the router converging.

States follow the classic circuit-breaker shape:

* ``closed``    — healthy, runs normally; consecutive errors counted;
* ``open``      — quarantined after ``error_threshold`` consecutive
  errors; every would-be invocation is skipped (and counted);
* ``half_open`` — probation: after ``probation_after`` skipped
  invocations the breaker lets trial runs through; ``probation_successes``
  consecutive clean runs re-arm (close) it, one error re-opens it.

Probation is optional: ``probation_after=0`` (the default) keeps a
quarantined extension detached until an operator re-attaches it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["QuarantinePolicy", "ExtensionHealth", "QuarantineEngine"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class QuarantinePolicy:
    """Thresholds of the circuit breaker.

    ``error_threshold=0`` disables quarantine entirely (every extension
    stays attached no matter how often it faults) — the seed behavior.
    """

    __slots__ = ("error_threshold", "probation_after", "probation_successes")

    def __init__(
        self,
        error_threshold: int = 0,
        probation_after: int = 0,
        probation_successes: int = 3,
    ):
        if error_threshold < 0 or probation_after < 0 or probation_successes < 1:
            raise ValueError("bad quarantine policy")
        self.error_threshold = error_threshold
        self.probation_after = probation_after
        self.probation_successes = probation_successes

    @property
    def enabled(self) -> bool:
        return self.error_threshold > 0

    def __repr__(self) -> str:
        return (
            f"QuarantinePolicy(error_threshold={self.error_threshold}, "
            f"probation_after={self.probation_after}, "
            f"probation_successes={self.probation_successes})"
        )


class ExtensionHealth:
    """Mutable breaker state for one (insertion point, extension)."""

    __slots__ = (
        "point",
        "name",
        "state",
        "consecutive_errors",
        "skipped",
        "trial_successes",
        "quarantine_count",
    )

    def __init__(self, point: str, name: str):
        self.point = point
        self.name = name
        self.state = CLOSED
        self.consecutive_errors = 0
        self.skipped = 0
        self.trial_successes = 0
        self.quarantine_count = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "point": self.point,
            "extension": self.name,
            "state": self.state,
            "consecutive_errors": self.consecutive_errors,
            "skipped": self.skipped,
            "quarantine_count": self.quarantine_count,
        }


class QuarantineEngine:
    """Owns breaker state and transitions; consulted by the VMM.

    ``on_transition(health, previous_state)`` fires on every state
    change so the telemetry facade can trace and count transitions.
    """

    def __init__(
        self,
        policy: Optional[QuarantinePolicy] = None,
        on_transition: Optional[Callable[[ExtensionHealth, str], None]] = None,
    ):
        self.policy = policy or QuarantinePolicy()
        self.on_transition = on_transition
        self._states: Dict[Tuple[str, str], ExtensionHealth] = {}

    # -- state access -----------------------------------------------------

    def state_for(self, point: str, name: str) -> ExtensionHealth:
        key = (point, name)
        health = self._states.get(key)
        if health is None:
            health = ExtensionHealth(point, name)
            self._states[key] = health
        return health

    def discard(self, point: str, name: str) -> None:
        """Forget the breaker state for one (point, extension).

        Called when the extension is detached so a later re-attach under
        the same name starts with a fresh (closed) breaker instead of
        inheriting its predecessor's open circuit.
        """
        self._states.pop((point, name), None)

    def is_quarantined(self, point: str, name: str) -> bool:
        health = self._states.get((point, name))
        return health is not None and health.state == OPEN

    def quarantined(self) -> List[ExtensionHealth]:
        return [h for h in self._states.values() if h.state != CLOSED]

    def snapshot(self) -> List[Dict[str, object]]:
        return [
            self._states[key].snapshot() for key in sorted(self._states)
        ]

    def _transition(self, health: ExtensionHealth, state: str) -> None:
        previous = health.state
        health.state = state
        if self.on_transition is not None:
            self.on_transition(health, previous)

    # -- breaker protocol (hot path) ---------------------------------------

    def allow(self, health: ExtensionHealth) -> bool:
        """May this extension run now?  Counts the skip when not."""
        if health.state != OPEN:
            return True
        health.skipped += 1
        after = self.policy.probation_after
        if after and health.skipped >= after:
            health.trial_successes = 0
            self._transition(health, HALF_OPEN)
            return True
        return False

    def record_success(self, health: ExtensionHealth) -> None:
        if health.state == HALF_OPEN:
            health.trial_successes += 1
            if health.trial_successes >= self.policy.probation_successes:
                health.consecutive_errors = 0
                health.skipped = 0
                health.trial_successes = 0
                self._transition(health, CLOSED)
            return
        health.consecutive_errors = 0

    def record_error(self, health: ExtensionHealth) -> None:
        if health.state == HALF_OPEN:
            # Probation failed: back into quarantine.
            health.skipped = 0
            health.trial_successes = 0
            health.quarantine_count += 1
            self._transition(health, OPEN)
            return
        health.consecutive_errors += 1
        threshold = self.policy.error_threshold
        if threshold and health.state == CLOSED and health.consecutive_errors >= threshold:
            health.skipped = 0
            health.quarantine_count += 1
            self._transition(health, OPEN)
