"""repro.telemetry — runtime observability for libxbgp.

The paper's future work says the VMM "needs to monitor the execution
of the bytecodes and their impact on the router"; this package is that
monitor, three layers sharing one facade:

* :mod:`repro.telemetry.metrics` — a registry of counters, gauges and
  log-bucketed latency histograms with Prometheus text + JSON export;
* :mod:`repro.telemetry.trace`   — a ring buffer of structured events
  (extension enter/exit, ``next()`` delegation, fallback, verdicts,
  quarantine transitions) with JSONL export;
* :mod:`repro.telemetry.health`  — a per-extension circuit breaker
  that quarantines crash-looping extension codes and optionally
  re-arms them after probation.

One :class:`Telemetry` instance belongs to one
:class:`~repro.core.vmm.VirtualMachineManager`; the daemons, the
experiment harness and the ``xbgp stats`` CLI all read the same object,
so benchmarks and live runs share a single observability path.
"""

from __future__ import annotations

from typing import Dict, Optional

from .health import ExtensionHealth, QuarantineEngine, QuarantinePolicy
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)
from .profiler import PHASES, Profiler, VmProfile
from .provenance import DEFAULT_STORIES_PER_PREFIX, ProvenanceTracker
from .spans import DEFAULT_SPAN_CAPACITY, SpanRecorder
from .trace import DEFAULT_TRACE_CAPACITY, TraceRing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "render_prometheus",
    "TraceRing",
    "DEFAULT_TRACE_CAPACITY",
    "SpanRecorder",
    "DEFAULT_SPAN_CAPACITY",
    "ProvenanceTracker",
    "DEFAULT_STORIES_PER_PREFIX",
    "Profiler",
    "VmProfile",
    "PHASES",
    "ExtensionHealth",
    "QuarantineEngine",
    "QuarantinePolicy",
    "Telemetry",
]


class Telemetry:
    """Registry + trace + quarantine engine wired together."""

    def __init__(
        self,
        policy: Optional[QuarantinePolicy] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_timestamps: bool = False,
    ):
        self.registry = MetricsRegistry()
        self.trace = TraceRing(trace_capacity, timestamps=trace_timestamps)
        self.health = QuarantineEngine(policy, on_transition=self._on_transition)

    # -- quarantine plumbing ----------------------------------------------

    def _on_transition(self, health: ExtensionHealth, previous: str) -> None:
        self.trace.record(
            "quarantine",
            health.point,
            health.name,
            from_state=previous,
            to_state=health.state,
        )
        self.registry.counter(
            "xbgp_quarantine_transitions",
            "circuit-breaker state changes",
            point=health.point,
            extension=health.name,
            to_state=health.state,
        ).inc()

    # -- export ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Metrics in Prometheus text exposition format."""
        return render_prometheus(self.registry)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able view of everything: metrics, health, trace."""
        return {
            "metrics": self.registry.to_json(),
            "health": self.health.snapshot(),
            "trace": self.trace.stats(),
        }
