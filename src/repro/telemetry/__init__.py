"""repro.telemetry — runtime observability for libxbgp.

The paper's future work says the VMM "needs to monitor the execution
of the bytecodes and their impact on the router"; this package is that
monitor, three layers sharing one facade:

* :mod:`repro.telemetry.metrics` — a registry of counters, gauges and
  log-bucketed latency histograms with Prometheus text + JSON export;
* :mod:`repro.telemetry.trace`   — a ring buffer of structured events
  (extension enter/exit, ``next()`` delegation, fallback, verdicts,
  quarantine transitions) with JSONL export;
* :mod:`repro.telemetry.health`  — a per-extension circuit breaker
  that quarantines crash-looping extension codes and optionally
  re-arms them after probation.

On top of the facade live the temporal layers:
:mod:`~repro.telemetry.timeseries` (periodic registry samples, derived
rates/quantiles, the shard merge path), :mod:`~repro.telemetry.alerts`
(declarative rules evaluated against those samples),
:mod:`~repro.telemetry.events` (the structured lifecycle log the alert
engine writes ``alert_fire``/``alert_resolve`` into),
:mod:`~repro.telemetry.exporter` (the HTTP surface) and
:mod:`~repro.telemetry.dashboard` (the ``xbgp top`` renderer).

One :class:`Telemetry` instance belongs to one
:class:`~repro.core.vmm.VirtualMachineManager`; the daemons, the
experiment harness and the ``xbgp stats`` CLI all read the same object,
so benchmarks and live runs share a single observability path.
"""

from __future__ import annotations

from typing import Dict, Optional

from .aggregate import (
    SNAPSHOT_VERSION,
    merge_into,
    merge_snapshots,
    registry_from_snapshot,
    snapshot_registry,
)
from .alerts import AlertEngine, AlertRule, AlertRuleError, load_rules, parse_rule
from .dashboard import render_dashboard, sparkline
from .events import (
    EVENT_TYPES,
    EventLog,
    EventSchemaError,
    emit_convergence_events,
    validate_event,
)
from .exporter import TelemetryExporter
from .health import ExtensionHealth, QuarantineEngine, QuarantinePolicy
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)
from .profiler import PHASES, Profiler, VmProfile
from .progress import ReplayProgress
from .provenance import DEFAULT_STORIES_PER_PREFIX, ProvenanceTracker
from .spans import DEFAULT_SPAN_CAPACITY, SpanRecorder
from .timeseries import (
    TIMESERIES_VERSION,
    TimeSeries,
    TimeSeriesSampler,
    diff_samples,
    merge_timeseries,
    read_timeseries,
    render_diff,
)
from .trace import DEFAULT_TRACE_CAPACITY, TraceRing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "render_prometheus",
    "SNAPSHOT_VERSION",
    "snapshot_registry",
    "registry_from_snapshot",
    "merge_into",
    "merge_snapshots",
    "EVENT_TYPES",
    "EventLog",
    "EventSchemaError",
    "emit_convergence_events",
    "validate_event",
    "TelemetryExporter",
    "ReplayProgress",
    "TIMESERIES_VERSION",
    "TimeSeries",
    "TimeSeriesSampler",
    "diff_samples",
    "merge_timeseries",
    "read_timeseries",
    "render_diff",
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "load_rules",
    "parse_rule",
    "render_dashboard",
    "sparkline",
    "TraceRing",
    "DEFAULT_TRACE_CAPACITY",
    "SpanRecorder",
    "DEFAULT_SPAN_CAPACITY",
    "ProvenanceTracker",
    "DEFAULT_STORIES_PER_PREFIX",
    "Profiler",
    "VmProfile",
    "PHASES",
    "ExtensionHealth",
    "QuarantineEngine",
    "QuarantinePolicy",
    "Telemetry",
]


class Telemetry:
    """Registry + trace + quarantine engine wired together."""

    def __init__(
        self,
        policy: Optional[QuarantinePolicy] = None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_timestamps: bool = False,
    ):
        self.registry = MetricsRegistry()
        self.trace = TraceRing(trace_capacity, timestamps=trace_timestamps)
        self.health = QuarantineEngine(policy, on_transition=self._on_transition)
        #: Optional structured event log; when set, breaker transitions
        #: also become schema'd ``quarantine`` events.
        self.events: Optional[EventLog] = None

    # -- quarantine plumbing ----------------------------------------------

    def _on_transition(self, health: ExtensionHealth, previous: str) -> None:
        self.trace.record(
            "quarantine",
            health.point,
            health.name,
            from_state=previous,
            to_state=health.state,
        )
        self.registry.counter(
            "xbgp_quarantine_transitions",
            "circuit-breaker state changes",
            point=health.point,
            extension=health.name,
            to_state=health.state,
        ).inc()
        if self.events is not None:
            self.events.emit(
                "quarantine",
                point=health.point,
                extension=health.name,
                from_state=previous,
                to_state=health.state,
            )

    # -- export ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Metrics in Prometheus text exposition format."""
        return render_prometheus(self.registry)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able view of everything: metrics, health, trace.

        ``registry`` is the full-fidelity mergeable form (exact
        histogram buckets) — what ``xbgp stats --merge`` and the shard
        merge path consume; ``metrics`` stays the human-facing summary
        view.
        """
        return {
            "metrics": self.registry.to_json(),
            "registry": snapshot_registry(self.registry),
            "health": self.health.snapshot(),
            "trace": self.trace.stats(),
        }
