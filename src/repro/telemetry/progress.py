"""Live replay progress: shard heartbeats → per-shard state, ETA, gauges.

:class:`ReplayProgress` consumes the heartbeat events a
:class:`~repro.scale.ShardedReplay` parent drains from its workers
(``replay_start``, ``shard_start``, ``shard_progress``,
``shard_finish``, ``replay_finish``) and maintains:

* per-shard ``routes_done``/``routes`` counts;
* an overall completion ratio and a rate-based ETA;
* if given a registry, live gauges (``xbgp_replay_progress_routes``
  per shard, ``xbgp_replay_total_routes``, ``xbgp_replay_done_ratio``,
  ``xbgp_replay_eta_seconds``) — what ``/metrics`` serves *during* a
  replay, before any worker registry has been shipped back.

The ETA is total remaining work over the aggregate observed rate; with
balanced shards and workers running in parallel this tracks the true
wall clock closely and degrades gracefully (over-estimates) when
shards queue on fewer cores.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .metrics import MetricsRegistry

__all__ = ["ReplayProgress"]

_HEARTBEAT_KINDS = (
    "replay_start",
    "replay_finish",
    "shard_start",
    "shard_progress",
    "shard_finish",
)


class ReplayProgress:
    """Fold heartbeat events into live progress state (see module doc)."""

    #: Seconds without forward progress before the replay reads "stalled".
    DEFAULT_STALL_AFTER = 10.0

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
        stall_after: float = DEFAULT_STALL_AFTER,
    ) -> None:
        self.registry = registry
        self._clock = clock
        self.stall_after = stall_after
        #: shard -> {"routes": int, "done": int, "finished": bool}
        self.shards: Dict[int, Dict[str, object]] = {}
        self.total_routes = 0
        self.started_at: Optional[float] = None
        self.finished = False
        self.wall_seconds: Optional[float] = None
        self._last_done = 0
        self._last_advance_at: Optional[float] = None

    # -- event intake ----------------------------------------------------

    def on_event(self, event: Dict[str, object]) -> None:
        """Consume one heartbeat event; other event types are ignored."""
        kind = event.get("event")
        if kind not in _HEARTBEAT_KINDS:
            return
        if self.started_at is None:
            self.started_at = self._clock()
        if kind == "replay_start":
            self.total_routes = int(event["routes"])
            self.finished = False
        elif kind == "shard_start":
            shard = int(event["shard"])
            self.shards[shard] = {
                "routes": int(event["routes"]),
                "done": 0,
                "finished": False,
            }
        elif kind == "shard_progress":
            shard = int(event["shard"])
            state = self.shards.setdefault(
                shard,
                {"routes": int(event["routes"]), "done": 0, "finished": False},
            )
            state["done"] = int(event["routes_done"])
        elif kind == "shard_finish":
            shard = int(event["shard"])
            state = self.shards.setdefault(
                shard,
                {"routes": int(event["routes"]), "done": 0, "finished": False},
            )
            state["done"] = state["routes"]
            state["finished"] = True
        else:  # replay_finish
            self.finished = True
            self.wall_seconds = float(event["wall_seconds"])
            for state in self.shards.values():
                state["done"] = state["routes"]
                state["finished"] = True
        done = self.done_routes
        if done > self._last_done or self._last_advance_at is None:
            self._last_done = done
            self._last_advance_at = self._clock()
        self._update_gauges()

    # -- derived state ---------------------------------------------------

    @property
    def done_routes(self) -> int:
        return sum(int(state["done"]) for state in self.shards.values())

    @property
    def known_routes(self) -> int:
        """Total routes: the replay_start announcement, else shard sums."""
        if self.total_routes:
            return self.total_routes
        return sum(int(state["routes"]) for state in self.shards.values())

    def ratio(self) -> float:
        total = self.known_routes
        return (self.done_routes / total) if total else 0.0

    def stalled(self) -> bool:
        """True when no shard has advanced for ``stall_after`` seconds.

        A stalled replay has a meaningless rate extrapolation; callers
        (and :meth:`render`) should show "stalled" instead of an ETA.
        """
        if self.finished or self._last_advance_at is None:
            return False
        return self._clock() - self._last_advance_at >= self.stall_after

    def eta_seconds(self) -> Optional[float]:
        """Remaining seconds at the observed aggregate rate.

        ``None`` when no extrapolation is honest: before any progress
        exists, under a non-positive elapsed clock (monotonic-clock
        injection in tests, or a heartbeat arriving in the same tick as
        ``replay_start``), on a zero/negative observed rate, or while
        :meth:`stalled` — a divide-by-zero or nonsense ETA is never
        produced.
        """
        if self.finished:
            return 0.0
        done = self.done_routes
        if done <= 0 or self.started_at is None or self.stalled():
            return None
        elapsed = self._clock() - self.started_at
        if elapsed <= 0:
            return None
        rate = done / elapsed
        if rate <= 0 or rate != rate or rate == float("inf"):
            return None
        remaining = max(0, self.known_routes - done)
        return remaining / rate

    def render(self) -> str:
        """One status line: per-shard progress, total ratio, ETA."""
        parts = []
        for shard in sorted(self.shards):
            state = self.shards[shard]
            done, total = int(state["done"]), int(state["routes"])
            pct = (100.0 * done / total) if total else 100.0
            mark = "✓" if state["finished"] else f"{pct:.0f}%"
            parts.append(f"shard {shard}: {done}/{total} ({mark})")
        eta = self.eta_seconds()
        tail = f"total {self.ratio() * 100.0:.1f}%"
        if self.finished and self.wall_seconds is not None:
            tail += f" · done in {self.wall_seconds:.1f}s"
        elif self.stalled():
            tail += " · stalled"
        elif eta is not None:
            tail += f" · ETA {eta:.0f}s"
        parts.append(tail)
        return " | ".join(parts)

    # -- gauge export ----------------------------------------------------

    def _update_gauges(self) -> None:
        registry = self.registry
        if registry is None:
            return
        for shard in sorted(self.shards):
            state = self.shards[shard]
            registry.gauge(
                "xbgp_replay_progress_routes",
                "routes replayed so far, per shard",
                shard=str(shard),
            ).set(int(state["done"]))
            registry.gauge(
                "xbgp_replay_shard_routes",
                "routes assigned, per shard",
                shard=str(shard),
            ).set(int(state["routes"]))
        registry.gauge(
            "xbgp_replay_total_routes", "routes in the replayed workload"
        ).set(self.known_routes)
        registry.gauge(
            "xbgp_replay_done_ratio", "fraction of the workload replayed"
        ).set(self.ratio())
        eta = self.eta_seconds()
        registry.gauge(
            "xbgp_replay_eta_seconds", "estimated seconds to completion"
        ).set(eta if eta is not None else -1.0)
