"""``xbgp top``: a live ANSI terminal dashboard, stdlib only.

Pure rendering over the time-series sample format: given a list of
samples (from a live exporter's ``/timeseries`` endpoint or a recorded
JSONL file) plus optional alert and health snapshots,
:func:`render_dashboard` produces one text frame —

* header: sample count, wall-clock span, overall replay progress;
* per-shard progress bars from the live replay gauges;
* rate sparklines (▁▂▃▄▅▆▇█) for the busiest counter families;
* histogram summaries (count, p50, p95) per family;
* the firing-alert table, critical rules first.

Everything is a pure function of its inputs so the renderer is unit-
testable without a terminal; the CLI loop around it just clears the
screen (``ESC[H ESC[2J``) and re-renders at an interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .timeseries import counter_rates, gauge_value, histogram_quantiles

__all__ = ["render_dashboard", "sparkline"]

_SPARK_TICKS = "▁▂▃▄▅▆▇█"

#: Gauge families the progress section is built from (ReplayProgress).
_PROGRESS_DONE = "xbgp_replay_progress_routes"
_PROGRESS_TOTAL = "xbgp_replay_shard_routes"
_PROGRESS_RATIO = "xbgp_replay_done_ratio"

#: Families the internal replay machinery owns; the counter table
#: shows workload counters, not the dashboard's own inputs.
_PROGRESS_PREFIX = "xbgp_replay_"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render values as a fixed-width Unicode sparkline."""
    if width < 1:
        return ""
    points = list(values)[-width:]
    if not points:
        return " " * width
    top = max(points)
    if top <= 0:
        return (_SPARK_TICKS[0] * len(points)).rjust(width)
    ticks = []
    for value in points:
        index = int((max(0.0, value) / top) * (len(_SPARK_TICKS) - 1))
        ticks.append(_SPARK_TICKS[index])
    return "".join(ticks).rjust(width)


def _bar(ratio: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, ratio)) * width))
    return "█" * filled + "·" * (width - filled)


def _shard_rows(sample: Dict[str, object]) -> List[Tuple[str, float, float]]:
    """``(shard, done, total)`` per shard from the progress gauges."""
    families = sample["registry"].get("families", {})
    done_info = families.get(_PROGRESS_DONE)
    total_info = families.get(_PROGRESS_TOTAL)
    if not done_info or not total_info:
        return []

    def _by_shard(info) -> Dict[str, float]:
        names = list(info.get("label_names", []))
        out: Dict[str, float] = {}
        for row in info.get("series", []):
            labels = dict(zip(names, [str(v) for v in row.get("labels", [])]))
            shard = labels.get("shard")
            if shard is not None:
                out[shard] = float(row.get("value", 0.0))
        return out

    done = _by_shard(done_info)
    total = _by_shard(total_info)
    rows = []
    for shard in sorted(total, key=lambda s: (len(s), s)):
        rows.append((shard, done.get(shard, 0.0), total[shard]))
    return rows


def _counter_families(sample: Dict[str, object]) -> List[str]:
    families = sample["registry"].get("families", {})
    return sorted(
        name
        for name, info in families.items()
        if info.get("kind") == "counter"
        and not name.startswith(_PROGRESS_PREFIX)
    )


def _histogram_families(sample: Dict[str, object]) -> List[str]:
    families = sample["registry"].get("families", {})
    return sorted(
        name
        for name, info in families.items()
        if info.get("kind") == "histogram"
    )


def render_dashboard(
    samples: Sequence[Dict[str, object]],
    alerts: Optional[Dict[str, object]] = None,
    health: Optional[Dict[str, object]] = None,
    *,
    width: int = 78,
    max_counters: int = 6,
    max_histograms: int = 4,
    source: str = "",
) -> str:
    """One dashboard frame (see module docstring)."""
    lines: List[str] = []
    rule = "─" * width
    title = "xbgp top"
    if source:
        title += f" · {source}"
    lines.append(title)
    lines.append(rule)
    if not samples:
        lines.append("(no samples yet)")
        return "\n".join(lines)
    last = samples[-1]
    span = float(last["ts"]) - float(samples[0]["ts"])
    status = ""
    if health is not None:
        status = f" · health {health.get('status', '?')}"
    lines.append(
        f"samples {len(samples)} · span {span:.1f}s"
        f" · last seq {last.get('seq', '?')}{status}"
    )

    # -- replay progress -------------------------------------------------
    shard_rows = _shard_rows(last)
    if shard_rows:
        lines.append(rule)
        ratio = gauge_value(last, _PROGRESS_RATIO)
        header = "replay progress"
        if ratio is not None:
            header += f" · total {min(1.0, ratio) * 100.0:.1f}%"
        lines.append(header)
        for shard, done, total in shard_rows:
            part = done / total if total else 1.0
            lines.append(
                f"  shard {shard:>3} {_bar(part)}"
                f" {int(done)}/{int(total)} ({part * 100.0:.0f}%)"
            )

    # -- counter rates ---------------------------------------------------
    counters = _counter_families(last)
    if counters:
        lines.append(rule)
        lines.append("counters (rate/s, total)")
        ranked = sorted(
            counters,
            key=lambda name: -(gauge_value(last, name) or 0.0),
        )[:max_counters]
        name_width = max(len(name) for name in ranked)
        for name in ranked:
            rates = counter_rates(samples, name)
            current = rates[-1][1] if rates else 0.0
            total = gauge_value(last, name) or 0.0
            lines.append(
                f"  {name:<{name_width}} "
                f"{sparkline([rate for _, rate in rates])}"
                f" {current:>10.1f}/s {total:>12g}"
            )
        dropped = len(counters) - len(ranked)
        if dropped > 0:
            lines.append(f"  … {dropped} more counter familie(s) not shown")

    # -- histogram summaries ---------------------------------------------
    histograms = _histogram_families(last)
    if histograms:
        lines.append(rule)
        lines.append("histograms (cumulative)")
        shown = histograms[:max_histograms]
        name_width = max(len(name) for name in shown)
        for name in shown:
            summary = histogram_quantiles(last, name, (0.5, 0.95))
            if summary is None:
                continue
            lines.append(
                f"  {name:<{name_width}} count {summary['count']:>10g}"
                f"  p50 {summary['p50']:.6g}  p95 {summary['p95']:.6g}"
            )
        dropped = len(histograms) - len(shown)
        if dropped > 0:
            lines.append(f"  … {dropped} more histogram familie(s) not shown")

    # -- alerts ----------------------------------------------------------
    if alerts is not None and alerts.get("rules"):
        lines.append(rule)
        firing = [r for r in alerts["rules"] if r.get("state") == "firing"]
        firing.sort(key=lambda r: (r.get("severity") != "critical", r.get("rule")))
        lines.append(
            f"alerts · {len(firing)} firing / {len(alerts['rules'])} rules"
        )
        for row in firing:
            value = row.get("value")
            shown_value = f"{value:g}" if isinstance(value, (int, float)) else "∅"
            lines.append(
                f"  [{str(row.get('severity', '?')).upper():<8}]"
                f" {row.get('rule')} · value {shown_value}"
                f" · fired {row.get('fires', 0)}×"
            )
        if not firing:
            lines.append("  all quiet")
    lines.append(rule)
    return "\n".join(lines)
