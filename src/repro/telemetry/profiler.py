"""Execution profiling for xBGP extensions and the host update path.

Telemetry (PR 1) and provenance (PR 4) can say *that* an extension ran
slow; this module says *where* the cycles went.  A :class:`Profiler`
aggregates three views:

* **bytecode hotspots** — one :class:`VmProfile` per attached
  extension code.  Under the interpreter the counts are exact and
  PC-level (every executed instruction bumps its slot, so the per-PC
  sum equals ``steps_executed`` on returning, delegating and faulting
  runs alike).  Under the JIT the equivalent is compiled into the
  translated function at basic-block granularity: entry and
  instruction counters per block leader, flushed wherever the
  translator flushes ``steps``.  Both engines agree on
  :meth:`VmProfile.block_profile` for non-faulting runs, which the
  parity tests check.  Helper calls are timed individually, and the
  heap/stack high watermarks ride the PR 2 lazy-zero memory.

* **phase breakdown** — wall-clock totals for the daemon update path
  (``decode`` plus the five insertion points), fed by the FRR/BIRD
  pipelines when profiling is enabled.

* **exports** — annotated disassembly listings
  (:meth:`Profiler.render`) and collapsed-stack files
  (:meth:`Profiler.collapsed`) loadable in speedscope or
  flamegraph.pl: ``router;phase;extension;pc_<block> weight``.

Profiling is off by default and free when off: the daemons'
``enable_profiling()`` disqualifies the VMM's pre-bound fast-path
closures (exactly like provenance) and ``disable_profiling()``
restores them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ebpf.disassembler import disassemble_one
from ..ebpf.isa import OP_LDDW
from ..ebpf.memory import STACK_SIZE

__all__ = ["Profiler", "VmProfile", "PHASES"]

#: The update hot path, in pipeline order (Fig. 2 of the paper).
PHASES = (
    "decode",
    "bgp_receive_message",
    "bgp_inbound_filter",
    "bgp_decision",
    "bgp_outbound_filter",
    "bgp_encode_message",
)


class VmProfile:
    """Hotspot profile of one attached extension code.

    ``pc_counts`` (interpreter) is indexed by instruction *slot* — the
    second slot of an ``lddw`` never fires, matching how the program
    counter moves.  ``block_entries``/``block_insns`` (JIT) are indexed
    by block-leader slot.  ``stack_low`` is a one-element list so the
    JIT's generated code can close over it as a mutable cell.
    """

    __slots__ = (
        "point",
        "extension",
        "engine",
        "tier",
        "fallback_reason",
        "program",
        "helper_names",
        "pc_counts",
        "block_entries",
        "block_insns",
        "helper_seconds",
        "helper_count",
        "heap_hwm",
        "stack_low",
        "runs",
        "run_seconds",
    )

    def __init__(self, point: str, extension: str, vm=None):
        self.point = point
        self.extension = extension
        if vm is None:
            # Host-native (pyext) codes run no VM at all.
            self.engine = "host"
            self.tier = "host"
            self.fallback_reason = None
            self.program = []
            self.helper_names = {}
        else:
            self.tier = vm.tier
            self.engine = vm.tier_used or vm.tier
            self.fallback_reason = vm.native_fallback_reason
            self.program = vm.program
            self.helper_names = {
                helper_id: vm.helpers.get(helper_id).name
                for helper_id in vm.helpers.ids()
            }
        size = len(self.program)
        self.pc_counts = [0] * size
        self.block_entries = [0] * size
        self.block_insns = [0] * size
        # Pre-seeded so generated code can use plain indexed updates.
        self.helper_seconds = {helper_id: 0.0 for helper_id in self.helper_names}
        self.helper_count = {helper_id: 0 for helper_id in self.helper_names}
        self.heap_hwm = 0
        self.stack_low = [STACK_SIZE]
        self.runs = 0
        self.run_seconds = 0.0

    # -- feeding ---------------------------------------------------------

    def note_run(self, elapsed: float, heap_used: int) -> None:
        """Per-run bookkeeping, called from the VMM's observe seam."""
        self.runs += 1
        self.run_seconds += elapsed
        if heap_used > self.heap_hwm:
            self.heap_hwm = heap_used

    # -- derived views ---------------------------------------------------

    @property
    def stack_hwm(self) -> int:
        """Deepest stack touch in bytes (r10 grows down from the top)."""
        low = self.stack_low[0]
        return STACK_SIZE - low if low < STACK_SIZE else 0

    def instructions(self) -> int:
        """Total instructions attributed — equals the VMM's
        ``xbgp_extension_instructions`` counter for runs made while
        profiling was enabled."""
        if self.engine == "interp":
            return sum(self.pc_counts)
        return sum(self.block_insns)

    def _leaders(self) -> List[int]:
        from ..ebpf.jit import _leaders

        return _leaders(self.program)

    def block_profile(self) -> Dict[int, Tuple[int, int]]:
        """``{leader: (entries, instructions)}`` — the engine-neutral
        granularity.  Under the interpreter a block's entry count is its
        leader's execution count (blocks are single-entry), and its
        instruction count is the sum over its slots; under the JIT both
        are maintained directly by the generated code.  Identical for
        runs that do not blow the budget (the known per-block-vs-per-step
        blowout asymmetry is the engines' documented divergence).
        """
        if not self.program:
            return {}
        leaders = self._leaders()
        result: Dict[int, Tuple[int, int]] = {}
        if self.engine == "interp":
            bounds = leaders + [len(self.program)]
            for index, leader in enumerate(leaders):
                entries = self.pc_counts[leader]
                insns = sum(self.pc_counts[leader : bounds[index + 1]])
                if entries or insns:
                    result[leader] = (entries, insns)
            return result
        for leader in leaders:
            entries = self.block_entries[leader]
            insns = self.block_insns[leader]
            if entries or insns:
                result[leader] = (entries, insns)
        return result

    def hotspots(self, top: int = 10) -> List[Dict[str, object]]:
        """Top-``top`` hot locations with their disassembly.

        PC-level under the interpreter; block-level under the JIT
        (ranked by instructions executed in the block, annotated with
        the leader instruction).
        """
        spots: List[Dict[str, object]] = []
        if self.engine == "interp":
            for pc, count in enumerate(self.pc_counts):
                if count:
                    spots.append(
                        {"pc": pc, "count": count, "insn": self._disasm(pc)}
                    )
            spots.sort(key=lambda s: (-s["count"], s["pc"]))
        else:
            for leader, (entries, insns) in self.block_profile().items():
                spots.append(
                    {
                        "pc": leader,
                        "count": insns,
                        "entries": entries,
                        "insn": self._disasm(leader),
                    }
                )
            spots.sort(key=lambda s: (-s["count"], s["pc"]))
        return spots[:top]

    def _disasm(self, pc: int) -> str:
        insn = self.program[pc]
        next_imm = (
            self.program[pc + 1].imm
            if insn.opcode == OP_LDDW and pc + 1 < len(self.program)
            else 0
        )
        return disassemble_one(insn, next_imm, self.helper_names)

    def annotate(self) -> List[str]:
        """The full disassembly with execution counts in the margin.

        Interpreter profiles annotate exact per-PC counts; JIT profiles
        annotate each instruction with its containing block's entry
        count and mark block leaders.
        """
        lines: List[str] = []
        if not self.program:
            return lines
        if self.engine == "interp":
            counts = self.pc_counts
            marks = {}
        else:
            blocks = self.block_profile()
            leaders = self._leaders()
            counts = [0] * len(self.program)
            current = 0
            for pc in range(len(self.program)):
                if pc in blocks or pc in leaders:
                    current = blocks.get(pc, (0, 0))[0]
                counts[pc] = current
            marks = {leader: "▸" for leader in leaders}
        pc = 0
        while pc < len(self.program):
            mark = marks.get(pc, " ")
            lines.append(f"{mark}{pc:>5} {counts[pc]:>10}  {self._disasm(pc)}")
            pc += 2 if self.program[pc].opcode == OP_LDDW else 1
        return lines

    def snapshot(self) -> Dict[str, object]:
        helpers = {
            self.helper_names.get(helper_id, str(helper_id)): {
                "calls": self.helper_count[helper_id],
                "seconds": self.helper_seconds[helper_id],
            }
            for helper_id in self.helper_count
            if self.helper_count[helper_id]
        }
        return {
            "point": self.point,
            "extension": self.extension,
            "engine": self.engine,
            "tier": self.tier,
            "fallback_reason": self.fallback_reason,
            "runs": self.runs,
            "run_seconds": self.run_seconds,
            "instructions": self.instructions(),
            "hotspots": self.hotspots(),
            "helpers": helpers,
            "memory": {
                "heap_high_watermark": self.heap_hwm,
                "stack_high_watermark": self.stack_hwm,
            },
        }


class Profiler:
    """Aggregates phase timings and per-extension VM profiles.

    One instance belongs to one daemon; the daemon feeds
    :meth:`phase` from its pipeline seams and the VMM creates one
    :class:`VmProfile` per attached code via :meth:`profile_for`.
    """

    def __init__(self, router: str = "", implementation: str = ""):
        self.router = router or "router"
        self.implementation = implementation
        #: phase name -> [invocations, wall seconds]
        self.phases: Dict[str, List[float]] = {}
        self._profiles: Dict[Tuple[str, str], VmProfile] = {}

    # -- feeding ---------------------------------------------------------

    def phase(self, name: str, seconds: float) -> None:
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def profile_for(self, point: str, extension: str, vm=None) -> VmProfile:
        """The (point, extension) profile, created on first use."""
        key = (point, extension)
        profile = self._profiles.get(key)
        if profile is None:
            profile = VmProfile(point, extension, vm)
            self._profiles[key] = profile
        return profile

    # -- views -----------------------------------------------------------

    def profiles(self) -> List[VmProfile]:
        return [self._profiles[key] for key in sorted(self._profiles)]

    def report(self, top: int = 10) -> Dict[str, object]:
        """One JSON-able view: phases + per-extension profiles."""
        phases = {}
        for name in PHASES:
            if name in self.phases:
                count, seconds = self.phases[name]
                phases[name] = {"count": int(count), "seconds": seconds}
        for name, (count, seconds) in self.phases.items():
            if name not in phases:
                phases[name] = {"count": int(count), "seconds": seconds}
        return {
            "router": self.router,
            "implementation": self.implementation,
            "phases": phases,
            "extensions": [
                dict(profile.snapshot(), hotspots=profile.hotspots(top))
                for profile in self.profiles()
            ],
        }

    def render(self, top: int = 10) -> str:
        """Human-readable hotspot report with annotated listings."""
        lines: List[str] = [f"profile: {self.router} ({self.implementation})"]
        if self.phases:
            lines.append("")
            lines.append("phase breakdown (wall clock):")
            total = sum(entry[1] for entry in self.phases.values())
            ordered = [name for name in PHASES if name in self.phases]
            ordered += [name for name in self.phases if name not in PHASES]
            for name in ordered:
                count, seconds = self.phases[name]
                share = (seconds / total * 100.0) if total else 0.0
                lines.append(
                    f"  {name:<22} {seconds * 1000:>9.2f} ms"
                    f"  {share:>5.1f}%  ({int(count)} calls)"
                )
        for profile in self.profiles():
            lines.append("")
            lines.append(
                f"== {profile.point} / {profile.extension}"
                f" ({profile.engine}, {profile.runs} runs,"
                f" {profile.run_seconds * 1000:.2f} ms,"
                f" {profile.instructions()} insns) =="
            )
            if profile.engine == "host":
                continue
            if profile.tier == "native":
                if profile.engine == "native":
                    lines.append("   tier: native (structured compile)")
                else:
                    lines.append(
                        "   tier: native requested, fell back to"
                        f" {profile.engine} ({profile.fallback_reason})"
                    )
            lines.append(
                f"   heap high-watermark {profile.heap_hwm} B,"
                f" stack high-watermark {profile.stack_hwm} B"
            )
            unit = "x" if profile.engine == "interp" else "insns"
            for spot in profile.hotspots(top):
                entries = (
                    f" ({spot['entries']} entries)" if "entries" in spot else ""
                )
                lines.append(
                    f"   pc {spot['pc']:>4}  {spot['count']:>10} {unit}"
                    f"{entries}  {spot['insn']}"
                )
            helpers = sorted(
                (
                    (profile.helper_seconds[hid], profile.helper_count[hid], hid)
                    for hid in profile.helper_count
                    if profile.helper_count[hid]
                ),
                reverse=True,
            )
            for seconds, calls, helper_id in helpers[:top]:
                name = profile.helper_names.get(helper_id, str(helper_id))
                lines.append(
                    f"   helper {name:<20} {seconds * 1000:>8.2f} ms"
                    f"  ({calls} calls)"
                )
        return "\n".join(lines)

    def annotated_listing(self, point: str, extension: str) -> str:
        """Full annotated disassembly for one attached code."""
        profile = self._profiles.get((point, extension))
        if profile is None:
            return f"no profile for {point}/{extension}"
        header = (
            f"{profile.point}/{profile.extension} ({profile.engine}):"
            f" count = "
            + (
                "exact per-pc executions"
                if profile.engine == "interp"
                else "containing block's entry count (▸ marks leaders)"
            )
        )
        return "\n".join([header] + profile.annotate())

    # -- collapsed-stack export ------------------------------------------

    def collapsed(self, weights: str = "instructions") -> List[str]:
        """Collapsed-stack lines for speedscope / flamegraph.pl.

        ``instructions`` (default): one line per executed basic block,
        ``router;point;extension;pc_<leader> <instructions>``.
        ``time``: phase wall clock in microseconds with per-extension
        children; each phase line carries its *exclusive* time so stack
        totals do not double count.
        """
        if weights not in ("instructions", "time"):
            raise ValueError(f"bad weights {weights!r}")
        lines: List[str] = []
        router = self.router
        if weights == "instructions":
            for profile in self.profiles():
                for leader, (_entries, insns) in sorted(
                    profile.block_profile().items()
                ):
                    if insns:
                        lines.append(
                            f"{router};{profile.point};{profile.extension};"
                            f"pc_{leader} {insns}"
                        )
            return lines
        nested: Dict[str, float] = {}
        for profile in self.profiles():
            micros = int(profile.run_seconds * 1e6)
            if micros:
                lines.append(
                    f"{router};{profile.point};{profile.extension} {micros}"
                )
            nested[profile.point] = (
                nested.get(profile.point, 0.0) + profile.run_seconds
            )
        for name, (_count, seconds) in self.phases.items():
            exclusive = seconds - nested.get(name, 0.0)
            micros = int(max(exclusive, 0.0) * 1e6)
            if micros:
                lines.append(f"{router};{name} {micros}")
        return lines

    def export_collapsed(self, path: str, weights: str = "instructions") -> int:
        """Write the collapsed-stack file; returns the line count."""
        lines = self.collapsed(weights)
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)
