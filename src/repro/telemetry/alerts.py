"""Declarative alert rules evaluated against a metric time-series.

A rule watches one metric family through a **signal** — its current
``value`` (counters/gauges, summed across matching series), its
per-second ``rate`` between consecutive samples, a histogram quantile
(``p50``/``p95``/``p99`` over the cumulative distribution), or
``absent`` (the family has no matching series at all) — and fires when
the condition holds, optionally only after holding *continuously* for
``for_seconds`` (sustain).  The compact expression grammar mirrors how
the rules read aloud:

``[warning:|critical:] <family>[{label=value,...}] [<signal>] <op> <bound> [for <N>s]``
``[warning:|critical:] <family>[{label=value,...}] absent [for <N>s]``

Examples::

    xbgp_quarantine_transitions > 0
    warning: xbgp_extension_executions rate < 100 for 10s
    xbgp_extension_run_seconds p95 > 0.5
    xbgp_replay_done_ratio absent for 5s
    xbgp_extension_errors{point=BGP_INBOUND_FILTER} > 0

Severity defaults to ``critical`` — a firing critical rule turns the
exporter's ``/health`` into a 503 and makes ``xbgp bench``'s alert
gate exit non-zero, so an unlabeled rule fails safe.

:class:`AlertEngine` holds the rule set plus per-rule state
(ok → pending → firing), consumes samples incrementally via
:meth:`~AlertEngine.observe` (or a whole recorded series via
:meth:`~AlertEngine.evaluate`), and emits schema'd ``alert_fire`` /
``alert_resolve`` events into an :class:`~repro.telemetry.events
.EventLog` on state transitions.  ``rate`` conditions need two samples;
the first sample of a series can therefore never fire a rate rule.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import EventLog
from .timeseries import counter_total, histogram_quantiles

__all__ = [
    "ALERT_SEVERITIES",
    "ALERT_SIGNALS",
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "load_rules",
    "parse_rule",
]

ALERT_SEVERITIES = ("warning", "critical")

ALERT_SIGNALS = ("value", "rate", "p50", "p95", "p99", "absent")

_OPS = {
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_RULE_RE = re.compile(
    r"""^
    (?:(?P<severity>warning|critical)\s*:\s*)?
    (?P<family>[A-Za-z_:][A-Za-z0-9_:]*)
    (?:\{(?P<selector>[^}]*)\})?
    \s*
    (?:
        (?P<absent>absent)
        |
        (?:(?P<signal>value|rate|p50|p95|p99)\s+)?
        (?P<op>>=|<=|==|!=|>|<)\s*
        (?P<bound>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    )
    (?:\s+for\s+(?P<sustain>\d+(?:\.\d+)?)s?)?
    $""",
    re.VERBOSE,
)


class AlertRuleError(ValueError):
    """A rule expression does not parse or is semantically invalid."""


class AlertRule:
    """One parsed rule (see module docstring for the grammar)."""

    __slots__ = (
        "name",
        "family",
        "selector",
        "signal",
        "op",
        "bound",
        "for_seconds",
        "severity",
    )

    def __init__(
        self,
        family: str,
        signal: str = "value",
        op: str = ">",
        bound: float = 0.0,
        *,
        selector: Optional[Dict[str, str]] = None,
        for_seconds: float = 0.0,
        severity: str = "critical",
        name: Optional[str] = None,
    ) -> None:
        if signal not in ALERT_SIGNALS:
            raise AlertRuleError(f"unknown signal {signal!r}")
        if signal != "absent" and op not in _OPS:
            raise AlertRuleError(f"unknown operator {op!r}")
        if severity not in ALERT_SEVERITIES:
            raise AlertRuleError(f"unknown severity {severity!r}")
        if for_seconds < 0:
            raise AlertRuleError("for_seconds must be >= 0")
        self.family = family
        self.selector = dict(selector or {})
        self.signal = signal
        self.op = op
        self.bound = float(bound)
        self.for_seconds = float(for_seconds)
        self.severity = severity
        self.name = name if name else self.expression()

    def expression(self) -> str:
        """The canonical expression string for this rule."""
        selector = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(self.selector.items())) + "}"
            if self.selector
            else ""
        )
        if self.signal == "absent":
            condition = "absent"
        else:
            signal = "" if self.signal == "value" else f"{self.signal} "
            condition = f"{signal}{self.op} {self.bound:g}"
        sustain = f" for {self.for_seconds:g}s" if self.for_seconds else ""
        return f"{self.severity}: {self.family}{selector} {condition}{sustain}"

    # -- evaluation ------------------------------------------------------

    def measure(
        self,
        sample: Dict[str, object],
        prev_sample: Optional[Dict[str, object]] = None,
    ) -> Optional[float]:
        """The signal's value at ``sample`` (None = not measurable)."""
        if self.signal == "absent":
            present = counter_total(sample, self.family, self.selector)
            if present is None:
                summary = None
                try:
                    summary = histogram_quantiles(
                        sample, self.family, (), self.selector
                    )
                except ValueError:
                    summary = None
                present = summary["count"] if summary else None
            return 0.0 if present is not None else None
        if self.signal == "value":
            return counter_total(sample, self.family, self.selector)
        if self.signal == "rate":
            if prev_sample is None:
                return None
            now = counter_total(sample, self.family, self.selector)
            before = counter_total(prev_sample, self.family, self.selector)
            if now is None or before is None:
                return None
            dt = float(sample["ts"]) - float(prev_sample["ts"])
            if dt <= 0:
                return None
            return max(0.0, (now - before) / dt)
        q = {"p50": 0.5, "p95": 0.95, "p99": 0.99}[self.signal]
        summary = histogram_quantiles(sample, self.family, (q,), self.selector)
        if summary is None or summary["count"] <= 0:
            return None
        return summary[f"p{int(round(q * 100))}"]

    def breached(
        self,
        sample: Dict[str, object],
        prev_sample: Optional[Dict[str, object]] = None,
    ) -> Tuple[bool, Optional[float]]:
        """``(condition holds, measured value)`` at one sample."""
        value = self.measure(sample, prev_sample)
        if self.signal == "absent":
            return value is None, value
        if value is None:
            return False, None
        return _OPS[self.op](value, self.bound), value


def parse_rule(expression: str) -> AlertRule:
    """Parse one rule expression (see module docstring)."""
    text = expression.strip()
    match = _RULE_RE.match(text)
    if not match:
        raise AlertRuleError(f"cannot parse alert rule: {expression!r}")
    selector: Dict[str, str] = {}
    raw_selector = match.group("selector")
    if raw_selector:
        for pair in raw_selector.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise AlertRuleError(
                    f"bad selector {pair!r} in {expression!r} (want label=value)"
                )
            key, value = pair.split("=", 1)
            selector[key.strip()] = value.strip().strip('"')
    if match.group("absent"):
        signal, op, bound = "absent", ">", 0.0
    else:
        signal = match.group("signal") or "value"
        op = match.group("op")
        bound = float(match.group("bound"))
    return AlertRule(
        match.group("family"),
        signal,
        op,
        bound,
        selector=selector,
        for_seconds=float(match.group("sustain") or 0.0),
        severity=match.group("severity") or "critical",
    )


def load_rules(path: str) -> List[AlertRule]:
    """Load rules from a file: one expression per line, ``#`` comments."""
    rules: List[AlertRule] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rules.append(parse_rule(line))
            except AlertRuleError as exc:
                raise AlertRuleError(f"{path}:{line_number}: {exc}")
    return rules


class AlertEngine:
    """Rule set + per-rule state machine (ok → pending → firing)."""

    def __init__(
        self,
        rules: Iterable[AlertRule],
        events: Optional[EventLog] = None,
    ) -> None:
        self.rules: List[AlertRule] = list(rules)
        names = [rule.name for rule in self.rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise AlertRuleError(f"duplicate rule name(s): {sorted(duplicates)}")
        self.events = events
        self._prev_sample: Optional[Dict[str, object]] = None
        #: rule name -> {"state", "pending_since", "fired_at", "value", "fires"}
        self._state: Dict[str, Dict[str, object]] = {
            rule.name: {
                "state": "ok",
                "pending_since": None,
                "fired_at": None,
                "value": None,
                "fires": 0,
            }
            for rule in self.rules
        }

    # -- intake ----------------------------------------------------------

    def observe(self, sample: Dict[str, object]) -> List[Dict[str, object]]:
        """Fold one sample in; returns the transition events (if any)."""
        transitions: List[Dict[str, object]] = []
        ts = float(sample["ts"])
        for rule in self.rules:
            state = self._state[rule.name]
            breached, value = rule.breached(sample, self._prev_sample)
            state["value"] = value
            if breached:
                if state["state"] == "ok":
                    state["state"] = "pending"
                    state["pending_since"] = ts
                if (
                    state["state"] == "pending"
                    and ts - float(state["pending_since"]) >= rule.for_seconds
                ):
                    state["state"] = "firing"
                    state["fired_at"] = ts
                    state["fires"] = int(state["fires"]) + 1
                    transitions.append(self._emit_fire(rule, ts, value))
            else:
                if state["state"] == "firing":
                    transitions.append(self._emit_resolve(rule, ts))
                state["state"] = "ok"
                state["pending_since"] = None
        self._prev_sample = sample
        return transitions

    def evaluate(
        self, samples: Sequence[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Replay a whole series; returns all transition events."""
        transitions: List[Dict[str, object]] = []
        for sample in samples:
            transitions.extend(self.observe(sample))
        return transitions

    def _emit_fire(
        self, rule: AlertRule, ts: float, value: Optional[float]
    ) -> Dict[str, object]:
        event = {
            "event": "alert_fire",
            "ts": ts,
            "rule": rule.name,
            "severity": rule.severity,
            "value": value,
        }
        if self.events is not None:
            return self.events.append(dict(event))
        return event

    def _emit_resolve(self, rule: AlertRule, ts: float) -> Dict[str, object]:
        event = {
            "event": "alert_resolve",
            "ts": ts,
            "rule": rule.name,
            "severity": rule.severity,
        }
        if self.events is not None:
            return self.events.append(dict(event))
        return event

    # -- inspection ------------------------------------------------------

    def firing(self) -> List[Dict[str, object]]:
        """Rows for every currently firing rule."""
        return [row for row in self.snapshot()["rules"] if row["state"] == "firing"]

    def has_critical(self) -> bool:
        """True while any critical rule is firing (drives /health 503)."""
        return any(
            self._state[rule.name]["state"] == "firing"
            and rule.severity == "critical"
            for rule in self.rules
        )

    def ever_fired(self, severity: Optional[str] = None) -> List[str]:
        """Names of rules that fired at least once (the CI exit gate)."""
        return [
            rule.name
            for rule in self.rules
            if int(self._state[rule.name]["fires"]) > 0
            and (severity is None or rule.severity == severity)
        ]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able engine state (the ``/alerts`` endpoint body)."""
        rows = []
        for rule in self.rules:
            state = self._state[rule.name]
            rows.append(
                {
                    "rule": rule.name,
                    "family": rule.family,
                    "signal": rule.signal,
                    "severity": rule.severity,
                    "state": state["state"],
                    "value": state["value"],
                    "fires": state["fires"],
                    "fired_at": state["fired_at"],
                }
            )
        firing = [row for row in rows if row["state"] == "firing"]
        return {
            "rules": rows,
            "firing": len(firing),
            "critical_firing": self.has_critical(),
        }
