"""Structured execution traces: a bounded ring of VMM events.

Every interesting moment of an insertion-point invocation becomes one
event dict: extension ``enter``/``exit``, ``next()`` delegation,
``fallback`` to the native function, filter ``verdict``s and
quarantine/probation transitions.  The ring is bounded (old events are
evicted, eviction is counted) so a long-lived daemon can keep tracing
without growing; ``export_jsonl`` dumps the surviving window for
offline analysis.
"""

from __future__ import annotations

import io
import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Union

__all__ = ["TraceRing", "DEFAULT_TRACE_CAPACITY"]

DEFAULT_TRACE_CAPACITY = 4096


class TraceRing:
    """Fixed-capacity ring buffer of event dicts."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY, timestamps: bool = False):
        """``timestamps=True`` stamps every event (``record`` and
        ``record_fast`` alike) with ``time.monotonic()`` — monotonic so
        inter-event deltas survive wall-clock adjustments; the stamps
        ride along into :meth:`export_jsonl`."""
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self.timestamps = timestamps
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0

    # -- recording -------------------------------------------------------

    def record(
        self,
        kind: str,
        point: Optional[str] = None,
        extension: Optional[str] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Append one event; returns it (callers may enrich in place)."""
        self._seq += 1
        event: Dict[str, object] = {"seq": self._seq, "kind": kind}
        if point is not None:
            event["point"] = point
        if extension is not None:
            event["extension"] = extension
        if self.timestamps:
            event["ts"] = time.monotonic()
        if fields:
            event.update(fields)
        self._events.append(event)
        return event

    def record_fast(
        self, kind: str, point: str, extension: str
    ) -> Dict[str, object]:
        """Positional :meth:`record` for field-free hot-path events.

        Produces exactly the event ``record(kind, point, extension)``
        would, minus the keyword-argument machinery — the VMM emits a
        few of these per route (``enter``, ``next``, ``skip``), which
        made the generic form measurable on update replay.
        """
        self._seq = seq = self._seq + 1
        event: Dict[str, object] = {
            "seq": seq,
            "kind": kind,
            "point": point,
            "extension": extension,
        }
        if self.timestamps:
            event["ts"] = time.monotonic()
        self._events.append(event)
        return event

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        return self._seq

    @property
    def evicted(self) -> int:
        return self._seq - len(self._events)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, object]]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event["kind"] == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "buffered": len(self._events),
            "recorded": self._seq,
            "evicted": self.evicted,
        }

    # -- export -----------------------------------------------------------

    def export_jsonl(self, destination: Union[str, io.TextIOBase]) -> int:
        """Write buffered events as JSON Lines; returns the event count."""
        events = list(self._events)
        if isinstance(destination, str):
            with open(destination, "w") as handle:
                for event in events:
                    handle.write(json.dumps(event) + "\n")
        else:
            for event in events:
                destination.write(json.dumps(event) + "\n")
        return len(events)
