"""Structured lifecycle event log (JSON Lines).

The metrics registry answers "how much"; this log answers "what
happened, when".  Every event is one flat JSON object with a pinned
schema: an ``event`` type from :data:`EVENT_TYPES`, a wall-clock ``ts``,
a monotonically increasing ``seq``, the type's required fields, and any
extra context the emitter wants to attach.  Event types cover the
lifecycle moments the tentpole subsystems emit:

* ``replay_start`` / ``replay_finish`` — a (sharded) replay run;
* ``shard_start`` / ``shard_progress`` / ``shard_finish`` — worker
  heartbeats, the data behind live progress/ETA;
* ``batch_flush``     — a :class:`~repro.scale.BatchProcessor` flush;
* ``quarantine``      — a circuit-breaker transition;
* ``convergence`` / ``oscillation`` — signals from the provenance
  tracker's convergence detector.

:class:`EventLog` buffers a bounded ring (old events evicted, eviction
counted) and optionally streams every event to a JSONL file as it is
emitted, so a crash loses nothing already written.  ``xbgp events``
tails, filters, validates and re-renders these files.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_EVENT_CAPACITY",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventLog",
    "EventSchemaError",
    "emit_convergence_events",
    "filter_events",
    "read_events",
    "render_event",
    "rotated_paths",
    "validate_event",
    "validate_jsonl",
]

EVENT_SCHEMA_VERSION = 1

DEFAULT_EVENT_CAPACITY = 4096

#: Event type -> required fields (beyond ``event``/``ts``/``seq``).
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    "replay_start": ("shards", "routes"),
    "replay_finish": ("shards", "routes", "wall_seconds"),
    "shard_start": ("shard", "routes"),
    "shard_progress": ("shard", "routes_done", "routes"),
    "shard_finish": ("shard", "routes", "replay_seconds"),
    "batch_flush": ("peer", "updates"),
    "quarantine": ("point", "extension", "from_state", "to_state"),
    "convergence": ("router", "prefixes", "time_to_quiescence"),
    "oscillation": ("router", "prefix", "flaps"),
    "alert_fire": ("rule", "severity", "value"),
    "alert_resolve": ("rule",),
}


class EventSchemaError(ValueError):
    """An event does not match the pinned schema."""


def validate_event(event: object) -> Dict[str, object]:
    """Check one event against the schema; returns it on success."""
    if not isinstance(event, dict):
        raise EventSchemaError(f"event must be an object, got {type(event).__name__}")
    kind = event.get("event")
    if kind not in EVENT_TYPES:
        raise EventSchemaError(f"unknown event type {kind!r}")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise EventSchemaError(f"{kind}: 'ts' must be a number, got {ts!r}")
    missing = [field for field in EVENT_TYPES[kind] if field not in event]
    if missing:
        raise EventSchemaError(f"{kind}: missing required field(s) {missing}")
    return event


class EventLog:
    """Bounded event ring with optional write-through JSONL file.

    ``path=None`` keeps events in memory only (the ``/events`` endpoint
    ring); with a path, every event is appended to the file as emitted
    and flushed, so tailers see it immediately.

    ``max_bytes`` caps the write-through file for long-running serves:
    before a write would push the file past the cap, the current file
    rotates to ``<path>.1`` (replacing any previous rotation) and a
    fresh file starts, so disk use is bounded by ~2×``max_bytes`` while
    the most recent events are always on disk.  ``0`` disables
    rotation (the default — short bench runs keep one file).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        clock=time.time,
        max_bytes: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("event capacity must be >= 1")
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.path = path
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.rotations = 0
        self._clock = clock
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._written_bytes = 0
        self._handle = open(path, "w") if path else None

    # -- recording -------------------------------------------------------

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Build, validate, buffer (and stream) one event."""
        record: Dict[str, object] = {"event": event, "ts": self._clock()}
        record.update(fields)
        return self.append(record)

    def append(self, event: Dict[str, object]) -> Dict[str, object]:
        """Record a pre-built event (e.g. one shipped from a worker).

        Stamps ``seq`` here — sequence numbers are a property of this
        log, not of the emitting process — and ``ts`` if absent.
        """
        if "ts" not in event:
            event = {**event, "ts": self._clock()}
        validate_event(event)
        self._seq += 1
        event["seq"] = self._seq
        self._ring.append(event)
        if self._handle is not None:
            line = json.dumps(event) + "\n"
            if (
                self.max_bytes
                and self._written_bytes
                and self._written_bytes + len(line) > self.max_bytes
            ):
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._written_bytes += len(line)
        return event

    def _rotate(self) -> None:
        """Roll the write-through file to ``<path>.1`` and start fresh."""
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "w")
        self._written_bytes = 0
        self.rotations += 1

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        return self._seq

    @property
    def evicted(self) -> int:
        return self._seq - len(self._ring)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event["event"] == kind]

    def tail(self, count: int) -> List[Dict[str, object]]:
        if count <= 0:
            return []
        return list(self._ring)[-count:]

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "buffered": len(self._ring),
            "recorded": self._seq,
            "evicted": self.evicted,
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- file-side tooling (the ``xbgp events`` surface) ----------------------


def rotated_paths(path: str) -> List[str]:
    """The on-disk file set for a (possibly rotated) event log.

    Returns ``[path.1, path]`` when a rotation sibling exists (oldest
    first, so concatenating preserves event order), else ``[path]``.
    """
    sibling = path + ".1"
    if os.path.exists(sibling):
        return [sibling, path]
    return [path]


def read_events(path: str) -> List[Dict[str, object]]:
    """Load and validate a JSONL event log; raises on the first bad line."""
    events = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventSchemaError(f"{path}:{line_number}: not JSON ({exc})")
            try:
                validate_event(event)
            except EventSchemaError as exc:
                raise EventSchemaError(f"{path}:{line_number}: {exc}")
            events.append(event)
    return events


def validate_jsonl(path: str) -> Tuple[int, List[str]]:
    """Validate every line; returns ``(valid_count, error_messages)``."""
    valid = 0
    errors: List[str] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                validate_event(json.loads(line))
                valid += 1
            except (json.JSONDecodeError, EventSchemaError) as exc:
                errors.append(f"line {line_number}: {exc}")
    return valid, errors


def filter_events(
    events: Iterable[Dict[str, object]],
    kinds: Optional[Iterable[str]] = None,
    shard: Optional[int] = None,
) -> List[Dict[str, object]]:
    wanted = set(kinds) if kinds is not None else None
    out = []
    for event in events:
        if wanted is not None and event.get("event") not in wanted:
            continue
        if shard is not None and event.get("shard") != shard:
            continue
        out.append(event)
    return out


def render_event(event: Dict[str, object]) -> str:
    """One human-readable line per event (``xbgp events`` text mode)."""
    ts = event.get("ts", 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(float(ts)))
    kind = str(event.get("event", "?"))
    skip = {"event", "ts", "seq"}
    detail = " ".join(
        f"{key}={event[key]}" for key in event if key not in skip
    )
    return f"{clock} {kind:<14} {detail}".rstrip()


def emit_convergence_events(log: EventLog, report: Dict[str, object]) -> int:
    """Convert a provenance convergence report into schema'd events.

    Accepts a per-router report (:meth:`ProvenanceTracker
    .convergence_report`) and emits one ``convergence`` summary plus one
    ``oscillation`` event per flagged prefix.  Returns the event count.
    """
    router = str(report.get("router", "?"))
    flaps: Dict[str, int] = dict(report.get("flaps", {}))
    emitted = 1
    log.emit(
        "convergence",
        router=router,
        prefixes=len(flaps),
        time_to_quiescence=report.get(
            "time_to_quiescence", report.get("time_of_last_change", 0.0)
        ),
        total_flaps=sum(flaps.values()),
    )
    for prefix in report.get("oscillating", ()):
        log.emit(
            "oscillation",
            router=router,
            prefix=str(prefix),
            flaps=flaps.get(str(prefix), 0),
        )
        emitted += 1
    return emitted
