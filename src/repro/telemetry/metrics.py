"""Metric primitives: counters, gauges, log-bucketed histograms.

The registry follows the Prometheus data model — a *family* (name,
type, help text) owns one child per label set — but stays dependency
free: children are plain ``__slots__`` objects cheap enough to update
on the VMM hot path.  Callers cache the child returned by
:meth:`MetricsRegistry.counter` / ``gauge`` / ``histogram`` once and
call ``inc``/``set``/``observe`` on it directly, so steady-state cost
is one attribute update per event.

Latency histograms are log-bucketed (geometric boundaries, default
1 µs · 2^i), the conventional shape for values spanning several orders
of magnitude; quantiles are estimated from the cumulative bucket walk.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
]

LabelKey = Tuple[Tuple[str, str], ...]


def log_buckets(start: float = 1e-6, factor: float = 2.0, count: int = 24) -> List[float]:
    """Geometric bucket boundaries ``start * factor**i`` (i < count)."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    boundaries = []
    value = start
    for _ in range(count):
        boundaries.append(value)
        value *= factor
    return boundaries


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down, or track a live callable."""

    __slots__ = ("value", "_fn")

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self._fn = None
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Collect the gauge from ``fn`` at read time (live gauges)."""
        self._fn = fn

    def get(self) -> float:
        return float(self._fn()) if self._fn is not None else self.value


class Histogram:
    """Log-bucketed distribution (Prometheus cumulative ``le`` shape).

    ``counts[i]`` holds observations ``<= boundaries[i]``  (non-
    cumulative storage; rendering accumulates); ``counts[-1]`` is the
    +Inf overflow bucket.
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, boundaries: Optional[Sequence[float]] = None) -> None:
        bounds = list(boundaries) if boundaries is not None else log_buckets()
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return float("inf")
        return float("inf")

    def summary(self) -> Dict[str, float]:
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _Family:
    """One named metric plus its children keyed by label values."""

    __slots__ = ("name", "kind", "help", "label_names", "children", "buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = list(buckets) if buckets is not None else None
        self.children: Dict[Tuple[str, ...], object] = {}

    def child(self, label_values: Tuple[str, ...]):
        existing = self.children.get(label_values)
        if existing is not None:
            return existing
        if self.kind == "counter":
            made: object = Counter()
        elif self.kind == "gauge":
            made = Gauge()
        else:
            made = Histogram(self.buckets)
        self.children[label_values] = made
        return made


class MetricsRegistry:
    """Named families of counters/gauges/histograms.

    The first registration of a name pins its type, help text and label
    names; later lookups must agree (mismatches raise ``ValueError``,
    mirroring Prometheus client semantics).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- registration / lookup ------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Dict[str, str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Tuple[_Family, Tuple[str, ...]]:
        label_names = tuple(sorted(labels))
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, label_names, buckets)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if family.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} labels {family.label_names} != {label_names}"
                )
        return family, tuple(str(labels[key]) for key in label_names)

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        family, values = self._family(name, "counter", help_text, labels)
        return family.child(values)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        family, values = self._family(name, "gauge", help_text, labels)
        return family.child(values)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        family, values = self._family(name, "histogram", help_text, labels, buckets)
        return family.child(values)  # type: ignore[return-value]

    # -- export ----------------------------------------------------------

    def families(self) -> List[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, object]:
        """Full-fidelity serializable capture (see
        :mod:`repro.telemetry.aggregate` for the merge semantics)."""
        from .aggregate import snapshot_registry

        return snapshot_registry(self)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        from .aggregate import registry_from_snapshot

        return registry_from_snapshot(snapshot)

    def to_json(self) -> Dict[str, object]:
        """JSON-able view: one entry per family, one row per label set."""
        out: Dict[str, object] = {}
        for family in self.families():
            series = []
            for values in sorted(family.children):
                child = family.children[values]
                labels = dict(zip(family.label_names, values))
                if family.kind == "counter":
                    series.append({"labels": labels, "value": child.value})
                elif family.kind == "gauge":
                    series.append({"labels": labels, "value": child.get()})
                else:
                    series.append({"labels": labels, **child.summary()})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # Exposition format: HELP text escapes backslash and newline only
    # (double quotes are legal there, unlike in label values).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (v0.0.4) for every family."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values in sorted(family.children):
            child = family.children[values]
            labels = _labels_text(family.label_names, values)
            if family.kind == "counter":
                lines.append(f"{family.name}_total{labels} {child.value}")
            elif family.kind == "gauge":
                lines.append(f"{family.name}{labels} {child.get()}")
            else:
                cumulative = 0
                for boundary, count in zip(child.boundaries, child.counts):
                    cumulative += count
                    le = _labels_text(
                        family.label_names, values, f'le="{boundary:.9g}"'
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                le = _labels_text(family.label_names, values, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{le} {child.count}")
                lines.append(f"{family.name}_sum{labels} {child.sum:.9g}")
                lines.append(f"{family.name}_count{labels} {child.count}")
    return "\n".join(lines) + "\n"
