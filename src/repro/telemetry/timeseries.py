"""Metric time-series: periodic registry snapshots, derived series, merge.

The cross-process plane (:mod:`repro.telemetry.aggregate`) made one
registry portable at one instant; this module adds the *temporal* axis.
A :class:`TimeSeries` is a bounded ring of **samples**, each a full-
fidelity registry snapshot (the same versioned format ``aggregate``
merges) stamped with a wall-clock ``ts`` and a per-series ``seq``:

``{"timeseries_version": 1, "ts": ..., "seq": ..., "labels": {...},
"registry": <registry snapshot>}``

:class:`TimeSeriesSampler` drives one: point it at any
:class:`~repro.telemetry.metrics.MetricsRegistry` and call
:meth:`~TimeSeriesSampler.sample` (or the time-gated
:meth:`~TimeSeriesSampler.maybe_sample`) at whatever cadence the host
loop has — per heartbeat, per N routes, per scrape.  Optional
write-through JSONL mirrors every sample to disk as it is taken, so a
crash loses nothing already written (the same discipline as
:class:`~repro.telemetry.events.EventLog`).

Derived series are computed *from* samples, never stored: counter
rates between consecutive samples, per-window histogram quantiles from
bucket-count deltas, gauge last-value.  That keeps a sample a pure
snapshot — mergeable, diffable, replayable.

:func:`merge_timeseries` folds per-shard series into one shard-labeled
series the same way ``aggregate`` merges registries: at the union of
sample timestamps, each shard contributes its latest sample at-or-
before that instant (last-carried-forward), stamped ``shard=<i>``.
The final merged sample therefore merges every shard's final sample,
so merged counter totals equal a sequential replay's — the same
partition-invariance law the registry merge obeys.

:func:`diff_samples` / :func:`render_diff` power ``xbgp stats --diff``:
new/removed families, counter deltas, gauge shifts and histogram
p50/p95 shifts between any two registry snapshots, stats documents or
recorded time-series files.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .aggregate import merge_into, snapshot_registry
from .metrics import MetricsRegistry

__all__ = [
    "DEFAULT_TIMESERIES_CAPACITY",
    "TIMESERIES_VERSION",
    "TimeSeries",
    "TimeSeriesSampler",
    "counter_rates",
    "counter_total",
    "diff_samples",
    "gauge_value",
    "histogram_quantiles",
    "histogram_windows",
    "load_snapshot_source",
    "make_sample",
    "merge_timeseries",
    "read_timeseries",
    "render_diff",
    "validate_sample",
]

TIMESERIES_VERSION = 1

DEFAULT_TIMESERIES_CAPACITY = 512


def make_sample(
    registry_snapshot: Dict[str, object],
    ts: float,
    seq: int = 0,
    labels: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Build one schema'd sample around a registry snapshot."""
    sample: Dict[str, object] = {
        "timeseries_version": TIMESERIES_VERSION,
        "ts": float(ts),
        "seq": int(seq),
        "registry": registry_snapshot,
    }
    if labels:
        sample["labels"] = {str(k): str(v) for k, v in labels.items()}
    return sample


def validate_sample(sample: object) -> Dict[str, object]:
    """Check one sample's schema; returns it on success."""
    if not isinstance(sample, dict):
        raise ValueError(f"sample must be an object, got {type(sample).__name__}")
    version = sample.get("timeseries_version")
    if version != TIMESERIES_VERSION:
        raise ValueError(
            f"timeseries_version {version!r}, expected {TIMESERIES_VERSION}"
        )
    ts = sample.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        raise ValueError(f"'ts' must be a number, got {ts!r}")
    registry = sample.get("registry")
    if not isinstance(registry, dict) or "families" not in registry:
        raise ValueError("'registry' must be a registry snapshot")
    return sample


class TimeSeries:
    """Bounded ring of registry samples (see module docstring)."""

    def __init__(
        self,
        capacity: int = DEFAULT_TIMESERIES_CAPACITY,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("time-series capacity must be >= 1")
        self.capacity = capacity
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0

    def append(
        self,
        registry_snapshot: Dict[str, object],
        ts: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        """Record one snapshot; stamps ``seq`` and the series labels."""
        self._seq += 1
        merged_labels = dict(self.labels)
        if labels:
            merged_labels.update({str(k): str(v) for k, v in labels.items()})
        sample = make_sample(
            registry_snapshot, ts, self._seq, merged_labels or None
        )
        self._ring.append(sample)
        return sample

    def append_sample(self, sample: Dict[str, object]) -> Dict[str, object]:
        """Record a pre-built sample (e.g. one shipped from a worker)."""
        validate_sample(sample)
        self._seq += 1
        sample = {**sample, "seq": self._seq}
        self._ring.append(sample)
        return sample

    def samples(self) -> List[Dict[str, object]]:
        return list(self._ring)

    def last(self) -> Optional[Dict[str, object]]:
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        return self._seq

    @property
    def evicted(self) -> int:
        return self._seq - len(self._ring)

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "buffered": len(self._ring),
            "recorded": self._seq,
            "evicted": self.evicted,
        }


class TimeSeriesSampler:
    """Snapshot a registry into a :class:`TimeSeries` on demand.

    ``every_seconds`` makes :meth:`maybe_sample` a cheap no-op between
    cadence boundaries, so the caller can invoke it from a hot loop
    (every heartbeat, every batch) without thinking about timing.
    ``path`` mirrors every sample to a JSONL file as it is taken.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        series: Optional[TimeSeries] = None,
        *,
        every_seconds: float = 0.0,
        path: Optional[str] = None,
        capacity: int = DEFAULT_TIMESERIES_CAPACITY,
        labels: Optional[Dict[str, str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.registry = registry
        self.series = series if series is not None else TimeSeries(
            capacity=capacity, labels=labels
        )
        self.every_seconds = float(every_seconds)
        self._clock = clock
        self._last_sample_at: Optional[float] = None
        self.path = path
        self._handle = open(path, "w") if path else None

    def sample(self) -> Dict[str, object]:
        """Take one sample now, unconditionally."""
        now = self._clock()
        self._last_sample_at = now
        sample = self.series.append(snapshot_registry(self.registry), now)
        if self._handle is not None:
            self._handle.write(json.dumps(sample) + "\n")
            self._handle.flush()
        return sample

    def maybe_sample(self) -> Optional[Dict[str, object]]:
        """Take a sample if ``every_seconds`` has elapsed since the last."""
        if self._last_sample_at is not None:
            if self._clock() - self._last_sample_at < self.every_seconds:
                return None
        return self.sample()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TimeSeriesSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- file I/O --------------------------------------------------------------


def read_timeseries(path: str) -> List[Dict[str, object]]:
    """Load and validate a JSONL time-series file."""
    samples: List[Dict[str, object]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                sample = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not JSON ({exc})")
            try:
                validate_sample(sample)
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: {exc}")
            samples.append(sample)
    return samples


def write_timeseries(samples: Iterable[Dict[str, object]], path: str) -> int:
    """Write samples as JSONL; returns the count written."""
    count = 0
    with open(path, "w") as handle:
        for sample in samples:
            handle.write(json.dumps(sample) + "\n")
            count += 1
    return count


# -- derived series --------------------------------------------------------


def _match_series(
    registry_snapshot: Dict[str, object],
    family: str,
    selector: Optional[Dict[str, str]] = None,
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """Rows of ``family`` whose labels satisfy ``selector``."""
    families = registry_snapshot.get("families", {})
    info = families.get(family)
    if info is None:
        return None, []
    label_names: List[str] = list(info.get("label_names", []))
    rows = []
    for row in info.get("series", []):
        labels = dict(zip(label_names, [str(v) for v in row.get("labels", [])]))
        if selector and any(
            labels.get(key) != str(value) for key, value in selector.items()
        ):
            continue
        rows.append(row)
    return info, rows


def counter_total(
    sample: Dict[str, object],
    family: str,
    selector: Optional[Dict[str, str]] = None,
) -> Optional[float]:
    """Sum of matching counter (or gauge) series at one sample.

    ``None`` when the family is absent or no series matches — the
    caller distinguishes "zero" from "not there" (absence alerts).
    """
    info, rows = _match_series(sample["registry"], family, selector)
    if info is None or not rows:
        return None
    return float(sum(row.get("value", 0) for row in rows))


def gauge_value(
    sample: Dict[str, object],
    family: str,
    selector: Optional[Dict[str, str]] = None,
) -> Optional[float]:
    """Gauge reading at one sample (summed across matching series)."""
    return counter_total(sample, family, selector)


def counter_rates(
    samples: Sequence[Dict[str, object]],
    family: str,
    selector: Optional[Dict[str, str]] = None,
) -> List[Tuple[float, float]]:
    """Per-second rate between consecutive samples: ``[(ts, rate), ...]``.

    Negative deltas (a counter reset — e.g. the exporter swapped from
    the live progress registry to the merged result) clamp to 0.0
    rather than reporting a nonsensical negative rate.
    """
    points: List[Tuple[float, float]] = []
    prev_ts: Optional[float] = None
    prev_value: Optional[float] = None
    for sample in samples:
        value = counter_total(sample, family, selector)
        ts = float(sample["ts"])
        if value is not None and prev_value is not None and prev_ts is not None:
            dt = ts - prev_ts
            if dt > 0:
                points.append((ts, max(0.0, (value - prev_value) / dt)))
        if value is not None:
            prev_ts, prev_value = ts, value
    return points


def _histogram_totals(
    registry_snapshot: Dict[str, object],
    family: str,
    selector: Optional[Dict[str, str]] = None,
) -> Optional[Tuple[List[float], List[float], float, float]]:
    """Matching histogram series summed: (boundaries, counts, sum, count)."""
    info, rows = _match_series(registry_snapshot, family, selector)
    if info is None or info.get("kind") != "histogram" or not rows:
        return None
    boundaries = [float(b) for b in (info.get("buckets") or [])]
    counts = [0.0] * (len(boundaries) + 1)
    total_sum = 0.0
    total_count = 0.0
    for row in rows:
        row_counts = row.get("counts", [])
        if len(row_counts) != len(counts):
            # Bucket layouts differ between series; refuse a lossy sum.
            raise ValueError(
                f"metric {family!r}: histogram series disagree on buckets"
            )
        for index, count in enumerate(row_counts):
            counts[index] += count
        total_sum += float(row.get("sum", 0.0))
        total_count += float(row.get("count", 0))
    return boundaries, counts, total_sum, total_count


def _bucket_quantile(
    boundaries: Sequence[float], counts: Sequence[float], q: float
) -> float:
    """Upper bound of the bucket holding the q-quantile (0 if empty)."""
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank and count:
            if index < len(boundaries):
                return float(boundaries[index])
            return float("inf")
    return float("inf")


def histogram_quantiles(
    sample: Dict[str, object],
    family: str,
    quantiles: Sequence[float] = (0.5, 0.95),
    selector: Optional[Dict[str, str]] = None,
) -> Optional[Dict[str, float]]:
    """Cumulative distribution summary at one sample.

    Returns ``{"count", "sum", "p50", "p95", ...}`` or ``None`` when
    the family is absent / has no matching series.
    """
    totals = _histogram_totals(sample["registry"], family, selector)
    if totals is None:
        return None
    boundaries, counts, total_sum, total_count = totals
    out: Dict[str, float] = {"count": total_count, "sum": total_sum}
    for q in quantiles:
        out[f"p{int(round(q * 100))}"] = _bucket_quantile(boundaries, counts, q)
    return out


def histogram_windows(
    samples: Sequence[Dict[str, object]],
    family: str,
    quantiles: Sequence[float] = (0.5, 0.95),
    selector: Optional[Dict[str, str]] = None,
) -> List[Dict[str, float]]:
    """Per-window quantiles from bucket-count *deltas* between samples.

    One row per consecutive sample pair that saw new observations:
    ``{"ts", "count", "p50", "p95", ...}`` — the distribution of just
    that window, not the whole run.  Counter-reset windows (negative
    deltas) are skipped.
    """
    rows: List[Dict[str, float]] = []
    prev: Optional[Tuple[List[float], List[float], float, float]] = None
    for sample in samples:
        totals = _histogram_totals(sample["registry"], family, selector)
        if totals is None:
            continue
        if prev is not None and totals[0] == prev[0]:
            deltas = [now - before for now, before in zip(totals[1], prev[1])]
            window_count = totals[3] - prev[3]
            if window_count > 0 and all(delta >= 0 for delta in deltas):
                row: Dict[str, float] = {
                    "ts": float(sample["ts"]),
                    "count": window_count,
                }
                for q in quantiles:
                    row[f"p{int(round(q * 100))}"] = _bucket_quantile(
                        totals[0], deltas, q
                    )
                rows.append(row)
        prev = totals
    return rows


# -- the shard merge path --------------------------------------------------


def merge_timeseries(
    shard_series: Sequence[Sequence[Dict[str, object]]],
    shard_labels: bool = True,
    gauge_policy: Optional[Dict[str, str]] = None,
) -> List[Dict[str, object]]:
    """Fold per-shard sample lists into one merged, shard-labeled series.

    At the union of all shard sample timestamps, each shard contributes
    its latest sample at-or-before that instant (last-carried-forward)
    stamped ``shard=<index>``, merged under the same per-kind semantics
    as :func:`~repro.telemetry.aggregate.merge_into`.  The final merged
    sample merges every shard's final sample, so its counter totals
    equal a sequential replay's — partition invariance, extended to the
    temporal axis.
    """
    per_shard: List[List[Dict[str, object]]] = []
    for samples in shard_series:
        ordered = sorted(
            (validate_sample(sample) for sample in samples),
            key=lambda sample: (float(sample["ts"]), int(sample.get("seq", 0))),
        )
        per_shard.append(ordered)
    instants = sorted(
        {
            float(sample["ts"])
            for samples in per_shard
            for sample in samples
        }
    )
    merged: List[Dict[str, object]] = []
    cursors = [0] * len(per_shard)
    latest: List[Optional[Dict[str, object]]] = [None] * len(per_shard)
    for seq, ts in enumerate(instants, 1):
        for index, samples in enumerate(per_shard):
            cursor = cursors[index]
            while cursor < len(samples) and float(samples[cursor]["ts"]) <= ts:
                latest[index] = samples[cursor]
                cursor += 1
            cursors[index] = cursor
        registry = MetricsRegistry()
        for index, sample in enumerate(latest):
            if sample is None:
                continue
            labels = {"shard": str(index)} if shard_labels else None
            merge_into(
                registry,
                sample["registry"],
                labels=labels,
                gauge_policy=gauge_policy,
            )
        merged.append(make_sample(snapshot_registry(registry), ts, seq))
    return merged


# -- run diffing (``xbgp stats --diff``) -----------------------------------


def load_snapshot_source(path: str) -> Dict[str, object]:
    """Load a registry snapshot from any of the formats the CLI writes.

    Accepts: a raw registry snapshot (``xbgp stats --merge`` output), a
    stats document carrying a ``registry`` key (``xbgp stats --format
    json``), a single time-series sample, or a time-series JSONL file
    (the *final* sample's registry is used).
    """
    with open(path) as handle:
        text = handle.read()
    if not text.strip():
        raise ValueError(f"{path}: empty file")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document — try JSONL: the final line is the most
        # recent sample of a recorded time-series.
        lines = [line for line in text.splitlines() if line.strip()]
        try:
            sample = json.loads(lines[-1])
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not JSON ({exc})")
        try:
            return validate_sample(sample)["registry"]  # type: ignore[return-value]
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}")
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if "timeseries_version" in document:
        return validate_sample(document)["registry"]  # type: ignore[return-value]
    if "families" in document:
        return document
    registry = document.get("registry")
    if isinstance(registry, dict) and "families" in registry:
        return registry
    raise ValueError(
        f"{path}: not a registry snapshot, stats document or time-series"
    )


def _snapshot_rows(
    snapshot: Dict[str, object],
) -> Dict[str, Dict[str, object]]:
    """Flatten a snapshot to ``{family: {kind, rows: {labelkey: row}}}``."""
    out: Dict[str, Dict[str, object]] = {}
    for name, info in snapshot.get("families", {}).items():
        label_names = list(info.get("label_names", []))
        rows: Dict[str, Dict[str, object]] = {}
        for row in info.get("series", []):
            labels = dict(
                zip(label_names, [str(v) for v in row.get("labels", [])])
            )
            key = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            rows[key] = row
        out[name] = {
            "kind": info.get("kind"),
            "buckets": info.get("buckets"),
            "rows": rows,
        }
    return out


def diff_samples(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """Structural + numeric diff of two registry snapshots.

    Returns ``{"added_families", "removed_families", "changes"}`` where
    each change row is ``{"family", "labels", "kind", ...}`` with
    before/after/delta for counters and gauges, and count/p50/p95
    shifts for histograms.  Unchanged series are omitted.
    """
    rows_a = _snapshot_rows(before)
    rows_b = _snapshot_rows(after)
    added = sorted(set(rows_b) - set(rows_a))
    removed = sorted(set(rows_a) - set(rows_b))
    changes: List[Dict[str, object]] = []
    for family in sorted(set(rows_a) | set(rows_b)):
        info_a = rows_a.get(family)
        info_b = rows_b.get(family)
        kind = (info_b or info_a)["kind"]
        series_a = info_a["rows"] if info_a else {}
        series_b = info_b["rows"] if info_b else {}
        for key in sorted(set(series_a) | set(series_b)):
            row_a = series_a.get(key)
            row_b = series_b.get(key)
            if kind in ("counter", "gauge"):
                value_a = float(row_a["value"]) if row_a else None
                value_b = float(row_b["value"]) if row_b else None
                if value_a == value_b:
                    continue
                changes.append(
                    {
                        "family": family,
                        "labels": key,
                        "kind": kind,
                        "before": value_a,
                        "after": value_b,
                        "delta": (value_b or 0.0) - (value_a or 0.0),
                    }
                )
            else:
                buckets = (info_b or info_a).get("buckets") or []

                def _summary(row):
                    if row is None:
                        return None
                    counts = row.get("counts", [])
                    return {
                        "count": float(row.get("count", 0)),
                        "p50": _bucket_quantile(buckets, counts, 0.5),
                        "p95": _bucket_quantile(buckets, counts, 0.95),
                    }

                summary_a = _summary(row_a)
                summary_b = _summary(row_b)
                if summary_a == summary_b:
                    continue
                changes.append(
                    {
                        "family": family,
                        "labels": key,
                        "kind": kind,
                        "before": summary_a,
                        "after": summary_b,
                    }
                )
    return {
        "added_families": added,
        "removed_families": removed,
        "changes": changes,
    }


def render_diff(diff: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`diff_samples` output."""
    lines: List[str] = []
    for family in diff["added_families"]:
        lines.append(f"+ family {family} (new)")
    for family in diff["removed_families"]:
        lines.append(f"- family {family} (removed)")
    for change in diff["changes"]:
        where = change["family"]
        if change["labels"]:
            where += "{" + change["labels"] + "}"
        if change["kind"] in ("counter", "gauge"):
            before = change["before"]
            after = change["after"]
            delta = change["delta"]
            sign = "+" if delta >= 0 else ""
            lines.append(
                f"  {where}: {before if before is not None else '∅'}"
                f" -> {after if after is not None else '∅'}"
                f" ({sign}{delta:g})"
            )
        else:
            before = change["before"] or {"count": 0, "p50": 0.0, "p95": 0.0}
            after = change["after"] or {"count": 0, "p50": 0.0, "p95": 0.0}
            lines.append(
                f"  {where}: count {before['count']:g} -> {after['count']:g}"
                f" · p50 {before['p50']:.6g} -> {after['p50']:.6g}"
                f" · p95 {before['p95']:.6g} -> {after['p95']:.6g}"
            )
    if not lines:
        lines.append("no differences")
    return "\n".join(lines)
