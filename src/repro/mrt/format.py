"""MRT (RFC 6396) TABLE_DUMP_V2 reader/writer.

The paper's workload is "IPv4 BGP routes from a recent RIPE RIS
snapshot" — RIS snapshots ship as MRT TABLE_DUMP_V2 files.  We cannot
download one offline, but we implement the format so synthetic tables
round-trip through the real archive encoding: the workload generator
writes an MRT file, the harness reads it back, and any real RIS dump
a user drops in is equally loadable.

Implemented records: PEER_INDEX_TABLE (subtype 1) and RIB_IPV4_UNICAST
(subtype 2) of type 13 (TABLE_DUMP_V2).
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, List, NamedTuple, Sequence, Tuple

from ..bgp.attributes import PathAttribute, decode_attributes, encode_attributes
from ..bgp.prefix import Prefix

__all__ = [
    "MrtError",
    "MrtPeer",
    "RibEntry",
    "MrtRecord",
    "TABLE_DUMP_V2",
    "PEER_INDEX_TABLE",
    "RIB_IPV4_UNICAST",
    "write_table",
    "read_table",
]

TABLE_DUMP_V2 = 13
PEER_INDEX_TABLE = 1
RIB_IPV4_UNICAST = 2

_HEADER = struct.Struct("!IHHI")


class MrtError(ValueError):
    """Malformed MRT content."""


class MrtPeer(NamedTuple):
    """One entry of the PEER_INDEX_TABLE."""

    bgp_id: int
    address: int  # IPv4
    asn: int


class RibEntry(NamedTuple):
    """One (prefix, peer, attributes) RIB row."""

    prefix: Prefix
    peer_index: int
    originated: int
    attributes: Tuple[PathAttribute, ...]


class MrtRecord(NamedTuple):
    timestamp: int
    record_type: int
    subtype: int
    payload: bytes


def _write_record(stream: BinaryIO, record: MrtRecord) -> None:
    stream.write(
        _HEADER.pack(
            record.timestamp, record.record_type, record.subtype, len(record.payload)
        )
    )
    stream.write(record.payload)


def _read_records(stream: BinaryIO) -> Iterator[MrtRecord]:
    while True:
        header = stream.read(_HEADER.size)
        if not header:
            return
        if len(header) < _HEADER.size:
            raise MrtError("truncated MRT header")
        timestamp, record_type, subtype, length = _HEADER.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            raise MrtError("truncated MRT payload")
        yield MrtRecord(timestamp, record_type, subtype, payload)


def _encode_peer_index(collector_id: int, peers: Sequence[MrtPeer]) -> bytes:
    view_name = b""
    out = struct.pack("!IH", collector_id, len(view_name)) + view_name
    out += struct.pack("!H", len(peers))
    for peer in peers:
        # Peer type 0x02: IPv4 address, 4-octet AS.
        out += struct.pack("!BIII", 0x02, peer.bgp_id, peer.address, peer.asn)
    return out


def _decode_peer_index(payload: bytes) -> Tuple[int, List[MrtPeer]]:
    if len(payload) < 6:
        raise MrtError("short PEER_INDEX_TABLE")
    collector_id, name_length = struct.unpack_from("!IH", payload)
    offset = 6 + name_length
    (count,) = struct.unpack_from("!H", payload, offset)
    offset += 2
    peers: List[MrtPeer] = []
    for _ in range(count):
        peer_type = payload[offset]
        offset += 1
        (bgp_id,) = struct.unpack_from("!I", payload, offset)
        offset += 4
        if peer_type & 0x01:  # IPv6 peer address
            raise MrtError("IPv6 peers not supported")
        (address,) = struct.unpack_from("!I", payload, offset)
        offset += 4
        if peer_type & 0x02:
            (asn,) = struct.unpack_from("!I", payload, offset)
            offset += 4
        else:
            (asn,) = struct.unpack_from("!H", payload, offset)
            offset += 2
        peers.append(MrtPeer(bgp_id, address, asn))
    return collector_id, peers


def _encode_rib_entry(sequence: int, entry: RibEntry) -> bytes:
    attrs = encode_attributes(entry.attributes)
    return (
        struct.pack("!I", sequence)
        + entry.prefix.encode()
        + struct.pack("!H", 1)  # one RIB entry per prefix in our dumps
        + struct.pack("!HIH", entry.peer_index, entry.originated, len(attrs))
        + attrs
    )


def _decode_rib(payload: bytes) -> List[RibEntry]:
    (sequence,) = struct.unpack_from("!I", payload)
    prefix, offset = Prefix.decode(payload, 4)
    (count,) = struct.unpack_from("!H", payload, offset)
    offset += 2
    entries: List[RibEntry] = []
    for _ in range(count):
        peer_index, originated, attr_length = struct.unpack_from("!HIH", payload, offset)
        offset += 8
        attrs = decode_attributes(payload[offset : offset + attr_length])
        offset += attr_length
        entries.append(RibEntry(prefix, peer_index, originated, tuple(attrs)))
    return entries


def write_table(
    stream: BinaryIO,
    peers: Sequence[MrtPeer],
    entries: Sequence[RibEntry],
    collector_id: int = 0,
    timestamp: int = 0,
) -> None:
    """Write a TABLE_DUMP_V2 file: peer index then one RIB record per entry."""
    _write_record(
        stream,
        MrtRecord(
            timestamp, TABLE_DUMP_V2, PEER_INDEX_TABLE, _encode_peer_index(collector_id, peers)
        ),
    )
    for sequence, entry in enumerate(entries):
        _write_record(
            stream,
            MrtRecord(
                timestamp, TABLE_DUMP_V2, RIB_IPV4_UNICAST, _encode_rib_entry(sequence, entry)
            ),
        )


def read_table(stream: BinaryIO) -> Tuple[List[MrtPeer], List[RibEntry]]:
    """Read a TABLE_DUMP_V2 file back into peers and RIB entries."""
    peers: List[MrtPeer] = []
    entries: List[RibEntry] = []
    saw_index = False
    for record in _read_records(stream):
        if record.record_type != TABLE_DUMP_V2:
            continue  # tolerate other record types in real dumps
        if record.subtype == PEER_INDEX_TABLE:
            _, peers = _decode_peer_index(record.payload)
            saw_index = True
        elif record.subtype == RIB_IPV4_UNICAST:
            entries.extend(_decode_rib(record.payload))
    if not saw_index:
        raise MrtError("no PEER_INDEX_TABLE record")
    return peers, entries
