"""MRT (RFC 6396) TABLE_DUMP_V2 support for BGP table snapshots."""

from .format import (
    MrtError,
    MrtPeer,
    RibEntry,
    read_table,
    write_table,
)

__all__ = ["MrtError", "MrtPeer", "RibEntry", "read_table", "write_table"]
