"""Synthetic AS-level topology for workload generation.

A three-tier provider hierarchy built with preferential attachment:
a small clique of tier-1 ASes, mid-tier transit ASes homing into them,
and a long tail of stub ASes (the prefix originators).  AS paths seen
from a vantage point are provider chains down to the origin, which
gives the short, heavy-tailed path-length mix of a real RIS table.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["AsTopology"]


class AsTopology:
    """Provider/customer AS graph with vantage-point path synthesis."""

    def __init__(
        self,
        providers: Dict[int, List[int]],
        tier1: List[int],
        stubs: List[int],
    ):
        self._providers = providers
        self.tier1 = list(tier1)
        self.stubs = list(stubs)

    @classmethod
    def generate(
        cls,
        n_ases: int = 600,
        n_tier1: int = 8,
        transit_fraction: float = 0.15,
        seed: int = 20200604,
    ) -> "AsTopology":
        """Build a topology of ``n_ases`` ASes.

        AS numbers start at 3 (1 and 2 stay free for harness routers).
        Preferential attachment makes early transit ASes heavy, giving
        the usual skewed degree distribution.
        """
        if n_ases < n_tier1 + 2:
            raise ValueError("need more ASes than tier-1s")
        rng = random.Random(seed)
        asns = list(range(3, 3 + n_ases))
        tier1 = asns[:n_tier1]
        n_transit = max(1, int(n_ases * transit_fraction))
        transit = asns[n_tier1 : n_tier1 + n_transit]
        stubs = asns[n_tier1 + n_transit :]

        providers: Dict[int, List[int]] = {asn: [] for asn in asns}
        attach_pool: List[int] = list(tier1)  # weighted by repetition
        for asn in transit:
            count = rng.choice((1, 1, 2, 2, 3))
            chosen = set()
            for _ in range(count):
                provider = rng.choice(attach_pool)
                if provider != asn:
                    chosen.add(provider)
            providers[asn] = sorted(chosen)
            attach_pool.extend([asn] * 3)  # transits attract customers
        for asn in stubs:
            count = rng.choice((1, 1, 1, 2, 2, 3))
            chosen = set()
            for _ in range(count):
                provider = rng.choice(attach_pool)
                if provider != asn:
                    chosen.add(provider)
            providers[asn] = sorted(chosen)
        return cls(providers, tier1, stubs)

    def providers_of(self, asn: int) -> List[int]:
        return list(self._providers.get(asn, []))

    def all_ases(self) -> List[int]:
        return sorted(self._providers)

    def path_to_tier1(self, origin: int, rng: random.Random) -> List[int]:
        """Random provider chain from ``origin`` up to a tier-1 AS.

        Returned leftmost-first like a received AS_PATH at a tier-1
        vantage: ``[..., provider, origin]``.
        """
        chain = [origin]
        current = origin
        seen = {origin}
        for _ in range(16):
            if current in self.tier1:
                break
            choices = [p for p in self._providers.get(current, []) if p not in seen]
            if not choices:
                break
            current = rng.choice(choices)
            seen.add(current)
            chain.append(current)
        return list(reversed(chain))
