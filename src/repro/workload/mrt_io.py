"""Bridging synthetic tables and MRT archives.

``routes_from_mrt`` loads a TABLE_DUMP_V2 file — a synthetic one from
``xbgp gen-table``, or a real RIS/RouteViews dump — back into
:class:`RouteSpec` rows the experiment harness consumes, so the Fig. 4
benchmarks can replay archived tables instead of generated ones.

``iter_routes_from_mrt`` is the streaming twin: it yields the same
rows in file order without ever materializing the table, so a 724k-route
full-table dump can be partitioned into shard buckets (or counted, or
filtered) at a memory cost of one record.
"""

from __future__ import annotations

from typing import BinaryIO, Iterator, List, Optional, Union

from ..bgp.constants import AttrTypeCode, Origin
from ..mrt.format import (
    MrtError,
    PEER_INDEX_TABLE,
    RIB_IPV4_UNICAST,
    TABLE_DUMP_V2,
    _decode_rib,
    _read_records,
)
from .rib_gen import RouteSpec

__all__ = ["iter_routes_from_mrt", "routes_from_mrt"]


def _spec_from_entry(entry) -> Optional[RouteSpec]:
    """One RIB entry → RouteSpec, or None when there is no AS_PATH."""
    as_path = ()
    origin = int(Origin.INCOMPLETE)
    med = None
    communities = ()
    for attribute in entry.attributes:
        code = attribute.type_code
        if code == AttrTypeCode.AS_PATH:
            as_path = tuple(attribute.as_path().asn_iter())
        elif code == AttrTypeCode.ORIGIN and attribute.value:
            origin = attribute.value[0]
        elif code == AttrTypeCode.MULTI_EXIT_DISC:
            med = attribute.as_u32()
        elif code == AttrTypeCode.COMMUNITIES:
            communities = tuple(sorted(int(c) for c in attribute.as_communities()))
    if not as_path:
        return None
    return RouteSpec(entry.prefix, as_path, origin, med, communities)


def iter_routes_from_mrt(source: Union[str, BinaryIO]) -> Iterator[RouteSpec]:
    """Stream RouteSpec rows out of an MRT TABLE_DUMP_V2 file.

    Same semantics as :func:`routes_from_mrt` — entries without an
    AS_PATH are skipped, duplicate prefixes keep the first entry — but
    one record is decoded at a time, so the full table never
    materializes.  Raises :class:`MrtError` if the dump carries no
    PEER_INDEX_TABLE record.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            yield from iter_routes_from_mrt(handle)
        return
    seen = set()
    saw_index = False
    for record in _read_records(source):
        if record.record_type != TABLE_DUMP_V2:
            continue
        if record.subtype == PEER_INDEX_TABLE:
            saw_index = True
            continue
        if record.subtype != RIB_IPV4_UNICAST:
            continue
        for entry in _decode_rib(record.payload):
            if entry.prefix in seen:
                continue
            spec = _spec_from_entry(entry)
            if spec is None:
                continue
            seen.add(entry.prefix)
            yield spec
    if not saw_index:
        raise MrtError("no PEER_INDEX_TABLE record")


def routes_from_mrt(source: Union[str, BinaryIO]) -> List[RouteSpec]:
    """Read RIB entries from an MRT file into RouteSpec rows.

    Entries without an AS_PATH attribute are skipped (route servers
    occasionally archive such rows); duplicate prefixes keep the first
    entry, matching a single-peer view.
    """
    return list(iter_routes_from_mrt(source))
