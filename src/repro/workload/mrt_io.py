"""Bridging synthetic tables and MRT archives.

``routes_from_mrt`` loads a TABLE_DUMP_V2 file — a synthetic one from
``xbgp gen-table``, or a real RIS/RouteViews dump — back into
:class:`RouteSpec` rows the experiment harness consumes, so the Fig. 4
benchmarks can replay archived tables instead of generated ones.
"""

from __future__ import annotations

from typing import BinaryIO, List, Union

from ..bgp.constants import AttrTypeCode, Origin
from ..mrt.format import read_table
from .rib_gen import RouteSpec

__all__ = ["routes_from_mrt"]


def routes_from_mrt(source: Union[str, BinaryIO]) -> List[RouteSpec]:
    """Read RIB entries from an MRT file into RouteSpec rows.

    Entries without an AS_PATH attribute are skipped (route servers
    occasionally archive such rows); duplicate prefixes keep the first
    entry, matching a single-peer view.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return routes_from_mrt(handle)
    _, entries = read_table(source)
    routes: List[RouteSpec] = []
    seen = set()
    for entry in entries:
        if entry.prefix in seen:
            continue
        as_path = ()
        origin = int(Origin.INCOMPLETE)
        med = None
        communities = ()
        skip = False
        for attribute in entry.attributes:
            code = attribute.type_code
            if code == AttrTypeCode.AS_PATH:
                as_path = tuple(attribute.as_path().asn_iter())
            elif code == AttrTypeCode.ORIGIN and attribute.value:
                origin = attribute.value[0]
            elif code == AttrTypeCode.MULTI_EXIT_DISC:
                med = attribute.as_u32()
            elif code == AttrTypeCode.COMMUNITIES:
                communities = tuple(sorted(int(c) for c in attribute.as_communities()))
        if not as_path:
            skip = True
        if skip:
            continue
        seen.add(entry.prefix)
        routes.append(RouteSpec(entry.prefix, as_path, origin, med, communities))
    return routes
