"""Synthetic RIS-like workloads: AS topology and table generation."""

from .mrt_io import iter_routes_from_mrt, routes_from_mrt
from .rib_gen import RibGenerator, RouteSpec, build_updates, origins_of
from .topology import AsTopology

__all__ = [
    "RibGenerator",
    "RouteSpec",
    "build_updates",
    "origins_of",
    "AsTopology",
    "iter_routes_from_mrt",
    "routes_from_mrt",
]
