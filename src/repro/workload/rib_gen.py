"""Synthetic RIS-like BGP table generation.

The paper feeds its DUT "IPv4 BGP routes from a recent RIPE RIS
snapshot of June 2020" (724k routes).  Offline, we synthesize a table
with the statistical shape that matters to the measured code paths:

* realistic prefix-length mix (≈60 % /24, heavy 16-24 body);
* short heavy-tailed AS paths from a provider hierarchy, with
  occasional prepending;
* attribute variety (ORIGIN mix, MED, communities) with heavy sharing
  of identical attribute sets across prefixes — which is what makes
  update packing and attribute interning do real work.

Route counts are scaled down from 724k (a Python substrate is orders
of magnitude slower per route than C); EXPERIMENTS.md reports the
scale used for each run.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from ..bgp.attributes import (
    PathAttribute,
    make_as_path,
    make_communities,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
)
from ..bgp.aspath import AsPath
from ..bgp.constants import Origin
from ..bgp.messages import UpdateMessage
from ..bgp.prefix import Prefix
from .topology import AsTopology

__all__ = ["RouteSpec", "RibGenerator", "build_updates", "origins_of"]

#: (prefix length, weight) — rough RIS IPv4 mix.
_LENGTH_MIX: Sequence[Tuple[int, float]] = (
    (24, 0.59),
    (23, 0.07),
    (22, 0.09),
    (21, 0.05),
    (20, 0.05),
    (19, 0.04),
    (18, 0.03),
    (17, 0.02),
    (16, 0.04),
    (15, 0.005),
    (14, 0.005),
    (13, 0.004),
    (12, 0.003),
    (11, 0.002),
    (10, 0.002),
    (9, 0.002),
    (8, 0.002),
)


class RouteSpec(NamedTuple):
    """One synthetic route before attribute encoding."""

    prefix: Prefix
    as_path: Tuple[int, ...]
    origin: int
    med: Optional[int]
    communities: Tuple[int, ...]

    @property
    def origin_asn(self) -> int:
        return self.as_path[-1] if self.as_path else 0


class RibGenerator:
    """Deterministic synthetic table generator."""

    def __init__(
        self,
        n_routes: int = 10_000,
        n_ases: int = 600,
        seed: int = 20200604,
        prepend_probability: float = 0.12,
        med_probability: float = 0.25,
        community_probability: float = 0.4,
    ):
        self.n_routes = n_routes
        self.seed = seed
        self.prepend_probability = prepend_probability
        self.med_probability = med_probability
        self.community_probability = community_probability
        self.topology = AsTopology.generate(n_ases=n_ases, seed=seed)

    def _draw_length(self, rng: random.Random) -> int:
        lengths, weights = zip(*_LENGTH_MIX)
        return rng.choices(lengths, weights)[0]

    def _draw_prefix(self, rng: random.Random, used: set) -> Prefix:
        while True:
            length = self._draw_length(rng)
            # Public-looking space: 1.0.0.0 .. 223.255.255.255.
            network = rng.randrange(0x01000000, 0xDF000000)
            prefix = Prefix(network, length)
            if prefix not in used:
                used.add(prefix)
                return prefix

    def generate(self) -> List[RouteSpec]:
        """Generate the table: ``n_routes`` unique-prefix routes.

        Consecutive routes share origin (and therefore path and
        attribute set) in bursts, like real tables where one AS
        originates many prefixes.
        """
        rng = random.Random(self.seed)
        stubs = self.topology.stubs
        routes: List[RouteSpec] = []
        used: set = set()
        while len(routes) < self.n_routes:
            origin = rng.choice(stubs)
            base_path = tuple(self.topology.path_to_tier1(origin, rng))
            if rng.random() < self.prepend_probability:
                base_path = (base_path[0],) + base_path  # sender prepend
            origin_code = rng.choices(
                (int(Origin.IGP), int(Origin.INCOMPLETE), int(Origin.EGP)),
                (0.62, 0.33, 0.05),
            )[0]
            med = rng.randrange(0, 200) if rng.random() < self.med_probability else None
            if rng.random() < self.community_probability:
                count = rng.randrange(1, 5)
                communities = tuple(
                    sorted(
                        (rng.choice(base_path) << 16) | rng.randrange(0, 1000)
                        for _ in range(count)
                    )
                )
            else:
                communities = ()
            burst = min(rng.randrange(1, 9), self.n_routes - len(routes))
            for _ in range(burst):
                routes.append(
                    RouteSpec(
                        self._draw_prefix(rng, used),
                        base_path,
                        origin_code,
                        med,
                        communities,
                    )
                )
        return routes


def _attributes_for(
    spec: RouteSpec,
    next_hop: int,
    local_pref: Optional[int],
    first_asn: Optional[int],
) -> Tuple[PathAttribute, ...]:
    path = spec.as_path
    if first_asn is not None:
        path = (first_asn,) + path
    attributes: List[PathAttribute] = [
        make_origin(Origin(spec.origin)),
        make_as_path(AsPath.from_sequence(path)),
        make_next_hop(next_hop),
    ]
    if spec.med is not None:
        attributes.append(make_med(spec.med))
    if local_pref is not None:
        attributes.append(make_local_pref(local_pref))
    if spec.communities:
        attributes.append(make_communities(spec.communities))
    return tuple(attributes)


def build_updates(
    routes: Iterable[RouteSpec],
    next_hop: int,
    session: str = "ibgp",
    local_pref: Optional[int] = 100,
    sender_asn: Optional[int] = None,
    max_prefixes_per_update: int = 64,
) -> List[UpdateMessage]:
    """Pack routes into UPDATE messages the way a feeding router would.

    ``session`` selects iBGP (LOCAL_PREF present) or eBGP (no
    LOCAL_PREF; ``sender_asn`` prepended as the neighbor's AS) shaping.
    Routes with identical attribute sets share UPDATEs, up to
    ``max_prefixes_per_update`` NLRI each.
    """
    if session not in ("ibgp", "ebgp"):
        raise ValueError(f"bad session kind {session!r}")
    effective_local_pref = local_pref if session == "ibgp" else None
    first_asn = sender_asn if session == "ebgp" else None

    # The spec signature fully determines the attribute tuple, so the
    # (expensive) attribute build runs once per distinct set — a 724k
    # table repeats a few thousand sets across hundreds of routes each.
    groups: Dict[Tuple[PathAttribute, ...], List[Prefix]] = {}
    order: List[Tuple[PathAttribute, ...]] = []
    memo: Dict[tuple, Tuple[PathAttribute, ...]] = {}
    for spec in routes:
        key = (spec.as_path, spec.origin, spec.med, spec.communities)
        attributes = memo.get(key)
        if attributes is None:
            attributes = memo[key] = _attributes_for(
                spec, next_hop, effective_local_pref, first_asn
            )
        bucket = groups.get(attributes)
        if bucket is None:
            groups[attributes] = [spec.prefix]
            order.append(attributes)
        else:
            bucket.append(spec.prefix)

    updates: List[UpdateMessage] = []
    for attributes in order:
        prefixes = groups[attributes]
        for start in range(0, len(prefixes), max_prefixes_per_update):
            updates.append(
                UpdateMessage(
                    attributes=attributes,
                    nlri=prefixes[start : start + max_prefixes_per_update],
                )
            )
    return updates


def origins_of(routes: Iterable[RouteSpec]) -> List[Tuple[Prefix, int]]:
    """(prefix, origin AS) pairs — input for ROA-set construction."""
    return [(spec.prefix, spec.origin_asn) for spec in routes]
