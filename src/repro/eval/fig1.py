"""Fig. 1: CDF of BGP standardization delay.

Recomputes the paper's figure from the embedded dataset: the empirical
CDF of draft-to-RFC delay for the last 40 BGP RFCs.  The paper's
reading: "the median delay before RFC publication is 3.5 years, and
some features required up to ten years".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..data.bgp_rfcs import BGP_RFCS, delay_years

__all__ = ["delays", "cdf_points", "summary", "render_table"]


def delays() -> List[float]:
    """Sorted draft-to-RFC delays (years) for the 40 RFCs."""
    return sorted(delay_years(rfc) for rfc in BGP_RFCS)


def cdf_points() -> List[Tuple[float, float]]:
    """(delay, cumulative fraction) points of the empirical CDF."""
    values = delays()
    count = len(values)
    return [(value, (index + 1) / count) for index, value in enumerate(values)]


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        raise ValueError("empty sample")
    position = fraction * (len(values) - 1)
    low = int(position)
    high = min(low + 1, len(values) - 1)
    weight = position - low
    return values[low] * (1 - weight) + values[high] * weight


def summary() -> Dict[str, float]:
    """Headline statistics of the distribution."""
    values = delays()
    return {
        "count": float(len(values)),
        "min_years": values[0],
        "p25_years": _percentile(values, 0.25),
        "median_years": _percentile(values, 0.50),
        "p75_years": _percentile(values, 0.75),
        "max_years": values[-1],
    }


def render_table() -> str:
    """The figure as text: CDF rows plus the headline numbers."""
    lines = ["Fig. 1 — Standardization delay of the last 40 BGP RFCs", ""]
    lines.append(f"{'delay (years)':>14s}  {'CDF':>5s}")
    for delay, fraction in cdf_points():
        lines.append(f"{delay:14.2f}  {fraction:5.3f}")
    stats = summary()
    lines.append("")
    lines.append(
        "median = {median_years:.2f} y   p25 = {p25_years:.2f} y   "
        "p75 = {p75_years:.2f} y   max = {max_years:.2f} y".format(**stats)
    )
    return "\n".join(lines)
