"""repro.eval.bench — continuous benchmark recording and regression gates.

The paper's evaluation (Fig. 4, the ablations) is a set of wall-clock
numbers measured once; this module makes them *trackable*: every
benchmark scenario can be recorded to a small schema'd JSON file
(``BENCH_<scenario>.json``) carrying the median/p95 wall time, the
derived routes-per-second throughput, the VMM's instruction counters
and enough provenance (git SHA, timestamp, workload parameters) to
compare apples to apples across commits.

``compare()`` is the regression gate: given a current record and a
committed baseline it flags a regression when the current median wall
time exceeds the baseline by more than a noise threshold (default
50% — generous because these are single-machine wall-clock numbers,
but a real slowdown like an accidentally disabled marshalling cache
is a 2-10x cliff, far past any plausible noise).  ``xbgp bench
--compare`` turns a regression into a nonzero exit for CI.

Records can additionally carry the run's alert outcome (``xbgp bench
--alert`` attaches ``alerts_fired`` via the ``extra`` field); the
comparison surfaces it so a perf number that only held because an
alert was firing (e.g. half the extensions quarantined) is visible in
the gate's output, and the CLI's alert gate turns any fired critical
rule into a nonzero exit of its own.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
from typing import Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "bench_filename",
    "compare",
    "git_sha",
    "load_record",
    "make_record",
    "render_compare",
    "write_record",
]

SCHEMA_VERSION = 1

#: Default regression threshold: current median more than 50% above the
#: baseline median counts as a regression.
DEFAULT_THRESHOLD = 0.50


def git_sha(repo_dir: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile; robust for the small n used here."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def make_record(
    scenario: str,
    wall_seconds: List[float],
    routes: int,
    instructions: int = 0,
    timestamp: Optional[str] = None,
    sha: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one schema'd benchmark record from raw per-run wall times."""
    if not wall_seconds:
        raise ValueError("need at least one wall-clock sample")
    median = statistics.median(wall_seconds)
    record: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "runs": len(wall_seconds),
        "routes": routes,
        "median_wall_seconds": median,
        "p95_wall_seconds": _percentile(wall_seconds, 0.95),
        "min_wall_seconds": min(wall_seconds),
        "routes_per_second": (routes / median) if median > 0 else 0.0,
        "instructions": instructions,
        "git_sha": sha if sha is not None else git_sha(),
        "timestamp": timestamp or "",
    }
    if extra:
        record.update(extra)
    return record


def bench_filename(scenario: str) -> str:
    return f"BENCH_{scenario}.json"


def write_record(record: Dict[str, object], directory: str = ".") -> str:
    """Write ``BENCH_<scenario>.json``; returns the path written."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(str(record["scenario"])))
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_record(path: str) -> Dict[str, object]:
    with open(path) as fh:
        record = json.load(fh)
    version = record.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    return record


def compare(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Current vs baseline medians; ``regression`` True past threshold.

    The ratio is wall-clock median over wall-clock median, so >1 means
    slower.  Instruction counts are compared exactly when both records
    carry them — a changed count isn't a regression by itself (the
    workload may legitimately change), but it is reported so a wall
    time shift can be told apart from an instruction-mix shift.
    """
    if current.get("scenario") != baseline.get("scenario"):
        raise ValueError(
            f"scenario mismatch: {current.get('scenario')!r} vs "
            f"{baseline.get('scenario')!r}"
        )
    current_median = float(current["median_wall_seconds"])
    baseline_median = float(baseline["median_wall_seconds"])
    ratio = (current_median / baseline_median) if baseline_median > 0 else float("inf")
    return {
        "scenario": current.get("scenario"),
        "baseline_median_wall_seconds": baseline_median,
        "current_median_wall_seconds": current_median,
        "ratio": ratio,
        "threshold": threshold,
        "regression": ratio > 1.0 + threshold,
        "baseline_instructions": baseline.get("instructions", 0),
        "current_instructions": current.get("instructions", 0),
        "baseline_sha": baseline.get("git_sha", "unknown"),
        "current_sha": current.get("git_sha", "unknown"),
        "current_alerts_fired": list(current.get("alerts_fired") or []),
        "baseline_alerts_fired": list(baseline.get("alerts_fired") or []),
    }


def render_compare(result: Dict[str, object]) -> str:
    """Human-readable one-scenario comparison."""
    ratio = float(result["ratio"])
    verdict = "REGRESSION" if result["regression"] else "ok"
    lines = [
        f"{result['scenario']}: {verdict}",
        f"  baseline  {float(result['baseline_median_wall_seconds']) * 1000:.2f} ms"
        f"  ({str(result['baseline_sha'])[:12]})",
        f"  current   {float(result['current_median_wall_seconds']) * 1000:.2f} ms"
        f"  ({str(result['current_sha'])[:12]})",
        f"  ratio     {ratio:.2f}x (threshold {1.0 + float(result['threshold']):.2f}x)",
    ]
    base_insns = int(result.get("baseline_instructions") or 0)
    cur_insns = int(result.get("current_instructions") or 0)
    if base_insns and cur_insns and base_insns != cur_insns:
        lines.append(
            f"  note: instruction count changed {base_insns} -> {cur_insns} "
            "(workload or extension mix shifted)"
        )
    fired = list(result.get("current_alerts_fired") or [])
    if fired:
        lines.append(
            f"  note: {len(fired)} alert rule(s) fired during the current "
            f"run: {', '.join(str(rule) for rule in fired)}"
        )
    return "\n".join(lines)
