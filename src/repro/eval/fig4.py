"""Fig. 4: relative performance impact of extension vs native code.

Reproduces the §3.2/§3.4 experiment: for each implementation under
test (xFRRouting → PyFRR, xBIRD → PyBIRD) and each feature (route
reflection over iBGP, origin validation over eBGP), measure the
first-announce-to-last-receive convergence delay with the *native*
feature and with the *extension code* implementing the same feature,
over N interleaved runs, and report the distribution of the relative
impact — the quantity the paper's boxplots show.

Two extension engines are reported by default (see EXPERIMENTS.md for
the claim each carries):

* ``jit``   — genuine eBPF bytecode, JIT-translated; carries the
  Python-substrate interpretation tax;
* ``pyext`` — the same logic as host-speed code through the same VMM
  and glue; models the paper's compiled-eBPF cost ratio.

``native`` (the structured whole-program compiler, ``--engine
native``) and ``interp`` run through the same cells on demand; the
tier ladder itself is measured in benchmarks/test_ablation_engines.py
and the hot-path tier comparison.
"""

from __future__ import annotations

import gc
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.roa import Roa, make_roas_for_prefixes
from ..sim.harness import ConvergenceHarness
from ..workload.rib_gen import RibGenerator, RouteSpec, origins_of

__all__ = ["Fig4Result", "run_cell", "run_figure", "render_table", "boxplot_stats"]


class Fig4Result:
    """One figure cell: impact distribution for (impl, feature, engine)."""

    def __init__(
        self,
        implementation: str,
        feature: str,
        engine: str,
        native_seconds: List[float],
        extension_seconds: List[float],
    ):
        self.implementation = implementation
        self.feature = feature
        self.engine = engine
        self.native_seconds = native_seconds
        self.extension_seconds = extension_seconds

    @property
    def impacts_percent(self) -> List[float]:
        """Per-run relative impact against the native median (%)."""
        base = statistics.median(self.native_seconds)
        return [(value - base) / base * 100.0 for value in self.extension_seconds]

    def stats(self) -> Dict[str, float]:
        return boxplot_stats(self.impacts_percent)


def boxplot_stats(values: Sequence[float]) -> Dict[str, float]:
    """The five numbers a boxplot shows."""
    ordered = sorted(values)
    return {
        "min": ordered[0],
        "p25": _percentile(ordered, 0.25),
        "median": _percentile(ordered, 0.5),
        "p75": _percentile(ordered, 0.75),
        "max": ordered[-1],
    }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def run_cell(
    implementation: str,
    feature: str,
    routes: List[RouteSpec],
    roas: Optional[List[Roa]],
    runs: int = 15,
    engine: str = "jit",
    warmup: int = 1,
) -> Fig4Result:
    """Run one figure cell: ``runs`` interleaved native/extension pairs.

    Interleaving (native, extension, native, extension…) spreads any
    machine drift across both arms, like the paper's repeated runs.
    """
    native_times: List[float] = []
    extension_times: List[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        for iteration in range(warmup + runs):
            for mode, bucket in (("native", native_times), ("extension", extension_times)):
                harness = ConvergenceHarness(
                    implementation, feature, mode, routes, roas, engine=engine
                )
                gc.collect()
                gc.disable()
                try:
                    elapsed = harness.run()
                finally:
                    if gc_was_enabled:
                        gc.enable()
                if iteration >= warmup:
                    bucket.append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return Fig4Result(implementation, feature, engine, native_times, extension_times)


def run_figure(
    n_routes: int = 5000,
    runs: int = 15,
    seed: int = 20200604,
    engines: Sequence[str] = ("jit", "pyext"),
    implementations: Sequence[str] = ("frr", "bird"),
    features: Sequence[str] = ("route_reflection", "origin_validation"),
) -> List[Fig4Result]:
    """Run the whole figure; returns one result per cell."""
    generator = RibGenerator(n_routes=n_routes, seed=seed)
    routes = generator.generate()
    roas = make_roas_for_prefixes(origins_of(routes), valid_fraction=0.75, seed=seed)
    results = []
    for engine in engines:
        for implementation in implementations:
            for feature in features:
                results.append(
                    run_cell(implementation, feature, routes, roas, runs, engine)
                )
    return results


def render_table(results: Sequence[Fig4Result], n_routes: int, runs: int) -> str:
    """The figure as text, one row per boxplot."""
    lines = [
        f"Fig. 4 — Relative performance impact of extension bytecode vs "
        f"native code ({n_routes} routes, {runs} runs)",
        "",
        f"{'impl':6s} {'feature':18s} {'engine':6s} "
        f"{'native-med':>11s} {'ext-med':>11s} "
        f"{'impact med':>10s} {'p25':>7s} {'p75':>7s} {'min':>7s} {'max':>7s}",
    ]
    for result in results:
        stats = result.stats()
        native_median = statistics.median(result.native_seconds)
        ext_median = statistics.median(result.extension_seconds)
        lines.append(
            f"{result.implementation:6s} {result.feature:18s} {result.engine:6s} "
            f"{native_median * 1000:9.1f}ms {ext_median * 1000:9.1f}ms "
            f"{stats['median']:+9.1f}% {stats['p25']:+6.1f}% {stats['p75']:+6.1f}% "
            f"{stats['min']:+6.1f}% {stats['max']:+6.1f}%"
        )
    return "\n".join(lines)
