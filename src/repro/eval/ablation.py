"""Ablation micro-benchmarks for the design choices DESIGN.md calls out.

Each function returns a callable suitable for pytest-benchmark (or
plain timing): the per-operation cost of one design alternative.

Covered ablations:

* ROA store: trie browse (FRR style) vs hash probe (BIRD style) vs the
  extension's program-map probe — the §3.4 mechanism;
* execution engine: interpreter vs JIT vs host-speed plugin for the
  same bytecode/logic;
* ``next()`` chain length: cost of stacking extension codes on one
  insertion point;
* verifier cost per program size.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from ..bgp.prefix import Prefix
from ..bgp.roa import HashRoaTable, Roa, TrieRoaTable, make_roas_for_prefixes
from ..core import (
    ExecutionContext,
    HELPER_IDS,
    InsertionPoint,
    Manifest,
    VirtualMachineManager,
    VmmConfig,
)
from ..core.host_interface import HostImplementation
from ..ebpf import VerifierConfig, verify
from ..xc import compile_source

__all__ = [
    "make_validation_workload",
    "trie_check_fn",
    "hash_check_fn",
    "engine_fn",
    "chain_fn",
    "verifier_fn",
]


def make_validation_workload(
    n: int = 2000, valid_fraction: float = 0.75, seed: int = 7
) -> Tuple[List[Tuple[Prefix, int]], List[Roa]]:
    """(prefix, origin) checks plus a matching ROA set."""
    rng = random.Random(seed)
    checks: List[Tuple[Prefix, int]] = []
    seen = set()
    while len(checks) < n:
        length = rng.choice((24, 24, 24, 22, 20, 19, 16))
        network = rng.randrange(0x01000000, 0xDF000000)
        prefix = Prefix(network, length)
        if prefix in seen:
            continue
        seen.add(prefix)
        checks.append((prefix, rng.randrange(3, 64000)))
    roas = make_roas_for_prefixes(checks, valid_fraction, seed=seed)
    return checks, roas


def trie_check_fn(checks, roas) -> Callable[[], int]:
    """FRR-style: browse the ROA trie on every check."""
    table = TrieRoaTable()
    table.extend(roas)

    def run() -> int:
        total = 0
        for prefix, origin in checks:
            total += int(table.validate(prefix, origin))
        return total

    return run


def hash_check_fn(checks, roas) -> Callable[[], int]:
    """BIRD-style: hash probes per covering length."""
    table = HashRoaTable()
    table.extend(roas)

    def run() -> int:
        total = 0
        for prefix, origin in checks:
            total += int(table.validate(prefix, origin))
        return total

    return run


class _NullHost(HostImplementation):
    """Minimal host for engine micro-benchmarks."""

    name = "null"

    def get_attr(self, ctx, code):
        return None

    def set_attr(self, ctx, code, flags, value):
        return True

    def add_attr(self, ctx, code, flags, value):
        return True

    def remove_attr(self, ctx, code):
        return False

    def get_nexthop(self, ctx):
        return 0, 0, False

    def get_xtra(self, ctx, key):
        return None

    def rib_announce(self, ctx, prefix, next_hop):
        return True

    def log(self, message):
        pass


_ARITH_SOURCE = """
u64 work(u64 args) {
    u64 acc = 0;
    u64 i = 0;
    while (i < 64) {
        acc = acc + i * 3 + (acc >> 2);
        acc = acc ^ (i << 7);
        i = i + 1;
    }
    return acc;
}
"""


def engine_fn(engine: str) -> Callable[[], int]:
    """Cost of one bytecode invocation under ``engine``
    (interp/jit/native)."""
    host = _NullHost()
    vmm = VirtualMachineManager(host, VmmConfig(tier=engine))
    manifest = Manifest(
        name=f"arith_{engine}",
        codes=[
            {
                "name": "work",
                "insertion_point": "BGP_INBOUND_FILTER",
                "seq": 0,
                "helpers": [],
                "source": _ARITH_SOURCE,
            }
        ],
    )
    vmm.attach_program(manifest.load())
    ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)

    def run() -> int:
        return vmm.run(ctx, lambda: 0)

    return run


_NEXT_SOURCE = """
u64 pass_on(u64 args) {
    next();
    return 0;
}
"""


def chain_fn(length: int) -> Callable[[], int]:
    """Cost of an insertion point with ``length`` chained codes, each
    delegating with ``next()`` down to the native default."""
    host = _NullHost()
    vmm = VirtualMachineManager(host, VmmConfig())
    codes = [
        {
            "name": f"pass_{index}",
            "insertion_point": "BGP_INBOUND_FILTER",
            "seq": index,
            "helpers": ["next"],
            "source": _NEXT_SOURCE,
        }
        for index in range(length)
    ]
    if codes:
        manifest = Manifest(name=f"chain_{length}", codes=codes)
        vmm.attach_program(manifest.load())
    ctx = ExecutionContext(host, InsertionPoint.BGP_INBOUND_FILTER)

    def run() -> int:
        return vmm.run(ctx, lambda: 0)

    return run


def verifier_fn(repeats: int = 8) -> Callable[[], None]:
    """Cost of verifying a program of ~``repeats`` x the arith body."""
    body = "".join(
        f"""
    u64 v{i} = {i};
    while (v{i} < 32) {{ v{i} = v{i} + 3; }}
"""
        for i in range(repeats)
    )
    source = f"u64 big(u64 args) {{ {body} return 0; }}"
    program = compile_source(source, HELPER_IDS)
    config = VerifierConfig(allow_loops=True)

    def run() -> None:
        verify(program, config)

    return run
