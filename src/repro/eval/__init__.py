"""Experiment drivers: one module per paper figure plus ablations."""

from . import ablation, fig1, fig4, loc_report

__all__ = ["ablation", "bench", "fig1", "fig4", "loc_report"]
