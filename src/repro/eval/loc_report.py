"""§2.1 LoC accounting: the glue each host needed.

The paper: "Implementing the API induced a total of 400 and 589
additional lines of code on BIRD and FRRouting, respectively.  The
difference between the two is due to the internal representation of
the BGP data structures in memory."

This module counts the equivalent lines in this repo — the xBGP glue
module of each host plus, for PyFRR, the representation-conversion
functions the glue depends on (``FrrAttrs.from_wire`` and friends),
which is exactly the extra work the paper attributes to FRRouting.
Absolute counts differ from C, but the claim under test is the
*asymmetry*: FRR glue > BIRD glue.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List

__all__ = ["count_module_loc", "count_function_loc", "glue_report", "render_table"]

#: FrrAttrs methods that exist purely to convert between the host
#: representation and the neutral one (the paper's "several functions
#: to do the conversion between the two representations").
_FRR_CONVERSION_FUNCTIONS = [
    "from_wire",
    "to_wire",
    "attr_to_wire",
    "with_attr_wire",
    "without_attr",
]


def _code_lines(source: str) -> int:
    """Non-blank, non-comment, non-docstring source lines."""
    tree = ast.parse(source)
    doc_lines = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if body and isinstance(body[0], ast.Expr) and isinstance(
                body[0].value, ast.Constant
            ) and isinstance(body[0].value.value, str):
                for line in range(body[0].lineno, (body[0].end_lineno or body[0].lineno) + 1):
                    doc_lines.add(line)
    count = 0
    for number, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or number in doc_lines:
            continue
        count += 1
    return count


def count_module_loc(module) -> int:
    """Code lines of a module (imports excluded are *not* — the glue's
    imports are part of the glue)."""
    return _code_lines(inspect.getsource(module))


def count_function_loc(cls, names: List[str]) -> int:
    """Code lines across the named methods of ``cls``."""
    total = 0
    for name in names:
        source = textwrap.dedent(inspect.getsource(getattr(cls, name)))
        total += _code_lines(source)
    return total


def glue_report() -> Dict[str, int]:
    """LoC each host needed to become xBGP-compliant."""
    from ..bird import xbgp_glue as bird_glue
    from ..frr import xbgp_glue as frr_glue
    from ..frr.attrs_intern import FrrAttrs

    bird_total = count_module_loc(bird_glue)
    frr_total = count_module_loc(frr_glue) + count_function_loc(
        FrrAttrs, _FRR_CONVERSION_FUNCTIONS
    )
    return {"bird": bird_total, "frr": frr_total}


def render_table() -> str:
    report = glue_report()
    lines = [
        "xBGP glue size per host (cf. paper §2.1: BIRD 400, FRRouting 589)",
        "",
        f"{'host':8s} {'glue LoC':>9s}",
    ]
    for host in ("bird", "frr"):
        lines.append(f"{host:8s} {report[host]:9d}")
    ratio = report["frr"] / report["bird"]
    lines.append("")
    lines.append(
        f"FRR/BIRD ratio = {ratio:.2f} (paper: {589 / 400:.2f}); the asymmetry "
        "comes from FRR-style host-order internals needing per-call conversion."
    )
    return "\n".join(lines)
