"""Discrete-event network simulation: scheduler, links, experiment harness."""

from .engine import EventScheduler
from .network import Link, Network

__all__ = ["EventScheduler", "Link", "Network"]
