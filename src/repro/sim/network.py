"""Wiring daemons into simulated networks.

A :class:`Network` owns an event scheduler and connects daemon
instances with point-to-point links: each daemon's ``send_fn`` for a
neighbor enqueues the bytes for delivery to the other end after the
link latency.  Links can fail (§3.3's double-failure scenario) — bytes
in flight on a failed link are dropped, and both daemons see the
session go down.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..bgp.prefix import format_ipv4, parse_ipv4
from .engine import EventScheduler

__all__ = ["Network", "Link"]


class Link:
    """One bidirectional link between two routers' interface addresses."""

    __slots__ = ("a_name", "a_address", "b_name", "b_address", "latency", "up")

    def __init__(self, a_name, a_address, b_name, b_address, latency):
        self.a_name = a_name
        self.a_address = a_address
        self.b_name = b_name
        self.b_address = b_address
        self.latency = latency
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return (
            f"Link({self.a_name}:{format_ipv4(self.a_address)} <-> "
            f"{self.b_name}:{format_ipv4(self.b_address)}, {state})"
        )


class Network:
    """A set of routers plus the links between them."""

    def __init__(self) -> None:
        self.scheduler = EventScheduler()
        self._routers: Dict[str, object] = {}
        self._links: List[Link] = []
        #: (router name, local interface address) -> link + direction.
        self._endpoints: Dict[Tuple[str, int], Tuple[Link, str]] = {}
        #: any address (loopback, router id, interface) -> router name,
        #: used by the data-plane tracer to resolve next hops.
        self._address_owner: Dict[int, str] = {}

    # -- construction -----------------------------------------------------

    def add_router(self, name: str, daemon) -> None:
        if name in self._routers:
            raise ValueError(f"duplicate router {name!r}")
        self._routers[name] = daemon
        self._address_owner[daemon.local_address] = name
        self._address_owner[daemon.router_id] = name
        tracker = getattr(daemon, "provenance", None)
        if tracker is not None:
            # Provenance timestamps should be in simulated seconds.
            tracker.set_clock(lambda: self.scheduler.now)

    def router(self, name: str):
        return self._routers[name]

    def routers(self) -> Dict[str, object]:
        return dict(self._routers)

    def connect(
        self,
        a_name: str,
        a_address: str,
        b_name: str,
        b_address: str,
        latency: float = 0.001,
    ) -> Link:
        """Create a link and register BGP neighborship on both daemons.

        ``a_address``/``b_address`` are the interface addresses the two
        routers use on this link (each is the *other* side's neighbor
        address).
        """
        daemon_a = self._routers[a_name]
        daemon_b = self._routers[b_name]
        link = Link(a_name, parse_ipv4(a_address), b_name, parse_ipv4(b_address), latency)
        self._links.append(link)
        self._endpoints[(a_name, link.a_address)] = (link, "a")
        self._endpoints[(b_name, link.b_address)] = (link, "b")
        self._address_owner[link.a_address] = a_name
        self._address_owner[link.b_address] = b_name

        daemon_a.add_neighbor(
            b_address, daemon_b.asn, self._sender(link, "a"), rr_client=False
        )
        daemon_b.add_neighbor(
            a_address, daemon_a.asn, self._sender(link, "b"), rr_client=False
        )
        return link

    def neighbor_config(self, router: str, peer_address: str):
        """The Neighbor object a router holds for ``peer_address``."""
        daemon = self._routers[router]
        return daemon.neighbors[parse_ipv4(peer_address)]

    def _sender(self, link: Link, side: str) -> Callable[[bytes], None]:
        def send(data: bytes) -> None:
            if not link.up:
                return  # bytes lost on a failed link
            if side == "a":
                origin_name, source_address = link.a_name, link.a_address
                target = self._routers[link.b_name]
            else:
                origin_name, source_address = link.b_name, link.b_address
                target = self._routers[link.a_name]
            # Ship the sender's active span ref with the bytes: the
            # receiver's UPDATE span adopts it as parent, so one trace
            # follows the route across routers.
            tracker = getattr(self._routers.get(origin_name), "provenance", None)
            parent = tracker.active_ref() if tracker is not None else None
            if parent is not None:
                self.scheduler.schedule(
                    link.latency,
                    lambda: target.receive_raw(
                        format_ipv4(source_address), data, parent=parent
                    ),
                )
            else:
                self.scheduler.schedule(
                    link.latency,
                    lambda: target.receive_raw(format_ipv4(source_address), data),
                )

        return send

    # -- session control -----------------------------------------------------

    def establish_all(self, max_events: Optional[int] = None) -> None:
        """Bring every session up (both directions) and settle.

        ``max_events`` bounds the settling run — needed for topologies
        that never converge (the oscillation tests), where an unbounded
        drain would spin forever.
        """
        for link in self._links:
            if link.up:
                self._establish(link)
        self.run(max_events)

    def _establish(self, link: Link) -> None:
        self._routers[link.a_name].session_up(format_ipv4(link.b_address))
        self._routers[link.b_name].session_up(format_ipv4(link.a_address))

    def fail_link(self, a_name: str, b_name: str) -> None:
        """Take the (first) link between two routers down."""
        link = self._find_link(a_name, b_name)
        link.up = False
        self._routers[link.a_name].session_down(format_ipv4(link.b_address))
        self._routers[link.b_name].session_down(format_ipv4(link.a_address))
        self.run()

    def restore_link(self, a_name: str, b_name: str) -> None:
        link = self._find_link(a_name, b_name)
        link.up = True
        self._establish(link)
        self.run()

    def _find_link(self, a_name: str, b_name: str) -> Link:
        for link in self._links:
            names = {link.a_name, link.b_name}
            if names == {a_name, b_name}:
                return link
        raise KeyError(f"no link {a_name} <-> {b_name}")

    # -- provenance --------------------------------------------------------------

    def enable_provenance(self) -> None:
        """Turn on provenance tracking on every router, with all
        trackers reading the simulated clock."""
        for daemon in self._routers.values():
            tracker = getattr(daemon, "provenance", None)
            if tracker is None:
                tracker = daemon.enable_provenance()
            tracker.set_clock(lambda: self.scheduler.now)

    def convergence_report(self) -> Dict[str, object]:
        """Network-wide convergence observability, aggregated from the
        per-router provenance trackers (routers without one are
        skipped): total flap counts per prefix, the union of
        oscillating prefixes, and time-to-quiescence (simulated clock
        of the last best-path change anywhere)."""
        flaps: Dict[str, int] = {}
        oscillating: set = set()
        quiescence = 0.0
        per_router: Dict[str, object] = {}
        for name, daemon in self._routers.items():
            tracker = getattr(daemon, "provenance", None)
            if tracker is None:
                continue
            report = tracker.convergence_report()
            per_router[name] = report
            for prefix, count in report["flaps"].items():
                flaps[prefix] = flaps.get(prefix, 0) + count
            oscillating.update(report["oscillating"])
            quiescence = max(quiescence, report["time_of_last_change"])
        return {
            "flaps": flaps,
            "oscillating": sorted(oscillating),
            "time_to_quiescence": quiescence,
            "routers": per_router,
        }

    # -- data plane --------------------------------------------------------------

    def trace(self, source: str, destination: str, max_hops: int = 32):
        """Forward a packet from ``source`` toward ``destination``.

        ``destination`` is a dotted-quad address.  Each hop builds its
        FIB from its Loc-RIB and does a longest-prefix match; the next
        hop address resolves to the owning router.  Returns
        ``(outcome, hops)`` where outcome is ``"delivered"``,
        ``"unreachable"`` or ``"loop"``, and ``hops`` is the router
        name sequence starting at ``source``.
        """
        from ..bgp.fib import Fib

        address = parse_ipv4(destination)
        current = source
        hops = [source]
        for _ in range(max_hops):
            daemon = self._routers[current]
            fib = Fib.from_loc_rib(daemon.loc_rib)
            entry = fib.lookup(address)
            if entry is None:
                return "unreachable", hops
            if entry.local:
                return "delivered", hops
            next_router = self._address_owner.get(entry.next_hop)
            if next_router is None or next_router == current:
                return "unreachable", hops
            if next_router in hops:
                hops.append(next_router)
                return "loop", hops
            hops.append(next_router)
            current = next_router
        return "loop", hops

    # -- execution ---------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain in-flight messages; returns events processed."""
        return self.scheduler.run(max_events)
