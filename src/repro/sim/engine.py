"""Discrete-event scheduler for the network simulator.

Events carry a simulated timestamp; :meth:`EventScheduler.run` drains
them in causal order.  Wall-clock measurements (the Fig. 4 benchmarks)
time the draining itself — simulated latency orders deliveries, real
CPU time is what the experiment observes.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """A plain (time, seq) priority-queue event loop."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` at ``now + delay`` (FIFO among equal times)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, action))
        self._sequence += 1

    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        if not self._queue:
            return False
        timestamp, _, action = heapq.heappop(self._queue)
        self.now = timestamp
        self.events_processed += 1
        action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded); return events processed."""
        count = 0
        while self._queue:
            if max_events is not None and count >= max_events:
                break
            self.step()
            count += 1
        return count

    def run_until(self, deadline: float) -> int:
        """Process events with timestamps <= ``deadline``."""
        count = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            count += 1
        self.now = max(self.now, deadline)
        return count
