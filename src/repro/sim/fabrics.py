"""The Fig. 5 data-center fabric, buildable in three configurations.

Topology (2 spines, 4 leaves, 4 ToRs, no same-level links)::

            S1          S2         level 2 (spine)
          / | \\ \\     / | \\ \\
        L10 L11 L12 L13            level 1 (leaf)
        |     |   |     |
        T20  T21 T22  T23          level 0 (ToR)

Configurations:

* ``unique_as`` — every router its own AS, no valley protection
  (baseline; valleys possible);
* ``same_as`` — the classic trick: S1/S2 share an AS, L10/L11 and
  L12/L13 share ASes, so eBGP loop detection kills valleys (and, under
  the double failure, partitions the fabric);
* ``xbgp`` — unique AS numbers everywhere plus the valley-free xBGP
  program on every router.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bird.daemon import BirdDaemon
from ..frr.daemon import FrrDaemon
from ..plugins import valley_free
from .network import Network

__all__ = ["build_clos", "CLOS_LINKS", "UNIQUE_AS", "SAME_AS", "up_edges"]

#: Unique-AS assignment (the xBGP way).
UNIQUE_AS: Dict[str, int] = {
    "S1": 65201,
    "S2": 65202,
    "L10": 65110,
    "L11": 65111,
    "L12": 65112,
    "L13": 65113,
    "T20": 65020,
    "T21": 65021,
    "T22": 65022,
    "T23": 65023,
}

#: Same-AS trick: spines share, leaf pairs share (§3.3).
SAME_AS: Dict[str, int] = {
    "S1": 65200,
    "S2": 65200,
    "L10": 65101,
    "L11": 65101,
    "L12": 65102,
    "L13": 65102,
    "T20": 65020,
    "T21": 65021,
    "T22": 65022,
    "T23": 65023,
}

_LEVEL: Dict[str, int] = {
    "S1": 2,
    "S2": 2,
    "L10": 1,
    "L11": 1,
    "L12": 1,
    "L13": 1,
    "T20": 0,
    "T21": 0,
    "T22": 0,
    "T23": 0,
}

#: Every leaf connects to both spines; ToRs pair up under leaf pods.
CLOS_LINKS: List[Tuple[str, str]] = [
    ("L10", "S1"),
    ("L10", "S2"),
    ("L11", "S1"),
    ("L11", "S2"),
    ("L12", "S1"),
    ("L12", "S2"),
    ("L13", "S1"),
    ("L13", "S2"),
    ("T20", "L10"),
    ("T20", "L11"),
    ("T21", "L10"),
    ("T21", "L11"),
    ("T22", "L12"),
    ("T22", "L13"),
    ("T23", "L12"),
    ("T23", "L13"),
]

_ADDresses_BASE = "10.20.{index}.{side}"


def up_edges(as_map: Dict[str, int]) -> List[Tuple[int, int]]:
    """(lower-level AS, upper-level AS) for every fabric adjacency."""
    edges = []
    for a, b in CLOS_LINKS:
        low, high = (a, b) if _LEVEL[a] < _LEVEL[b] else (b, a)
        edges.append((as_map[low], as_map[high]))
    return sorted(set(edges))


def build_clos(config: str = "xbgp", implementation: str = "bird") -> Network:
    """Build the Fig. 5 fabric in one of the three configurations.

    Router daemons alternate implementations when
    ``implementation="mixed"`` — the same valley-free bytecode loads on
    both kinds, which is the point of xBGP.
    """
    if config not in ("unique_as", "same_as", "xbgp"):
        raise ValueError(f"unknown config {config!r}")
    as_map = SAME_AS if config == "same_as" else UNIQUE_AS
    network = Network()

    names = list(UNIQUE_AS)
    for index, name in enumerate(names):
        if implementation == "mixed":
            daemon_cls = FrrDaemon if index % 2 == 0 else BirdDaemon
        else:
            daemon_cls = FrrDaemon if implementation == "frr" else BirdDaemon
        router_id = f"10.99.{index + 1}.1"
        daemon = daemon_cls(asn=as_map[name], router_id=router_id)
        network.add_router(name, daemon)

    if config == "xbgp":
        manifest = valley_free.build_manifest(
            up_edges(as_map), dc_ases=set(as_map.values())
        )
        for name in names:
            network.router(name).attach_manifest(manifest)

    for index, (a, b) in enumerate(CLOS_LINKS):
        a_address = f"10.20.{index}.1"
        b_address = f"10.20.{index}.2"
        network.connect(a, a_address, b, b_address)
    return network
