"""Experiment harnesses.

:class:`ConvergenceHarness` reproduces the Fig. 3 testbed: an upstream
router feeds a full BGP table to the Device Under Test, which processes
it and re-advertises to a downstream router.  The measurement is the
wall-clock delay between the announcement of the first prefix and the
reception of the last prefix downstream (§3.2) — compared between the
DUT's native feature and the xBGP extension implementing the same
feature.

The upstream feed is replayed from pre-encoded UPDATE bytes and the
downstream side is a lightweight collector, so both ends cost the same
in every arm and the native-vs-extension difference observed is the
DUT's.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..bgp.messages import UpdateMessage, split_stream
from ..bgp.prefix import Prefix, format_ipv4, parse_ipv4
from ..bird.daemon import BirdDaemon
from ..frr.daemon import FrrDaemon
from ..bgp.roa import HashRoaTable, Roa, TrieRoaTable
from ..plugins import origin_validation, route_reflector
from ..workload.rib_gen import RouteSpec, build_updates

__all__ = [
    "Collector",
    "ConvergenceHarness",
    "DAEMONS",
    "build_explain_scenario",
]

DAEMONS = {"frr": FrrDaemon, "bird": BirdDaemon}

_UPSTREAM = "10.0.1.2"
_DUT = "10.0.0.1"
_DOWNSTREAM = "10.0.2.2"


class Collector:
    """The downstream router's receive side: counts prefixes.

    ``eager_attributes`` forces a full path-attribute parse of every
    received UPDATE, the behaviour every receiver had before
    :class:`UpdateMessage` learned to decode attributes lazily — the
    hot-path ablation's legacy arm restores that per-message cost.
    """

    def __init__(self, eager_attributes: bool = False) -> None:
        self.prefixes: set = set()
        self.withdrawn: set = set()
        self.updates = 0
        self._buffer = bytearray()
        self._eager_attributes = eager_attributes

    def receive(self, data: bytes) -> None:
        self._buffer.extend(data)
        for message in split_stream(self._buffer):
            if isinstance(message, UpdateMessage):
                self.updates += 1
                if self._eager_attributes:
                    message.attributes
                for prefix in message.nlri:
                    self.prefixes.add(prefix)
                for prefix in message.withdrawn:
                    self.prefixes.discard(prefix)
                    self.withdrawn.add(prefix)

    def __len__(self) -> int:
        return len(self.prefixes)


class ConvergenceHarness:
    """One Fig. 3 run: upstream → DUT → downstream, timed.

    ``implementation`` picks the DUT ("frr"/"bird"); ``feature`` picks
    the experiment ("route_reflection" or "origin_validation");
    ``mode`` picks the arm ("native" or "extension").
    """

    def __init__(
        self,
        implementation: str,
        feature: str,
        mode: str,
        routes: List[RouteSpec],
        roas: Optional[List[Roa]] = None,
        max_prefixes_per_update: int = 64,
        engine: str = "jit",
        telemetry: bool = True,
        quarantine=None,
        hot_path: bool = True,
        provenance: bool = False,
        profiling: bool = False,
        batch: int = 1,
        shards: int = 1,
        shard_collect: str = "full",
        shard_telemetry: bool = False,
        events=None,
        progress=None,
        heartbeat_every: int = 0,
        timeseries_every: int = 0,
        quarantine_after: int = 0,
        inject_crasher: bool = False,
    ):
        if implementation not in DAEMONS:
            raise ValueError(f"unknown implementation {implementation!r}")
        if feature not in ("route_reflection", "origin_validation", "plain"):
            raise ValueError(f"unknown feature {feature!r}")
        if mode not in ("native", "extension"):
            raise ValueError(f"unknown mode {mode!r}")
        if engine not in ("jit", "interp", "native", "pyext"):
            raise ValueError(f"unknown engine {engine!r}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > 1 and engine == "pyext":
            raise ValueError("sharded replay does not support the pyext engine")
        self.implementation = implementation
        self.feature = feature
        self.mode = mode
        self.engine = engine
        self.routes = routes
        self.roas = roas or []
        self.telemetry_enabled = telemetry
        self.quarantine = quarantine
        #: False re-enables the pre-overhaul per-route work (eager heap
        #: zeroing, no fast path, no marshalling/encode caches) — the
        #: hot-path ablation's legacy arm.
        self.hot_path = hot_path
        #: True turns on the DUT's per-route provenance tracking — the
        #: observability-overhead ablation's "on" arm.
        self.provenance = provenance
        #: True turns on the DUT's phase + PC-level profiler (the
        #: ``xbgp profile`` data source).
        self.profiling = profiling
        #: Telemetry snapshot of the most recent :meth:`run` (or None
        #: when the DUT runs uninstrumented).
        self.last_telemetry: Optional[Dict[str, object]] = None
        #: UPDATEs per decode→decision vector; 1 = the sequential path.
        self.batch = batch
        #: Worker processes the route workload is partitioned across by
        #: prefix range; 1 = single-daemon replay in this process.
        self.shards = shards
        #: Sharded result granularity: "full" merges route-level
        #: snapshots (what parity suites compare); "summary" keeps them
        #: in the workers and merges counts only (what benchmarks use).
        self.shard_collect = shard_collect
        #: Per-shard reports of the most recent sharded :meth:`run`.
        self.shard_result = None
        #: True runs the shard *workers* with telemetry on, shipping
        #: each worker's registry/breakers/trace tail back for the
        #: cross-process merge.  Separate from ``telemetry`` (the
        #: single-daemon default) so the telemetry-off sharded bench
        #: stays at its baseline cost.
        self.shard_telemetry = shard_telemetry
        #: Optional :class:`~repro.telemetry.EventLog` receiving the
        #: schema'd lifecycle events (replay/shard progress, batch
        #: flushes, quarantine trips, convergence signals).
        self.events = events
        #: Optional callable fed every raw heartbeat event (what a
        #: :class:`~repro.telemetry.ReplayProgress` consumes live).
        self.progress = progress
        #: Worker heartbeat cadence in UPDATEs (0 = auto when a sink is
        #: attached, silent otherwise).
        self.heartbeat_every = heartbeat_every
        #: Mid-replay registry sampling cadence in UPDATEs (0 = off).
        #: Needs telemetry on (single-daemon) / shard_telemetry on
        #: (sharded) — there is no registry to sample otherwise.
        self.timeseries_every = timeseries_every
        #: Samples of the most recent :meth:`run` (shard-labeled and
        #: merged for sharded runs), or None.
        self.timeseries: Optional[List[Dict[str, object]]] = None
        #: Breaker error threshold for fault-injection drills (0 keeps
        #: the paper's always-retry default).
        self.quarantine_after = quarantine_after
        #: True attaches the deliberately crashing ``faulty`` plugin.
        self.inject_crasher = inject_crasher
        if quarantine_after > 0 and self.quarantine is None:
            from ..telemetry import QuarantinePolicy

            self.quarantine = QuarantinePolicy(error_threshold=quarantine_after)
        self.collector = Collector(eager_attributes=not hot_path)
        if shards > 1:
            # The DUT lives in the workers; building a parent DUT and
            # pre-encoding a parent feed would only duplicate work.
            self.dut = None
            self.feed = None
            self._max_prefixes_per_update = max_prefixes_per_update
        else:
            self.dut = self._build_dut()
            self._wire()
            self.feed = self._build_feed(max_prefixes_per_update)
            if events is not None and self.dut.vmm.telemetry is not None:
                # Breaker transitions become schema'd quarantine events.
                self.dut.vmm.telemetry.events = events

    # -- construction -------------------------------------------------

    def _build_dut(self):
        from ..core.vmm import VmmConfig
        from . import harness as _self  # noqa: F401 (keep import graph simple)
        from ..plugins import pynative

        daemon_cls = DAEMONS[self.implementation]
        kwargs: Dict[str, object] = {
            "asn": 65001,
            "router_id": _DUT,
            "local_address": _DUT,
        }
        vm_tier = self.engine if self.engine in ("jit", "interp", "native") else "jit"
        kwargs["vmm_config"] = VmmConfig(
            tier=vm_tier,
            telemetry=self.telemetry_enabled,
            quarantine=self.quarantine,
            fast_path=self.hot_path,
            lazy_heap=self.hot_path,
        )
        kwargs["hot_path"] = self.hot_path
        kwargs["provenance"] = self.provenance
        kwargs["profiling"] = self.profiling
        if self.feature == "route_reflection":
            kwargs["route_reflector"] = self.mode
        if self.feature == "origin_validation" and self.mode == "native":
            # FRR natively browses a trie; BIRD natively probes a hash.
            table = TrieRoaTable() if self.implementation == "frr" else HashRoaTable()
            table.extend(self.roas)
            kwargs["roa_table"] = table
        dut = daemon_cls(**kwargs)
        if self.feature == "route_reflection" and self.mode == "extension":
            if self.engine == "pyext":
                dut.attach_program(pynative.route_reflector_program())
            else:
                dut.attach_manifest(route_reflector.build_manifest())
        if self.feature == "origin_validation" and self.mode == "extension":
            if self.engine == "pyext":
                dut.attach_program(pynative.origin_validation_program(self.roas))
            else:
                dut.attach_manifest(origin_validation.build_manifest(self.roas))
        if self.inject_crasher:
            from ..plugins import faulty

            dut.attach_manifest(faulty.build_manifest())
        return dut

    def _wire(self) -> None:
        session_asn = 65001 if self.feature == "route_reflection" else 65100
        downstream_asn = 65001 if self.feature == "route_reflection" else 65200
        upstream = self.dut.add_neighbor(_UPSTREAM, session_asn, lambda data: None)
        downstream = self.dut.add_neighbor(
            _DOWNSTREAM, downstream_asn, self.collector.receive
        )
        if self.feature == "route_reflection":
            upstream.rr_client = True
            downstream.rr_client = True
        for address in (_UPSTREAM, _DOWNSTREAM):
            self.dut._established[parse_ipv4(address)] = True
            self.dut.neighbors[parse_ipv4(address)].established = True

    def _build_feed(self, max_prefixes_per_update: int) -> List[bytes]:
        """Pre-encode the upstream's UPDATE stream (constant cost)."""
        session = "ibgp" if self.feature == "route_reflection" else "ebgp"
        updates = build_updates(
            self.routes,
            next_hop=parse_ipv4(_UPSTREAM),
            session=session,
            sender_asn=65100 if session == "ebgp" else None,
            max_prefixes_per_update=max_prefixes_per_update,
        )
        feed = [update.encode() for update in updates]
        feed.append(UpdateMessage.end_of_rib().encode())
        return feed

    # -- measurement -----------------------------------------------------

    def run(self) -> float:
        """Replay the feed through the DUT; return elapsed seconds.

        Timed span: first byte announced upstream → last prefix seen by
        the downstream collector (checked after the deterministic replay
        drains, mirroring the paper's first-announce-to-last-receive
        delay).  With ``shards > 1`` the workload runs through
        :class:`~repro.scale.ShardedReplay` workers instead and the
        timed span is the parent's dispatch → merge wall clock.
        """
        expected = len(self.routes)
        if self.shards > 1:
            return self._run_sharded(expected)
        sampler = None
        if self.timeseries_every > 0 and self.dut.vmm.telemetry is not None:
            from ..telemetry import TimeSeriesSampler

            sampler = TimeSeriesSampler(self.dut.vmm.telemetry.registry)
        start = time.perf_counter()
        if self.batch > 1:
            from ..scale import BatchProcessor

            processor = BatchProcessor(
                self.dut, batch_size=self.batch, events=self.events
            )
            if sampler is not None:
                since_sample = 0
                for payload in self.feed:
                    processor.receive_raw(_UPSTREAM, payload)
                    since_sample += 1
                    if since_sample >= self.timeseries_every:
                        since_sample = 0
                        sampler.sample()
            else:
                for payload in self.feed:
                    processor.receive_raw(_UPSTREAM, payload)
            processor.flush()
        elif sampler is not None:
            receive = self.dut.receive_raw
            since_sample = 0
            for payload in self.feed:
                receive(_UPSTREAM, payload)
                since_sample += 1
                if since_sample >= self.timeseries_every:
                    since_sample = 0
                    sampler.sample()
        else:
            receive = self.dut.receive_raw
            for payload in self.feed:
                receive(_UPSTREAM, payload)
        elapsed = time.perf_counter() - start
        if len(self.collector) != expected:
            raise RuntimeError(
                f"convergence incomplete: downstream holds "
                f"{len(self.collector)}/{expected} prefixes "
                f"(vmm fallbacks={self.dut.vmm.fallbacks})"
            )
        self.last_telemetry = self.telemetry_snapshot()
        if sampler is not None:
            # Final post-replay sample with gauges refreshed by the
            # telemetry_snapshot() call above.
            sampler.sample()
            self.timeseries = sampler.series.samples()
        if self.events is not None:
            report = self.convergence_report()
            if report is not None:
                from ..telemetry import emit_convergence_events

                emit_convergence_events(self.events, report)
        return elapsed

    def _run_sharded(self, expected: int) -> float:
        from ..scale import ShardedReplay

        replay = ShardedReplay(
            self.implementation,
            self.routes,
            feature=self.feature,
            mode=self.mode,
            roas=self.roas,
            shards=self.shards,
            batch=self.batch,
            tier=self.engine,
            hot_path=self.hot_path,
            max_prefixes_per_update=self._max_prefixes_per_update,
            profiling=self.profiling,
            collect=self.shard_collect,
            telemetry=self.shard_telemetry,
            heartbeat_every=self.heartbeat_every,
            timeseries_every=self.timeseries_every,
            progress=self.progress,
            events=self.events,
            quarantine_after=self.quarantine_after,
            inject_crasher=self.inject_crasher,
        )
        result = replay.run()
        self.shard_result = result
        if result.shard_timeseries is not None:
            self.timeseries = result.merged_timeseries()
        if result.prefixes is not None:
            self.collector.prefixes = {Prefix.parse(p) for p in result.prefixes}
            self.collector.withdrawn = {Prefix.parse(p) for p in result.withdrawn}
            held = len(self.collector)
        else:
            held = result.prefix_count  # shards disjoint: sum == union
        if held != expected:
            raise RuntimeError(
                f"convergence incomplete: downstream holds "
                f"{held}/{expected} prefixes across "
                f"{result.shards} shards"
            )
        self.last_telemetry = self.telemetry_snapshot()
        return result.wall_seconds

    def extension_stats(self) -> Dict[str, Dict[str, int]]:
        return self.dut.vmm.stats() if self.dut is not None else {}

    def telemetry_snapshot(self) -> Optional[Dict[str, object]]:
        """Current telemetry state (gauges refreshed), or None.

        A sharded run has no parent DUT; instead, the workers' per-shard
        counters are re-registered into a parent-side registry so the
        ``xbgp stats`` surface (and the bench instruction totals) keep
        working with ``shards > 1``.  When the workers themselves ran
        with telemetry on (``shard_telemetry=True``), their full
        registries merge in too — every family shard-labeled — and the
        snapshot's health table becomes the workers' breaker rows.
        """
        if self.dut is None:
            if not self.telemetry_enabled or self.shard_result is None:
                return None
            from ..telemetry import Telemetry, merge_into

            telemetry = Telemetry()
            registry = telemetry.registry
            worker_telemetry = self.shard_result.telemetry
            if worker_telemetry is not None:
                merge_into(registry, worker_telemetry["registry"])
            for report in self.shard_result.per_shard:
                shard = str(report["shard"])
                registry.counter(
                    "xbgp_shard_routes", "routes replayed per shard", shard=shard
                ).inc(report["routes"])
                registry.counter(
                    "xbgp_shard_updates", "UPDATEs replayed per shard", shard=shard
                ).inc(report["updates"])
                registry.counter(
                    "xbgp_shard_batches", "UPDATE batches flushed per shard", shard=shard
                ).inc(report["batches"])
                registry.gauge(
                    "xbgp_shard_build_seconds",
                    "worker DUT + feed build wall-clock",
                    shard=shard,
                ).set(report["build_seconds"])
                registry.gauge(
                    "xbgp_shard_replay_seconds",
                    "worker replay wall-clock",
                    shard=shard,
                ).set(report["replay_seconds"])
                pool = report.get("attr_pool") or {}
                registry.counter(
                    "xbgp_shard_attr_pool_hits",
                    "worker AttrPool hits (incl. shipped intern table)",
                    shard=shard,
                ).inc(pool.get("hits", 0))
                registry.counter(
                    "xbgp_shard_attr_pool_misses",
                    "worker AttrPool misses",
                    shard=shard,
                ).inc(pool.get("misses", 0))
                registry.counter(
                    "xbgp_shard_fallbacks", "worker VMM fallbacks", shard=shard
                ).inc(report["fallbacks"])
            snapshot = telemetry.snapshot()
            if worker_telemetry is not None:
                snapshot["health"] = worker_telemetry["health"]
                snapshot["trace"] = {
                    "tail_events": len(worker_telemetry["trace_tail"])
                }
            return snapshot
        telemetry = self.dut.vmm.telemetry
        if telemetry is None:
            return None
        self.dut.update_telemetry_gauges()
        return telemetry.snapshot()

    def convergence_report(self) -> Optional[Dict[str, object]]:
        """The DUT's provenance convergence report, or None when the
        harness runs without provenance."""
        tracker = self.dut.provenance if self.dut is not None else None
        if tracker is None:
            return None
        return tracker.convergence_report()

    def profile_report(self, top: int = 10) -> Optional[Dict[str, object]]:
        """The DUT's profiler report, or None when the harness runs
        without profiling."""
        profiler = self.dut.profiler if self.dut is not None else None
        if profiler is None:
            return None
        return profiler.report(top=top)


def build_explain_scenario(
    implementation: str, prefix: Prefix, engine: str = "jit"
):
    """A small provenance-enabled route-reflection network for ``xbgp
    explain`` and the cross-implementation provenance tests.

    Topology: client ``up`` (BIRD) → RR DUT (``implementation``,
    running the route-reflector *extension*) → client ``down`` (BIRD),
    all iBGP.  ``up`` originates ``prefix`` after sessions settle, so
    the DUT's provenance holds the full causal chain: peer →
    extension runs → attribute writes → decision → export.

    Returns ``(network, up, dut, down)``.
    """
    from ..core.vmm import VmmConfig
    from ..plugins import pynative
    from ..plugins import route_reflector as rr_plugin
    from .network import Network

    if implementation not in DAEMONS:
        raise ValueError(f"unknown implementation {implementation!r}")
    if engine not in ("jit", "interp", "native", "pyext"):
        raise ValueError(f"unknown engine {engine!r}")
    network = Network()
    up = BirdDaemon(asn=65001, router_id="10.0.1.1", provenance=True)
    vm_tier = engine if engine in ("jit", "interp", "native") else "jit"
    dut = DAEMONS[implementation](
        asn=65001,
        router_id="10.0.0.1",
        route_reflector="extension",
        vmm_config=VmmConfig(tier=vm_tier),
        provenance=True,
    )
    down = BirdDaemon(asn=65001, router_id="10.0.2.2", provenance=True)
    if engine == "pyext":
        dut.attach_program(pynative.route_reflector_program())
    else:
        dut.attach_manifest(rr_plugin.build_manifest())
    network.add_router("up", up)
    network.add_router("dut", dut)
    network.add_router("down", down)
    network.connect("up", "10.0.1.1", "dut", "10.0.0.1")
    network.connect("dut", "10.0.0.1", "down", "10.0.2.2")
    network.neighbor_config("dut", "10.0.1.1").rr_client = True
    network.neighbor_config("dut", "10.0.2.2").rr_client = True
    network.establish_all()
    up.originate(prefix)
    network.run()
    return network, up, dut, down
