"""Corpus persistence: minimized divergences as JSON regression seeds.

An entry is fully self-describing — frames/programs are stored as hex,
so replaying it never re-runs the generator.  ``tests/fuzz_corpus/``
holds the checked-in entries; ``tests/integration/
test_fuzz_regressions.py`` replays every one of them in tier-1.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..bgp.prefix import Prefix
from ..bgp.roa import Roa
from .gen import CodecCase, EngineCase, HostCase
from .oracles import Divergence, run_codec_case, run_engine_case, run_host_case

__all__ = [
    "CORPUS_VERSION",
    "case_to_dict",
    "case_from_dict",
    "entry_for",
    "entry_filename",
    "save_entry",
    "load_entry",
    "iter_entries",
    "replay_entry",
]

CORPUS_VERSION = 1

_ORACLES = {
    "codec": run_codec_case,
    "engine": run_engine_case,
    "host": run_host_case,
}


def case_to_dict(case) -> Dict[str, object]:
    if isinstance(case, CodecCase):
        return {
            "kind": "codec",
            "frames": [frame.hex() for frame in case.frames],
            "mutated": case.mutated,
            "chunks": list(case.chunks),
        }
    if isinstance(case, EngineCase):
        return {
            "kind": "engine",
            "program": case.program.hex(),
            "inputs": list(case.inputs),
            "step_budget": case.step_budget,
            "source": case.source,
        }
    if isinstance(case, HostCase):
        events = []
        for event in case.events:
            if event[0] == "frame":
                events.append(["frame", event[1].hex()])
            else:
                events.append(list(event))
        return {
            "kind": "host",
            "plugin": case.plugin,
            "session": case.session,
            "engine": case.engine,
            "events": events,
            "roas": [
                [roa.prefix.network, roa.prefix.length, roa.asn, roa.max_length]
                for roa in case.roas
            ],
            "coord": list(case.coord) if case.coord is not None else None,
        }
    raise TypeError(f"unknown case type {type(case).__name__}")


def case_from_dict(data: Dict[str, object], seed=None):
    kind = data["kind"]
    if kind == "codec":
        return CodecCase(
            seed,
            [bytes.fromhex(frame) for frame in data["frames"]],
            bool(data["mutated"]),
            [int(size) for size in data["chunks"]],
        )
    if kind == "engine":
        return EngineCase(
            seed,
            bytes.fromhex(data["program"]),
            [int(value) for value in data["inputs"]],
            int(data["step_budget"]),
            str(data.get("source", "")),
        )
    if kind == "host":
        events = []
        for event in data["events"]:
            if event[0] == "frame":
                events.append(("frame", bytes.fromhex(event[1])))
            else:
                events.append(tuple(event))
        roas = [
            Roa(Prefix(int(network), int(length)), int(asn), int(max_length))
            for network, length, asn, max_length in data["roas"]
        ]
        coord = tuple(data["coord"]) if data.get("coord") is not None else None
        return HostCase(
            seed,
            data["plugin"],
            str(data["session"]),
            events,
            roas,
            coord,
            str(data.get("engine", "jit")),
        )
    raise ValueError(f"unknown case kind {kind!r}")


def entry_for(case, divergence: Divergence) -> Dict[str, object]:
    return {
        "version": CORPUS_VERSION,
        "oracle": divergence.oracle,
        "signature": divergence.signature,
        "detail": divergence.detail,
        "seed": case.seed,
        "case": case_to_dict(case),
    }


def entry_filename(entry: Dict[str, object]) -> str:
    digest = hashlib.sha1(str(entry["signature"]).encode()).hexdigest()[:10]
    return f"{entry['oracle']}-{digest}.json"


def save_entry(directory, entry: Dict[str, object]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_filename(entry)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def iter_entries(directory) -> Iterator[Path]:
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path


def replay_entry(entry: Dict[str, object]) -> Optional[Divergence]:
    """Re-run the recorded case through its oracle.

    Returns the (fresh) divergence, or None once the underlying bug is
    fixed — which is exactly what the regression test asserts.
    """
    case = case_from_dict(entry["case"], seed=entry.get("seed"))
    oracle = _ORACLES[str(entry["case"]["kind"])]
    return oracle(case)
