"""Structure-aware input generation for the differential fuzzer.

Three case kinds, all derived deterministically from an integer seed:

* :func:`gen_codec_case` — a BGP UPDATE stream (announcements built by
  :mod:`repro.workload.rib_gen`, interleaved withdrawals, optional
  End-of-RIB) plus a mutation layer that corrupts frames (bit flips,
  truncation, length-field tweaks) to exercise rejection paths;
* :func:`gen_engine_case` — a small eBPF program emitted as assembler
  text and assembled with :func:`repro.ebpf.assembler.assemble`; the
  emitter tracks register initialisation and stack bounds so every
  generated program passes the static verifier, while still covering
  ALU ops, byte swaps, loops, branches, helper calls and heap traffic;
* :func:`gen_host_case` — a daemon-level scenario: a plugin manifest
  (or none), a session kind, and an event stream mixing UPDATE frames
  with mid-stream peer-configuration mutations (the events that flush
  the marshalling caches PR 2 added).

Generation is pure: the same seed always yields byte-identical cases,
so a campaign is reproducible from its master seed alone.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..bgp.messages import UpdateMessage
from ..bgp.prefix import parse_ipv4
from ..bgp.roa import Roa
from ..ebpf.assembler import assemble
from ..ebpf.isa import Instruction, encode_program
from ..ebpf.verifier import VerifierConfig, verify
from ..workload.rib_gen import RibGenerator, RouteSpec, build_updates, origins_of

__all__ = [
    "FUZZ_HELPER_IDS",
    "CodecCase",
    "EngineCase",
    "HostCase",
    "gen_codec_case",
    "gen_engine_case",
    "gen_host_case",
    "gen_oob_stack_source",
    "gen_oob_pointer_source",
]

#: Helper ids for the engine oracle's self-contained helper table
#: (:func:`repro.fuzz.oracles.make_fuzz_helpers`) — not the xBGP ABI.
FUZZ_HELPER_IDS = {"probe": 1, "halloc": 2, "peek": 3, "checkz": 4}

#: Size of every ``halloc`` heap block; generated accesses stay inside.
HALLOC_BLOCK = 64

_UPSTREAM = "10.0.1.2"
_PEER_FIELDS = ("rr_client", "cluster_id")


# -- case containers ---------------------------------------------------


class CodecCase:
    """An UPDATE frame stream plus its reassembly chunking plan."""

    __slots__ = ("seed", "frames", "mutated", "chunks")

    def __init__(self, seed, frames: Sequence[bytes], mutated: bool, chunks: Sequence[int]):
        self.seed = seed
        self.frames: Tuple[bytes, ...] = tuple(frames)
        self.mutated = mutated
        self.chunks: Tuple[int, ...] = tuple(chunks)


class EngineCase:
    """An assembled program plus inputs and an instruction budget."""

    __slots__ = ("seed", "program", "inputs", "step_budget", "source")

    def __init__(self, seed, program: bytes, inputs: Sequence[int], step_budget: int, source: str = ""):
        self.seed = seed
        self.program = program
        self.inputs: Tuple[int, ...] = tuple(inputs)
        self.step_budget = step_budget
        self.source = source


class HostCase:
    """A daemon scenario: plugin, session and an event stream.

    ``events`` entries are ``("frame", bytes)`` — an UPDATE fed from
    the upstream peer — or ``("peer", role, field, value)`` — a
    mid-stream configuration change on the upstream/downstream
    :class:`~repro.bgp.peer.Neighbor` (exactly the mutations the
    ``pack_peer_info`` memo must notice).
    """

    __slots__ = ("seed", "plugin", "session", "events", "roas", "coord", "engine")

    def __init__(
        self,
        seed,
        plugin: Optional[str],
        session: str,
        events: Sequence[tuple],
        roas: Sequence[Roa] = (),
        coord: Optional[Tuple[float, float]] = None,
        engine: str = "jit",
    ):
        self.seed = seed
        self.plugin = plugin
        self.session = session
        self.events: Tuple[tuple, ...] = tuple(events)
        self.roas: Tuple[Roa, ...] = tuple(roas)
        self.coord = coord
        self.engine = engine


# -- shared building blocks --------------------------------------------


def _gen_routes(rng: random.Random, max_routes: int) -> List[RouteSpec]:
    generator = RibGenerator(
        n_routes=rng.randint(1, max_routes),
        n_ases=rng.randint(10, 40),  # AsTopology needs n_tier1 (8) + 2
        seed=rng.randrange(1 << 32),
        prepend_probability=round(rng.random() * 0.5, 3),
        med_probability=round(rng.random(), 3),
        community_probability=round(rng.random(), 3),
    )
    return generator.generate()


def _announce_frames(rng: random.Random, routes, session: str) -> List[bytes]:
    updates = build_updates(
        routes,
        next_hop=parse_ipv4(_UPSTREAM),
        session=session,
        sender_asn=rng.randint(1, 64000) if session == "ebgp" else None,
        max_prefixes_per_update=rng.randint(1, 16),
    )
    return [update.encode() for update in updates]


def _insert_withdrawals(rng: random.Random, frames: List[bytes], routes) -> None:
    prefixes = [spec.prefix for spec in routes]
    for _ in range(rng.randint(0, 3)):
        count = min(len(prefixes), rng.randint(1, 5))
        subset = rng.sample(prefixes, count)
        frame = UpdateMessage(withdrawn=subset).encode()
        frames.insert(rng.randint(0, len(frames)), frame)


# -- codec cases -------------------------------------------------------


def _mutate_frame(rng: random.Random, frame: bytes) -> bytes:
    data = bytearray(frame)
    strategy = rng.randrange(6)
    if strategy == 0 and data:  # flip a random byte
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
    elif strategy == 1 and len(data) > 19:  # truncate the tail
        del data[rng.randrange(19, len(data)):]
    elif strategy == 2:  # insert garbage bytes
        index = rng.randrange(len(data) + 1)
        data[index:index] = bytes(rng.randrange(256) for _ in range(rng.randint(1, 4)))
    elif strategy == 3 and len(data) >= 18:  # corrupt the header length
        delta = rng.choice((-7, -1, 1, 6, 4000))
        length = max(0, min(0xFFFF, int.from_bytes(data[16:18], "big") + delta))
        data[16:18] = length.to_bytes(2, "big")
    elif strategy == 4 and len(data) >= 21:  # corrupt withdrawn-length
        data[19] ^= 1 << rng.randrange(8)
    elif len(data) > 23:  # corrupt a body byte (attr flags / lengths)
        index = rng.randrange(23, len(data))
        data[index] ^= 1 << rng.randrange(8)
    return bytes(data)


def _chunk_plan(rng: random.Random) -> List[int]:
    """A cycle of chunk sizes for the stream-reassembly oracle."""
    return [rng.randint(1, 61) for _ in range(rng.randint(1, 8))]


def gen_codec_case(seed) -> CodecCase:
    rng = random.Random(f"codec-{seed}")
    routes = _gen_routes(rng, max_routes=40)
    session = rng.choice(("ibgp", "ebgp"))
    frames = _announce_frames(rng, routes, session)
    _insert_withdrawals(rng, frames, routes)
    if rng.random() < 0.5:
        frames.append(UpdateMessage.end_of_rib().encode())
    mutated = rng.random() < 0.45
    if mutated:
        for _ in range(rng.randint(1, 4)):
            index = rng.randrange(len(frames))
            frames[index] = _mutate_frame(rng, frames[index])
    return CodecCase(seed, frames, mutated, _chunk_plan(rng))


# -- engine cases ------------------------------------------------------

_ALU_BINOPS = (
    "add", "sub", "mul", "div", "mod", "or", "and", "xor",
    "lsh", "rsh", "arsh",
    "add32", "sub32", "mul32", "div32", "or32", "and32", "xor32",
    "lsh32", "rsh32", "mov32",
)
_SWAPS = ("be16", "be32", "be64", "le16", "le32", "le64")
_COND_JUMPS = ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jslt", "jset")
_MEM_WIDTHS = ((1, "b"), (2, "h"), (4, "w"), (8, "dw"))


class _ProgramEmitter:
    """Emits assembler text that passes the static verifier by
    construction: conservative register-init tracking, forward-only
    branches whose bodies write no new registers, bounded counter
    loops, and stack/heap accesses inside the verified bounds."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.lines: List[str] = []
        self.inited = set(range(6)) | {10}
        self.heap_regs: List[int] = []
        self.labels = 0
        # (offset, size) stack slots already stored this program: loads
        # only read these, because xc-compiled plugins write before
        # reading and the engines deliberately differ on uninitialised
        # stack (the interpreter's bytes persist across runs, the JIT
        # zero-inits promoted slots per run).
        self.stack_written: List[Tuple[int, int]] = []

    def label(self) -> str:
        self.labels += 1
        return f"L{self.labels}"

    def _reg(self, writable: bool = False) -> int:
        pool = [r for r in self.inited if r != 10] if not writable else list(range(10))
        return self.rng.choice(pool)

    def emit_alu(self) -> None:
        rng = self.rng
        dst = rng.choice(sorted(r for r in self.inited if r != 10))
        if rng.random() < 0.15:
            self.lines.append(f"{rng.choice(_SWAPS)} r{dst}")
            return
        if rng.random() < 0.1:
            self.lines.append(f"neg r{dst}")
            return
        op = rng.choice(_ALU_BINOPS)
        if rng.random() < 0.5:
            src = rng.choice(sorted(r for r in self.inited if r != 10))
            self.lines.append(f"{op} r{dst}, r{src}")
        else:
            imm = rng.randrange(1, 64) if op.startswith(("div", "mod", "lsh", "rsh", "arsh")) else rng.randrange(-(1 << 15), 1 << 15)
            self.lines.append(f"{op} r{dst}, {imm}")

    def emit_mov_init(self) -> None:
        """Initialise an r6-r9 scratch register."""
        rng = self.rng
        candidates = [r for r in range(6, 10) if r not in self.heap_regs]
        if not candidates:
            self.emit_alu()
            return
        dst = rng.choice(candidates)
        if rng.random() < 0.3:
            self.lines.append(f"lddw r{dst}, {rng.randrange(1 << 63):#x}")
        else:
            self.lines.append(f"mov r{dst}, {rng.randrange(-(1 << 31), 1 << 31)}")
        self.inited.add(dst)

    def _stack_slot(self, size: int) -> int:
        count = 448 // size  # keep [-512, -456) free for the epilogue
        return -size * self.rng.randint(1, count)

    def emit_stack(self) -> None:
        rng = self.rng
        if rng.random() < 0.55 or not self.stack_written:
            size, suffix = rng.choice(_MEM_WIDTHS)
            offset = self._stack_slot(size)
            src = rng.choice(sorted(r for r in self.inited if r != 10))
            self.lines.append(f"stx{suffix} [r10{offset:+d}], r{src}")
            self.stack_written.append((offset, size))
        else:
            offset, size = rng.choice(self.stack_written)
            suffix = dict((s, x) for s, x in _MEM_WIDTHS)[size]
            dst = rng.choice(sorted(r for r in self.inited if r != 10))
            self.lines.append(f"ldx{suffix} r{dst}, [r10{offset:+d}]")

    def emit_helper(self) -> None:
        rng = self.rng
        kind = rng.choice(("probe", "halloc", "peek", "heap_rw", "checkz"))
        if kind == "probe":
            for reg in rng.sample(range(1, 6), rng.randint(0, 3)):
                self.lines.append(f"mov r{reg}, {rng.randrange(-(1 << 15), 1 << 15)}")
            self.lines.append("call probe")
        elif kind == "halloc":
            candidates = [r for r in range(6, 10) if r not in self.heap_regs]
            if not candidates:
                self.lines.append("call probe")
                return
            self.lines.append("call halloc")
            dst = rng.choice(candidates)
            self.lines.append(f"mov r{dst}, r0")
            self.heap_regs.append(dst)
            self.inited.add(dst)
        elif kind == "peek" and self.heap_regs:
            base = rng.choice(self.heap_regs)
            self.lines.append(f"mov r1, r{base}")
            self.lines.append(f"add r1, {rng.randrange(0, HALLOC_BLOCK - 8)}")
            self.lines.append(f"mov r2, {rng.randrange(0, 16)}")
            self.lines.append("call peek")
        elif kind == "heap_rw" and self.heap_regs:
            base = rng.choice(self.heap_regs)
            size, suffix = rng.choice(_MEM_WIDTHS)
            offset = rng.randrange(0, (HALLOC_BLOCK - size) // size + 1) * size
            if rng.random() < 0.5:
                src = rng.choice(sorted(r for r in self.inited if r != 10))
                self.lines.append(f"stx{suffix} [r{base}+{offset}], r{src}")
            else:
                dst = rng.choice(sorted(r for r in self.inited if r not in (10, base)))
                self.lines.append(f"ldx{suffix} r{dst}, [r{base}+{offset}]")
        elif kind == "checkz":
            imm = 0 if rng.random() < 0.12 else rng.randint(1, 7)
            self.lines.append(f"mov r1, {imm}")
            self.lines.append("call checkz")
        else:
            self.lines.append("call probe")

    def emit_branch(self) -> None:
        rng = self.rng
        label = self.label()
        cond = rng.choice(_COND_JUMPS)
        dst = rng.choice(sorted(r for r in self.inited if r != 10))
        if rng.random() < 0.5:
            operand = f"r{rng.choice(sorted(r for r in self.inited if r != 10))}"
        else:
            operand = str(rng.randrange(0, 1 << 15))
        self.lines.append(f"{cond} r{dst}, {operand}, {label}")
        for _ in range(rng.randint(1, 3)):
            self.emit_alu()  # writes only already-inited regs
        self.lines.append(f"{label}:")

    def emit_loop(self) -> None:
        rng = self.rng
        candidates = [r for r in range(6, 10) if r not in self.heap_regs]
        if not candidates:
            self.emit_alu()
            return
        counter = rng.choice(candidates)
        self.inited.add(counter)
        label = self.label()
        self.lines.append(f"mov r{counter}, {rng.randint(1, 40)}")
        self.lines.append(f"{label}:")
        for _ in range(rng.randint(1, 3)):
            self.emit_alu()
        self.lines.append(f"sub r{counter}, 1")
        self.lines.append(f"jne r{counter}, 0, {label}")

    def emit_wild_pointer(self) -> None:
        """A dereference of an unmapped address: both engines must
        raise the same :class:`SandboxViolation`."""
        rng = self.rng
        candidates = [r for r in range(6, 10) if r not in self.heap_regs]
        if not candidates:
            return
        reg = rng.choice(candidates)
        self.inited.add(reg)
        address = 0x5000_0000 + rng.randrange(1 << 16)
        self.lines.append(f"lddw r{reg}, {address:#x}")
        size, suffix = rng.choice(_MEM_WIDTHS)
        self.lines.append(f"ldx{suffix} r0, [r{reg}+0]")

    def emit_epilogue(self) -> None:
        # Fold every live register into r0 and snapshot them to a
        # reserved stack window so the oracle's stack comparison sees
        # the full register file, then return.
        live = sorted(r for r in self.inited if r != 10)
        for index, reg in enumerate(live[:7]):
            self.lines.append(f"stxdw [r10-{456 + 8 * index}], r{reg}")
        self.lines.append("mov r0, 0")
        for reg in live:
            self.lines.append(f"add r0, r{reg}")
        self.lines.append("exit")

    def build(self) -> str:
        rng = self.rng
        for _ in range(rng.randint(1, 3)):
            self.emit_mov_init()
        emitters = (
            (self.emit_alu, 8),
            (self.emit_stack, 4),
            (self.emit_helper, 4),
            (self.emit_branch, 3),
            (self.emit_loop, 2),
            (self.emit_mov_init, 1),
        )
        population = [fn for fn, weight in emitters for _ in range(weight)]
        for _ in range(rng.randint(6, 28)):
            rng.choice(population)()
        if rng.random() < 0.06:
            self.emit_wild_pointer()
        self.emit_epilogue()
        return "\n".join(self.lines) + "\n"


def gen_engine_case(seed) -> EngineCase:
    rng = random.Random(f"engine-{seed}")
    config = VerifierConfig(
        max_instructions=4096,
        allow_loops=True,
        allowed_helpers=set(FUZZ_HELPER_IDS.values()),
    )
    last_error = None
    for attempt in range(5):
        sub = random.Random(f"engine-{seed}-{attempt}")
        source = _ProgramEmitter(sub).build()
        try:
            program = assemble(source, FUZZ_HELPER_IDS)
            verify(program, config)
        except Exception as exc:  # generator bug — try a sibling seed
            last_error = exc
            continue
        inputs = tuple(rng.randrange(1 << 64) for _ in range(5))
        # Small budgets force budget blowouts through loops, checking
        # that both engines agree on the (normalised) outcome.
        step_budget = rng.choice((40, 120, 600, 4096))
        return EngineCase(seed, encode_program(program), inputs, step_budget, source)
    raise RuntimeError(f"engine generator produced unverifiable programs for seed {seed}: {last_error}")


def gen_oob_stack_source(seed) -> str:
    """A program with one statically out-of-bounds stack access; the
    verifier must reject it (unit-test fodder)."""
    rng = random.Random(f"oob-stack-{seed}")
    emitter = _ProgramEmitter(rng)
    emitter.emit_mov_init()
    for _ in range(rng.randint(0, 4)):
        emitter.emit_alu()
    size, suffix = rng.choice(_MEM_WIDTHS)
    bad_offsets = [
        -(512 + size * rng.randint(1, 8)),  # below the frame
        8 * rng.randint(1, 4),              # above r10
        0 if size > 0 else 8,               # offset+size crosses r10
        -(size - 1) if size > 1 else 8,     # straddles the top
    ]
    offset = rng.choice(bad_offsets)
    if rng.random() < 0.5:
        src = rng.choice(sorted(r for r in emitter.inited if r != 10))
        emitter.lines.append(f"stx{suffix} [r10{offset:+d}], r{src}")
    else:
        emitter.lines.append(f"ldx{suffix} r1, [r10{offset:+d}]")
    emitter.emit_epilogue()
    return "\n".join(emitter.lines) + "\n"


def gen_oob_pointer_source(seed) -> str:
    """A program whose heap pointer walks out of the sandbox: passes
    the static verifier but must fault identically on both engines."""
    rng = random.Random(f"oob-heap-{seed}")
    offset = rng.choice((1 << 20, 1 << 24)) + rng.randrange(1 << 12)
    size, suffix = rng.choice(_MEM_WIDTHS)
    return (
        "call halloc\n"
        "mov r6, r0\n"
        f"add r6, {offset}\n"
        f"ldx{suffix} r0, [r6+0]\n"
        "exit\n"
    )


# -- host cases --------------------------------------------------------

_PLUGINS = (None, "route_reflector", "origin_validation", "geoloc")


def gen_host_case(seed) -> HostCase:
    rng = random.Random(f"host-{seed}")
    plugin = rng.choice(_PLUGINS)
    session = "ibgp" if plugin == "route_reflector" else "ebgp"
    routes = _gen_routes(rng, max_routes=28)
    frames = _announce_frames(rng, routes, session)
    _insert_withdrawals(rng, frames, routes)
    if rng.random() < 0.4 and frames:  # duplicate re-advertisement
        frame = rng.choice(frames)
        frames.insert(rng.randint(0, len(frames)), frame)
    events: List[tuple] = [("frame", frame) for frame in frames]
    for _ in range(rng.randint(0, 2)):
        role = rng.choice(("upstream", "downstream"))
        field = rng.choice(_PEER_FIELDS)
        value = (rng.random() < 0.5) if field == "rr_client" else rng.randrange(1 << 32)
        events.insert(rng.randint(0, len(events)), ("peer", role, field, value))
    events.append(("frame", UpdateMessage.end_of_rib().encode()))

    roas: List[Roa] = []
    if plugin == "origin_validation":
        pairs = origins_of(routes)
        for prefix, asn in rng.sample(pairs, min(len(pairs), rng.randint(1, 12))):
            bad = rng.random() < 0.3
            roas.append(
                Roa(
                    prefix,
                    asn + 1 if bad else asn,
                    min(32, prefix.length + rng.randint(0, 4)),
                )
            )
    coord = None
    if plugin == "geoloc":
        coord = (round(rng.uniform(-60.0, 60.0), 4), round(rng.uniform(-170.0, 170.0), 4))
    engine = rng.choice(("jit", "interp"))
    return HostCase(seed, plugin, session, events, roas, coord, engine)
