"""Campaign driver: generate → oracle → dedup → minimize → persist.

Deterministic end to end: the master seed fixes every case (oracle
kinds rotate round-robin so a short budget still covers all three),
divergences are deduplicated by signature, and each *new* signature is
delta-debugged (classic ddmin over the frame/event stream) before its
corpus entry is written.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .corpus import entry_for, save_entry
from .gen import (
    CodecCase,
    HostCase,
    gen_codec_case,
    gen_engine_case,
    gen_host_case,
)
from .oracles import Divergence, run_codec_case, run_engine_case, run_host_case

__all__ = ["FuzzRunner", "ddmin"]

_KINDS: Dict[str, tuple] = {
    "codec": (gen_codec_case, run_codec_case),
    "engine": (gen_engine_case, run_engine_case),
    "host": (gen_host_case, run_host_case),
}


def ddmin(items: Sequence, predicate: Callable[[list], bool], max_calls: int = 160) -> list:
    """Zeller's ddmin: smallest sublist of ``items`` still satisfying
    ``predicate``, under a predicate-call budget."""
    items = list(items)
    calls = 0
    granularity = 2
    while len(items) >= 2 and calls < max_calls:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk :]
            if not complement:
                continue
            calls += 1
            if predicate(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if calls >= max_calls:
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


class FuzzRunner:
    """One fuzzing campaign over the three differential oracles."""

    def __init__(
        self,
        seed: int = 0,
        iterations: int = 100,
        time_budget: Optional[float] = None,
        oracles: Sequence[str] = ("codec", "engine", "host"),
        corpus_dir=None,
        minimize: bool = True,
        max_minimize_calls: int = 160,
    ):
        for kind in oracles:
            if kind not in _KINDS:
                raise ValueError(f"unknown oracle {kind!r} (have {sorted(_KINDS)})")
        self.seed = seed
        self.iterations = iterations
        self.time_budget = time_budget
        self.oracles = tuple(oracles)
        self.corpus_dir = corpus_dir
        self.minimize = minimize
        self.max_minimize_calls = max_minimize_calls

    # -- minimization ------------------------------------------------------

    def _same_signature(self, kind: str, signature: str) -> Callable:
        oracle = _KINDS[kind][1]

        def still_fails(case) -> bool:
            divergence = oracle(case)
            return divergence is not None and divergence.signature == signature

        return still_fails

    def _minimize_case(self, kind: str, case, signature: str):
        still_fails = self._same_signature(kind, signature)
        if kind == "codec":
            frames = ddmin(
                case.frames,
                lambda sub: still_fails(CodecCase(case.seed, sub, case.mutated, case.chunks)),
                self.max_minimize_calls,
            )
            return CodecCase(case.seed, frames, case.mutated, case.chunks)
        if kind == "host":
            events = ddmin(
                case.events,
                lambda sub: still_fails(
                    HostCase(
                        case.seed,
                        case.plugin,
                        case.session,
                        sub,
                        case.roas,
                        case.coord,
                        case.engine,
                    )
                ),
                self.max_minimize_calls,
            )
            return HostCase(
                case.seed, case.plugin, case.session, events, case.roas, case.coord, case.engine
            )
        return case  # engine cases: the stream is the program; kept as-is

    # -- the campaign ------------------------------------------------------

    def run(self) -> Dict[str, object]:
        started = time.perf_counter()
        cases_run: Dict[str, int] = {kind: 0 for kind in self.oracles}
        divergences: List[Dict[str, object]] = []
        corpus_files: List[str] = []
        seen: Dict[str, int] = {}
        iterations_run = 0
        for index in range(self.iterations):
            if (
                self.time_budget is not None
                and time.perf_counter() - started >= self.time_budget
            ):
                break
            kind = self.oracles[index % len(self.oracles)]
            generate, oracle = _KINDS[kind]
            case_seed = self.seed * 1_000_003 + index
            case = generate(case_seed)
            divergence = oracle(case)
            iterations_run += 1
            cases_run[kind] += 1
            if divergence is None:
                continue
            if divergence.signature in seen:
                seen[divergence.signature] += 1
                continue
            seen[divergence.signature] = 1
            minimized = (
                self._minimize_case(kind, case, divergence.signature)
                if self.minimize
                else case
            )
            entry = entry_for(minimized, divergence)
            record = {
                "oracle": divergence.oracle,
                "signature": divergence.signature,
                "detail": divergence.detail,
                "seed": case_seed,
                "minimized_length": _case_length(minimized),
                "original_length": _case_length(case),
            }
            if self.corpus_dir is not None:
                path = save_entry(self.corpus_dir, entry)
                record["corpus_file"] = str(path)
                corpus_files.append(str(path))
            divergences.append(record)
        duplicates = {sig: count for sig, count in seen.items() if count > 1}
        return {
            "seed": self.seed,
            "oracles": list(self.oracles),
            "iterations_requested": self.iterations,
            "iterations_run": iterations_run,
            "cases": cases_run,
            "elapsed_seconds": round(time.perf_counter() - started, 3),
            "divergences": divergences,
            "duplicate_hits": duplicates,
            "corpus_files": corpus_files,
            "clean": not divergences,
        }


def _case_length(case) -> int:
    if isinstance(case, CodecCase):
        return len(case.frames)
    if isinstance(case, HostCase):
        return len(case.events)
    return len(case.program) // 8
