"""Differential fuzzing & conformance subsystem.

PR 2 forked every hot-path component into legacy/fast arms; the paper's
§2.1 claim is that the *same* bytecode behaves identically on FRR and
BIRD.  Both give the fuzzer free oracles:

* **codec** — decode → re-encode round trips (lazy verbatim re-encode
  vs eager attribute rebuild, plus stream-reassembly determinism);
* **engine** — interpreter vs JIT on generated programs: same result,
  helper-call sequence, step counts, and memory effects, under both
  lazy-zero and eager heap arms;
* **host** — the same plugin manifest on FRR and BIRD over the same
  event stream → identical Loc-RIB and export sets, with
  ``VmmConfig(fast_path/lazy_heap)`` on vs off.

:mod:`repro.fuzz.gen` produces the seeded-random inputs,
:mod:`repro.fuzz.oracles` runs the comparisons,
:mod:`repro.fuzz.runner` drives campaigns (dedup + ddmin minimisation),
and :mod:`repro.fuzz.corpus` persists minimized divergences as JSON
regression seeds under ``tests/fuzz_corpus/``.
"""

from .gen import CodecCase, EngineCase, HostCase, gen_codec_case, gen_engine_case, gen_host_case
from .oracles import Divergence, run_codec_case, run_engine_case, run_host_case
from .corpus import load_entry, replay_entry, save_entry
from .runner import FuzzRunner

__all__ = [
    "CodecCase",
    "EngineCase",
    "HostCase",
    "Divergence",
    "FuzzRunner",
    "gen_codec_case",
    "gen_engine_case",
    "gen_host_case",
    "run_codec_case",
    "run_engine_case",
    "run_host_case",
    "save_entry",
    "load_entry",
    "replay_entry",
]
