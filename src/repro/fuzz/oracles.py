"""The three differential oracles.

Every oracle returns ``None`` (no divergence) or a :class:`Divergence`
carrying a *stable signature* — the dedup key a campaign uses to group
repeated findings — plus human-oriented detail.  Unexpected exceptions
anywhere in an oracle are themselves findings (``*:crash:*``), never
silent skips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.messages import UpdateMessage, decode_message, split_stream
from ..bgp.prefix import parse_ipv4
from ..core.vmm import VmmConfig
from ..ebpf.helpers import HelperError, HelperTable
from ..ebpf.isa import decode_program
from ..ebpf.memory import SandboxViolation, VmMemory
from ..ebpf.vm import ExecutionError, VirtualMachine
from ..plugins import geoloc, origin_validation, route_reflector
from ..sim.harness import DAEMONS, Collector
from .gen import FUZZ_HELPER_IDS, HALLOC_BLOCK, CodecCase, EngineCase, HostCase

__all__ = [
    "Divergence",
    "make_fuzz_helpers",
    "run_codec_case",
    "run_engine_case",
    "run_host_case",
]

_M64 = (1 << 64) - 1

_UPSTREAM = "10.0.1.2"
_DUT = "10.0.0.1"
_DOWNSTREAM = "10.0.2.2"


class Divergence:
    """One oracle disagreement (or crash), dedup-keyed by signature."""

    __slots__ = ("oracle", "signature", "detail")

    def __init__(self, oracle: str, signature: str, detail: str):
        self.oracle = oracle
        self.signature = signature
        self.detail = detail

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "signature": self.signature, "detail": self.detail}

    def __repr__(self) -> str:
        return f"Divergence({self.signature!r})"


def _crash(oracle: str, where: str, exc: BaseException) -> Divergence:
    return Divergence(
        oracle,
        f"{oracle}:crash:{where}:{type(exc).__name__}",
        f"unexpected {type(exc).__name__} in {where}: {exc}",
    )


# -- codec oracle ------------------------------------------------------


def _attr_key(attribute) -> Tuple[int, int, bytes]:
    return (attribute.type_code, attribute.flags, attribute.value)


def _check_update_frame(frame: bytes, strict: bool) -> Optional[Divergence]:
    """Round-trip one frame through the lazy and eager codec paths."""
    try:
        message, consumed = decode_message(frame)
    except ValueError:
        return None  # deterministic rejection is an acceptable outcome
    wire = frame[:consumed]

    if not isinstance(message, UpdateMessage):
        # Non-UPDATE types: require encode/decode to reach a fixpoint.
        reencoded = message.encode()
        second, _ = decode_message(reencoded)
        if second.encode() != reencoded:
            return Divergence(
                "codec",
                f"codec:fixpoint:{type(message).__name__}",
                f"{type(message).__name__} re-encode is not a fixpoint",
            )
        return None

    # Lazy path: a decoded UPDATE re-emits its attribute bytes verbatim.
    lazy = message.encode()
    if lazy != wire:
        if strict:
            return Divergence(
                "codec",
                "codec:lazy-roundtrip",
                f"valid frame not byte-identical after decode/encode "
                f"(in {len(wire)}B, out {len(lazy)}B)",
            )
        # Mutated frames may legitimately normalise (prefix trailing
        # bits are masked) — but normalisation must reach a fixpoint
        # with identical semantics.
        try:
            second, _ = decode_message(lazy)
        except ValueError as exc:
            return Divergence(
                "codec",
                "codec:normalized-reject",
                f"re-encoded frame no longer decodes: {exc}",
            )
        if second.encode() != lazy:
            return Divergence("codec", "codec:fixpoint:UpdateMessage", "normalisation is not a fixpoint")
        if second.withdrawn != message.withdrawn or second.nlri != message.nlri:
            return Divergence("codec", "codec:normalized-semantics", "prefixes changed across re-encode")

    # Eager path: parse attributes, rebuild the message from them.
    try:
        attributes = message.attributes
    except ValueError:
        # Attribute *content* errors surface lazily by design; the
        # failed parse must not corrupt the verbatim re-encode.
        if message.encode() != lazy:
            return Divergence(
                "codec",
                "codec:lazy-cache-corruption",
                "encode() changed after a failed attribute parse",
            )
        return None

    rebuilt = UpdateMessage(message.withdrawn, attributes, message.nlri)
    eager = rebuilt.encode()
    try:
        third, _ = decode_message(eager)
        reparsed = third.attributes
    except ValueError as exc:
        return Divergence(
            "codec",
            "codec:eager-reject",
            f"eagerly rebuilt frame no longer decodes: {exc}",
        )
    if (
        third.withdrawn != message.withdrawn
        or third.nlri != message.nlri
        or sorted(map(_attr_key, reparsed)) != sorted(map(_attr_key, attributes))
    ):
        return Divergence(
            "codec",
            "codec:eager-semantics",
            "lazy and eager paths disagree on message semantics",
        )
    if third.encode() != eager:
        return Divergence("codec", "codec:eager-fixpoint", "eager re-encode is not a fixpoint")
    return None


def _drain(stream: bytes, chunks: Sequence[int]) -> Tuple[tuple, Optional[str]]:
    """Feed ``stream`` through :func:`split_stream` in ``chunks``-sized
    pieces (cycled); return (message summaries, error class or None)."""
    buffer = bytearray()
    seen: List[tuple] = []
    error: Optional[str] = None
    offset = 0
    index = 0
    while offset < len(stream):
        size = chunks[index % len(chunks)]
        index += 1
        buffer.extend(stream[offset : offset + size])
        offset += size
        try:
            for message in split_stream(buffer):
                if isinstance(message, UpdateMessage):
                    seen.append(
                        ("update", message.withdrawn, message.nlri, message._attrs_wire)
                    )
                else:
                    seen.append((type(message).__name__, message.encode()))
        except ValueError as exc:
            error = type(exc).__name__
            break
    if error is None:
        # A malformed frame at the head of the buffer only raises on
        # the *next* split_stream call; flush it so the error surfaces
        # regardless of how the chunk plan aligned with frame ends.
        try:
            split_stream(buffer)
        except ValueError as exc:
            error = type(exc).__name__
    return tuple(seen), error


def run_codec_case(case: CodecCase) -> Optional[Divergence]:
    try:
        for position, frame in enumerate(case.frames):
            divergence = _check_update_frame(frame, strict=not case.mutated)
            if divergence is not None:
                divergence.detail = f"frame {position}: {divergence.detail}"
                return divergence
        stream = b"".join(case.frames)
        whole = _drain(stream, (len(stream) or 1,))
        chunked = _drain(stream, case.chunks)
        if whole != chunked:
            return Divergence(
                "codec",
                "codec:reassembly",
                f"split_stream outcome depends on chunking "
                f"(whole={len(whole[0])} msgs err={whole[1]}, "
                f"chunked={len(chunked[0])} msgs err={chunked[1]})",
            )
    except Exception as exc:  # noqa: BLE001 — crashes are findings
        return _crash("codec", "codec-oracle", exc)
    return None


# -- engine oracle -----------------------------------------------------


def make_fuzz_helpers(calls: list) -> HelperTable:
    """A tiny self-contained helper table recording its call sequence.

    ``probe`` mixes its five arguments (and the call ordinal) into a
    deterministic value, ``halloc`` hands out :data:`HALLOC_BLOCK`-byte
    heap blocks, ``peek`` reads VM memory (and can fault), ``checkz``
    raises :class:`HelperError` on a zero argument — covering the
    return/abort paths the xBGP helper glue exercises.
    """
    table = HelperTable()

    def probe(vm, r1, r2, r3, r4, r5):
        calls.append(("probe", r1, r2, r3, r4, r5))
        mixed = (r1 ^ (r2 << 1) ^ (r3 << 2) ^ (r4 << 3) ^ (r5 << 4) ^ (len(calls) * 0x9E37)) & _M64
        return (mixed * 0x9E3779B97F4A7C15) & _M64

    def halloc(vm, r1, r2, r3, r4, r5):
        address = vm.memory.alloc(HALLOC_BLOCK)
        calls.append(("halloc", address))
        return address

    def peek(vm, r1, r2, r3, r4, r5):
        size = 1 + (r2 % 8)
        value = vm.memory.read(r1, size)
        calls.append(("peek", r1, size, value))
        return value

    def checkz(vm, r1, r2, r3, r4, r5):
        calls.append(("checkz", r1))
        if r1 == 0:
            raise HelperError("checkz: zero argument")
        return r1

    table.register(FUZZ_HELPER_IDS["probe"], "probe", probe)
    table.register(FUZZ_HELPER_IDS["halloc"], "halloc", halloc)
    table.register(FUZZ_HELPER_IDS["peek"], "peek", peek)
    table.register(FUZZ_HELPER_IDS["checkz"], "checkz", checkz)
    return table


def _engine_outcome(vm: VirtualMachine, memory: VmMemory, calls: list, inputs) -> tuple:
    """One VMM-style invocation: reset the heap, run, normalise.

    Budget blowouts are normalised to a bare marker: the compiled tiers
    (JIT and native) check the budget per *block* while the interpreter
    checks per step, so the faulting pc / step counts legitimately
    differ (documented in ``VirtualMachine.run``); everything else must
    match exactly.
    """
    calls.clear()
    memory.reset_heap()
    try:
        result = vm.run(*inputs)
    except ExecutionError as exc:
        if "budget" in str(exc):
            return ("budget",)
        return ("exec-error", str(exc), vm.steps_executed, vm.helper_calls, tuple(calls))
    except SandboxViolation as exc:
        return ("sandbox", str(exc), vm.steps_executed, vm.helper_calls, tuple(calls))
    except HelperError as exc:
        return ("helper-error", str(exc), vm.steps_executed, vm.helper_calls, tuple(calls))
    # The stack bytes are deliberately NOT part of the outcome: the JIT
    # promotes private 8-byte stack slots to Python locals (they never
    # materialise in ``stack.data``), and that privacy is the point —
    # registers are observable through the epilogue fold into r0, heap
    # blocks through the helper traffic below.
    return (
        "return",
        result,
        vm.steps_executed,
        vm.helper_calls,
        tuple(calls),
        memory.heap_used,
        bytes(memory.heap_region.data[: memory.heap_used]),
    )


_ENGINE_ARMS = tuple(
    (engine, fast)
    for engine in ("interp", "jit", "native")
    for fast in (True, False)
)


def run_engine_case(case: EngineCase) -> Optional[Divergence]:
    try:
        program = decode_program(case.program)
        outcomes: Dict[Tuple[str, bool], tuple] = {}
        for engine, fast in _ENGINE_ARMS:
            calls: list = []
            memory = VmMemory(heap_size=4096, lazy_zero=fast, fast_access=fast)
            vm = VirtualMachine(
                program,
                helpers=make_fuzz_helpers(calls),
                memory=memory,
                step_budget=case.step_budget,
                tier=engine,
            )
            # Two back-to-back invocations: the second reuses the dirty
            # heap span, exercising the lazy-zero high-watermark reset.
            first = _engine_outcome(vm, memory, calls, case.inputs)
            second = _engine_outcome(vm, memory, calls, case.inputs)
            outcomes[(engine, fast)] = (first, second)
        baseline_arm = _ENGINE_ARMS[0]
        for run_index in (0, 1):
            per_arm = {arm: outcomes[arm][run_index] for arm in _ENGINE_ARMS}
            if any(outcome[0] == "budget" for outcome in per_arm.values()):
                # The JIT checks the budget per *block* (at the leader),
                # the interpreter per step — so near the budget one arm
                # may report the blowout while the other faults first
                # inside that block.  All arms must still abort; and the
                # partially-executed state afterwards legitimately
                # differs, so later runs are not compared.
                returned = [arm for arm, o in per_arm.items() if o[0] == "return"]
                if returned:
                    return Divergence(
                        "engine",
                        "engine:budget-vs-return",
                        f"run {run_index}: arms {returned} returned while "
                        f"others exhausted the instruction budget",
                    )
                break
            baseline = per_arm[baseline_arm]
            for arm, outcome in per_arm.items():
                if outcome != baseline:
                    return Divergence(
                        "engine",
                        f"engine:outcome:{baseline_arm[0]}-vs-{arm[0]}:"
                        f"fast{int(baseline_arm[1])}-vs-fast{int(arm[1])}:"
                        f"{baseline[0]}/{outcome[0]}",
                        f"run {run_index}: arms {baseline_arm} and {arm} disagree: "
                        f"{_outcome_diff((baseline,), (outcome,))}",
                    )
    except Exception as exc:  # noqa: BLE001
        return _crash("engine", "engine-oracle", exc)
    return None


def _outcome_diff(left: tuple, right: tuple) -> str:
    for run_index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            for field_index, (x, y) in enumerate(zip(a, b)):
                if x != y:
                    return f"run {run_index} field {field_index}: {x!r} != {y!r}"
            return f"run {run_index}: {a!r} != {b!r}"
    return "outcome tuples differ in length"


# -- host oracle -------------------------------------------------------


def _build_daemon(case: HostCase, implementation: str, hot: bool):
    kwargs = {
        "asn": 65001,
        "router_id": _DUT,
        "local_address": _DUT,
        "vmm_config": VmmConfig(
            engine=case.engine,
            telemetry=False,
            fast_path=hot,
            lazy_heap=hot,
        ),
        "hot_path": hot,
    }
    if case.plugin == "geoloc" and case.coord is not None:
        kwargs["xtra"] = {"coord": geoloc.coord_bytes(*case.coord)}
    daemon = DAEMONS[implementation](**kwargs)
    if case.plugin == "route_reflector":
        daemon.attach_manifest(route_reflector.build_manifest())
    elif case.plugin == "origin_validation":
        daemon.attach_manifest(origin_validation.build_manifest(list(case.roas)))
    elif case.plugin == "geoloc":
        daemon.attach_manifest(geoloc.build_manifest())
    return daemon


def _normalise_snapshot(snapshot) -> Dict[str, tuple]:
    return {
        str(prefix): tuple(
            sorted((a.type_code, a.flags, a.value.hex()) for a in attributes)
        )
        for prefix, attributes in snapshot.items()
    }


def _wire_host_daemon(case: HostCase, daemon):
    """Attach the oracle's upstream/downstream peers; return
    ``(peers, collector, downstream_bytes)``."""
    collector = Collector()
    downstream_bytes: List[bytes] = []

    def downstream_send(data: bytes) -> None:
        downstream_bytes.append(data)
        collector.receive(data)

    ibgp = case.session == "ibgp"
    upstream = daemon.add_neighbor(_UPSTREAM, 65001 if ibgp else 65100, lambda data: None)
    downstream = daemon.add_neighbor(_DOWNSTREAM, 65001 if ibgp else 65200, downstream_send)
    if case.plugin == "route_reflector":
        upstream.rr_client = True
        downstream.rr_client = True
    for address in (_UPSTREAM, _DOWNSTREAM):
        daemon._established[parse_ipv4(address)] = True
        daemon.neighbors[parse_ipv4(address)].established = True
    return {"upstream": upstream, "downstream": downstream}, collector, downstream_bytes


def _host_arm_report(daemon, collector, downstream_bytes) -> Dict[str, object]:
    return {
        "snapshot": _normalise_snapshot(daemon.loc_rib_snapshot()),
        "downstream": b"".join(downstream_bytes),
        "prefixes": frozenset(str(p) for p in collector.prefixes),
        "withdrawn": frozenset(str(p) for p in collector.withdrawn),
        "stats": dict(daemon.stats),
        "fallbacks": daemon.vmm.fallbacks,
    }


def _run_host_arm(case: HostCase, implementation: str, hot: bool) -> Dict[str, object]:
    daemon = _build_daemon(case, implementation, hot)
    peers, collector, downstream_bytes = _wire_host_daemon(case, daemon)
    for event in case.events:
        if event[0] == "frame":
            daemon.receive_raw(_UPSTREAM, event[1])
        else:
            _, role, field, value = event
            setattr(peers[role], field, value)
    return _host_arm_report(daemon, collector, downstream_bytes)


def _run_host_arm_batched(
    case: HostCase, implementation: str, hot: bool, batch_size: int = 8
) -> Dict[str, object]:
    """Same feed through :class:`~repro.scale.BatchProcessor`.

    Peer-config writes land mid-stream, so the pending batch is flushed
    first — the ordering contract the batch docstring demands."""
    from ..scale import BatchProcessor

    daemon = _build_daemon(case, implementation, hot)
    peers, collector, downstream_bytes = _wire_host_daemon(case, daemon)
    processor = BatchProcessor(daemon, batch_size=batch_size)
    for event in case.events:
        if event[0] == "frame":
            processor.receive_raw(_UPSTREAM, event[1])
        else:
            processor.flush()
            _, role, field, value = event
            setattr(peers[role], field, value)
    processor.flush()
    return _host_arm_report(daemon, collector, downstream_bytes)


def _run_host_arm_sharded(
    case: HostCase, implementation: str, hot: bool, shards: int = 2
) -> Dict[str, object]:
    """Same feed split across shard daemons by prefix range.

    Peer-config writes and non-UPDATE control messages apply to every
    shard (each worker owns a full copy of the session state); UPDATE
    NLRI/withdrawals route to their owning shard.  Reports merge like
    :class:`~repro.scale.ShardedResult`."""
    from ..scale import PartitionMap, split_update

    parsed: List[tuple] = []
    prefixes: List = []
    for event in case.events:
        if event[0] == "frame":
            for message in split_stream(bytearray(event[1])):
                parsed.append(("message", message))
                if isinstance(message, UpdateMessage):
                    prefixes.extend(message.nlri)
                    prefixes.extend(message.withdrawn)
        else:
            parsed.append(event)
    pmap = PartitionMap(prefixes, shards)
    arms = []
    for _ in range(pmap.shards):
        daemon = _build_daemon(case, implementation, hot)
        arms.append((daemon, _wire_host_daemon(case, daemon)))

    for event in parsed:
        if event[0] == "message":
            message = event[1]
            if isinstance(message, UpdateMessage) and not message.is_end_of_rib():
                for shard, part in split_update(message, pmap).items():
                    arms[shard][0].receive_message(_UPSTREAM, part)
            else:
                for daemon, _ in arms:
                    daemon.receive_message(_UPSTREAM, message)
        else:
            _, role, field, value = event
            for _, (peers, _, _) in arms:
                setattr(peers[role], field, value)

    snapshot: Dict[str, tuple] = {}
    advertised: set = set()
    withdrawn: set = set()
    fallbacks = 0
    for daemon, (_, collector, _) in arms:
        snapshot.update(_normalise_snapshot(daemon.loc_rib_snapshot()))
        advertised.update(str(p) for p in collector.prefixes)
        withdrawn.update(str(p) for p in collector.withdrawn)
        fallbacks += daemon.vmm.fallbacks
    return {
        "snapshot": snapshot,
        "prefixes": frozenset(advertised),
        "withdrawn": frozenset(withdrawn),
        "fallbacks": fallbacks,
    }


#: Keys compared across *implementations* (FRR vs BIRD).  Export
#: batching and stats naming are host-specific, so the cross-host
#: contract is the Loc-RIB, the reachable export set and the absence
#: of extension fallbacks — §2.1's observable behaviour.
_CROSS_KEYS = ("snapshot", "prefixes", "withdrawn", "fallbacks")
#: Keys compared between the fast and legacy arms of one
#: implementation — these must match bit-for-bit, wire bytes included.
_ARM_KEYS = ("snapshot", "downstream", "prefixes", "withdrawn", "stats", "fallbacks")
#: Keys compared between the sequential and batched arms.  Batching
#: legitimately collapses transient downstream traffic (an announce
#: withdrawn inside one batch never hits the wire), so the withdraw
#: event stream and raw bytes are out; the Loc-RIB, the effective
#: advertised set and the fallback count must be identical.
_BATCH_KEYS = ("snapshot", "prefixes", "fallbacks")
#: Keys compared between the sequential and merged sharded arms.
#: Sharding preserves full per-prefix sequential semantics, so the
#: withdraw set is back in; per-message extension run counts differ
#: (a split UPDATE runs RECEIVE once per owning shard), so fallbacks
#: compare as a boolean, separately.
_SHARD_KEYS = ("snapshot", "prefixes", "withdrawn")


def _first_key_diff(left: dict, right: dict, keys) -> Optional[str]:
    for key in keys:
        if left[key] != right[key]:
            return key
    return None


def run_host_case(case: HostCase) -> Optional[Divergence]:
    try:
        arms = {
            (implementation, hot): _run_host_arm(case, implementation, hot)
            for implementation in DAEMONS
            for hot in (True, False)
        }
        for implementation in DAEMONS:
            key = _first_key_diff(
                arms[(implementation, True)], arms[(implementation, False)], _ARM_KEYS
            )
            if key is not None:
                return Divergence(
                    "host",
                    f"host:fast-legacy:{implementation}:{key}:{case.plugin}",
                    f"{implementation} fast vs legacy arm disagree on {key!r} "
                    f"(plugin={case.plugin}, engine={case.engine})",
                )
        key = _first_key_diff(arms[("frr", True)], arms[("bird", True)], _CROSS_KEYS)
        if key is not None:
            return Divergence(
                "host",
                f"host:cross:{key}:{case.plugin}",
                f"FRR and BIRD disagree on {key!r} "
                f"(plugin={case.plugin}, engine={case.engine})",
            )
        # Scale arms: batching and sharding must be invisible.
        for implementation in DAEMONS:
            sequential = arms[(implementation, True)]
            batched = _run_host_arm_batched(case, implementation, True)
            key = _first_key_diff(sequential, batched, _BATCH_KEYS)
            if key is not None:
                return Divergence(
                    "host",
                    f"host:batch:{implementation}:{key}:{case.plugin}",
                    f"{implementation} sequential vs batched arm disagree on "
                    f"{key!r} (plugin={case.plugin}, engine={case.engine})",
                )
            sharded = _run_host_arm_sharded(case, implementation, True)
            key = _first_key_diff(sequential, sharded, _SHARD_KEYS)
            if key is None and bool(sequential["fallbacks"]) != bool(sharded["fallbacks"]):
                key = "fallbacks"
            if key is not None:
                return Divergence(
                    "host",
                    f"host:shard:{implementation}:{key}:{case.plugin}",
                    f"{implementation} sequential vs sharded arm disagree on "
                    f"{key!r} (plugin={case.plugin}, engine={case.engine})",
                )
    except Exception as exc:  # noqa: BLE001
        return _crash("host", "host-oracle", exc)
    return None
