"""PyBIRD's xBGP glue: thin, because eattrs are already wire-shaped.

The paper reports 400 lines for BIRD versus 589 for FRRouting; the
asymmetry survives here.  BIRD stores attribute values as the raw
network-byte-order bytes, so the neutral representation maps 1:1 onto
``ea_find``/``ea_set``/``ea_unset`` and no byte-order translation is
needed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bgp.attributes import PathAttribute
from ..bgp.constants import AttrTypeCode
from ..bgp.prefix import Prefix
from ..core.abi import pack_attr
from ..core.context import ExecutionContext
from ..core.host_interface import HostImplementation
from ..igp.spf import UNREACHABLE
from .eattrs import EattrList
from .rib import BirdRoute

__all__ = ["BirdHost"]


class BirdHost(HostImplementation):
    """Glue between libxbgp helpers and PyBIRD internals."""

    name = "bird"

    def __init__(self, daemon):
        self.daemon = daemon
        self.hot_path = getattr(daemon, "hot_path", True)

    # -- attribute container resolution ---------------------------------

    def _eattrs(self, ctx: ExecutionContext, for_write: bool = False):
        """The eattr list in scope.

        At BGP_RECEIVE_MESSAGE ``ctx.route`` is the UPDATE's shared
        eattr list (mutations apply to every NLRI of the message); at
        filter/encode points it is a :class:`BirdRoute` and writes go
        copy-on-write so sibling routes sharing the list are untouched.
        """
        container = ctx.route
        if isinstance(container, EattrList):
            return container
        if isinstance(container, BirdRoute):
            if for_write and not ctx.hidden.get("cow"):
                container = container.with_eattrs(container.eattrs.copy())
                ctx.route = container
                ctx.hidden["cow"] = True
            return container.eattrs
        return None

    # -- HostImplementation ------------------------------------------------

    def get_attr(self, ctx: ExecutionContext, code: int) -> Optional[PathAttribute]:
        eattrs = self._eattrs(ctx)
        if eattrs is None:
            return None
        eattr = eattrs.ea_find(code)
        return eattr.to_path_attribute() if eattr is not None else None

    def get_attr_packed(self, ctx: ExecutionContext, code: int) -> Optional[bytes]:
        if not self.hot_path:
            return HostImplementation.get_attr_packed(self, ctx, code)
        eattrs = self._eattrs(ctx)
        if eattrs is None:
            return None
        eattr = eattrs.ea_find(code)
        if eattr is None:
            return None
        # Eattr objects are replaced (not mutated) by ea_set, so the
        # helper struct can live on the attribute itself.
        packed = eattr._packed
        if packed is None:
            packed = pack_attr(eattr.code, eattr.flags, eattr.data)
            eattr._packed = packed
        return packed

    def set_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        container = ctx.route
        if self.hot_path and isinstance(container, BirdRoute):
            # Template cache: the same write applied to the same content
            # (an RR stamps one ORIGINATOR_ID onto every route of an
            # UPDATE) builds the resulting list once; each route then
            # takes a cheap copy that inherits the memoised cache key.
            base = container.eattrs
            key = (code, flags, value)
            stamped = base._write_cache.get(key)
            if stamped is None:
                stamped = base.copy()
                stamped.ea_set(code, flags, value)
                stamped.cache_key()  # pre-memoise for the encode probe
                base._write_cache[key] = stamped
            ctx.route = container.with_eattrs(stamped.copy())
            ctx.hidden["cow"] = True
            return True
        eattrs = self._eattrs(ctx, for_write=True)
        if eattrs is None:
            return False
        eattrs.ea_set(code, flags, value)
        return True

    def add_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        eattrs = self._eattrs(ctx, for_write=True)
        if eattrs is None or code in eattrs:
            return False
        eattrs.ea_set(code, flags, value)
        return True

    def remove_attr(self, ctx: ExecutionContext, code: int) -> bool:
        eattrs = self._eattrs(ctx, for_write=True)
        if eattrs is None:
            return False
        return eattrs.ea_unset(code)

    def get_nexthop(self, ctx: ExecutionContext) -> Tuple[int, int, bool]:
        eattrs = self._eattrs(ctx)
        address = 0
        if eattrs is not None:
            eattr = eattrs.ea_find(AttrTypeCode.NEXT_HOP)
            if eattr is not None and len(eattr.data) == 4:
                address = int.from_bytes(eattr.data, "big")
        if address == 0:
            return 0, UNREACHABLE, False
        metric = self.daemon.igp_metric(address)
        return address, metric, metric != UNREACHABLE

    def get_xtra(self, ctx: ExecutionContext, key: str) -> Optional[bytes]:
        return self.daemon.xtra.get(key)

    def rib_announce(self, ctx: ExecutionContext, prefix: Prefix, next_hop: int) -> bool:
        self.daemon.originate(prefix, next_hop=next_hop or None)
        return True

    def encode_route_attributes(self, ctx: ExecutionContext, route) -> bytes:
        from ..bgp.attributes import encode_attributes

        return encode_attributes(route.attribute_list())

    def log(self, message: str) -> None:
        self.daemon.log(message)
