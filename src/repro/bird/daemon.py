"""PyBIRD: a BIRD-flavoured BGP daemon.

Distinctive internals (mirroring what the paper leaned on in BIRD):

* attributes live in flexible, wire-shaped :class:`EattrList`s;
* validated ROAs sit in a **hash table** (:class:`HashRoaTable`) — one
  probe per candidate length;
* route objects parse attribute bytes lazily.

The daemon is transport agnostic: a harness registers a ``send_fn`` per
neighbor and feeds received bytes to :meth:`receive_raw`; both the
discrete-event simulator and the asyncio transport drive it this way.
"""

from __future__ import annotations

import struct
from collections import Counter
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.attributes import (
    PathAttribute,
    make_as_path,
    make_cluster_list,
    make_next_hop,
    make_origin,
    make_originator_id,
)
from ..bgp.aspath import AsPath
from ..bgp.constants import (
    AttrTypeCode,
    Origin,
    RouteOriginValidity,
    WellKnownCommunity,
)
from ..bgp.decision import (
    DecisionConfig,
    best_route,
    best_route_explained,
    compare_routes,
    compare_routes_explain,
)
from ..bgp.messages import (
    BgpMessage,
    RouteRefreshMessage,
    UpdateMessage,
    split_stream,
)
from ..bgp.peer import Neighbor
from ..bgp.policy import FilterChain
from ..bgp.prefix import Prefix, format_ipv4, parse_ipv4
from ..bgp.rib import AdjRibIn, AdjRibOut, LocRib
from ..bgp.roa import HashRoaTable, RoaTable
from ..core.context import ExecutionContext
from ..core.insertion_points import InsertionPoint
from ..core.manifest import Manifest
from ..core.vmm import VirtualMachineManager, VmmConfig
from ..core.abi import FILTER_ACCEPT, FILTER_REJECT
from ..igp.spf import UNREACHABLE, IgpView
from ..telemetry import Profiler, ProvenanceTracker
from .eattrs import EattrList
from .rib import BirdRoute
from .xbgp_glue import BirdHost

__all__ = ["BirdDaemon"]

#: Attribute codes PyBIRD knows how to put on the wire natively.  Codes
#: outside this set stay in the RIB but are *not* encoded — an
#: extension at BGP_ENCODE_MESSAGE must write them (the GeoLoc design
#: of Fig. 2).
NATIVE_ENCODABLE = frozenset(
    {
        AttrTypeCode.ORIGIN,
        AttrTypeCode.AS_PATH,
        AttrTypeCode.NEXT_HOP,
        AttrTypeCode.MULTI_EXIT_DISC,
        AttrTypeCode.LOCAL_PREF,
        AttrTypeCode.ATOMIC_AGGREGATE,
        AttrTypeCode.AGGREGATOR,
        AttrTypeCode.COMMUNITIES,
        AttrTypeCode.ORIGINATOR_ID,
        AttrTypeCode.CLUSTER_LIST,
        AttrTypeCode.LARGE_COMMUNITIES,
    }
)

_LOCAL_SOURCE = 0  # pseudo peer address for locally originated routes


class BirdDaemon:
    """One PyBIRD router instance."""

    implementation = "bird"

    def __init__(
        self,
        asn: int,
        router_id: str,
        local_address: Optional[str] = None,
        route_reflector: Optional[str] = None,
        cluster_id: Optional[str] = None,
        always_compare_med: bool = False,
        nexthop_self: bool = True,
        roa_table: Optional[RoaTable] = None,
        igp: Optional[IgpView] = None,
        xtra: Optional[Dict[str, bytes]] = None,
        vmm_config: Optional[VmmConfig] = None,
        hot_path: bool = True,
        provenance: bool = False,
        profiling: bool = False,
    ):
        if route_reflector not in (None, "native", "extension"):
            raise ValueError(f"bad route_reflector mode {route_reflector!r}")
        #: Enables daemon-level hot-path shortcuts (marshalling caches,
        #: export-side encode cache, empty-insertion-point skips).  Off
        #: only for the ablation benchmark's legacy arm.
        self.hot_path = hot_path
        self.asn = asn
        self.router_id = parse_ipv4(router_id)
        self.local_address = parse_ipv4(local_address or router_id)
        self.route_reflector = route_reflector
        self.cluster_id = parse_ipv4(cluster_id) if cluster_id else self.router_id
        self.always_compare_med = always_compare_med
        self.nexthop_self = nexthop_self
        #: BIRD-style: validated ROAs in a hash table.
        self.roa_table = roa_table if roa_table is not None else None
        self.igp = igp
        self.xtra: Dict[str, bytes] = dict(xtra or {})

        self.neighbors: Dict[int, Neighbor] = {}
        self._send_fns: Dict[int, Callable[[bytes], None]] = {}
        self._established: Dict[int, bool] = {}
        self._rx_buffers: Dict[int, bytearray] = {}

        self.adj_rib_in: AdjRibIn[BirdRoute] = AdjRibIn()
        self.loc_rib: LocRib[BirdRoute] = LocRib()
        self.adj_rib_out: AdjRibOut[BirdRoute] = AdjRibOut()
        self._local_routes: Dict[Prefix, BirdRoute] = {}

        self.import_chain = FilterChain()
        self.export_chain = FilterChain()

        self.validity_counters: Counter = Counter()
        self.stats: Counter = Counter()
        self._log: List[str] = []
        #: Export-side encode cache: (eattrs cache_key, session type,
        #: rr_client) -> encoded attribute blob.  See _encode_attributes.
        self._encode_cache: Dict[tuple, bytes] = {}
        #: Export-mechanics cache: (eattrs cache_key, session type,
        #: source-is-eBGP, nexthop_self) -> rewritten eattr list.  Each
        #: hit hands out a copy (eattr lists are mutable).  See
        #: _apply_export_mechanics.
        self._mechanics_cache: Dict[tuple, object] = {}

        self.host = BirdHost(self)
        self.vmm = VirtualMachineManager(self.host, vmm_config)

        #: The provenance tracker, or None when provenance is off.
        self.provenance: Optional[ProvenanceTracker] = None
        if provenance:
            self.enable_provenance()

        #: The profiler, or None when profiling is off.
        self.profiler: Optional[Profiler] = None
        if profiling:
            self.enable_profiling()

    # -- provenance --------------------------------------------------------

    def enable_provenance(
        self, tracker: Optional[ProvenanceTracker] = None
    ) -> ProvenanceTracker:
        """Turn on per-route provenance and causal tracing.

        Installs the tracker on the host glue (VMM + helper hooks) and
        on the Loc-RIB (best-path observer), then rebinds the VMM's
        insertion-point chains: provenance disqualifies the single-code
        fast-path closures, so they must be rebuilt either way the
        toggle goes.
        """
        if tracker is None:
            tracker = ProvenanceTracker(
                router=format_ipv4(self.router_id),
                implementation=self.implementation,
            )
        self.provenance = tracker
        self.host.provenance = tracker
        self.loc_rib.on_change = tracker.rib_changed
        self.vmm.rebind_all()
        return tracker

    def disable_provenance(self) -> None:
        self.provenance = None
        self.host.provenance = None
        self.loc_rib.on_change = None
        self.vmm.rebind_all()

    # -- profiling ---------------------------------------------------------

    def enable_profiling(self, profiler: Optional[Profiler] = None) -> Profiler:
        """Turn on phase + PC-level profiling (daemon phases and VM
        hotspots both).  Mirrors the provenance toggle: profiling
        disqualifies the single-code fast-path closures, so the VMM
        rebinds its chains either way the toggle goes."""
        if profiler is None:
            profiler = Profiler(
                router=format_ipv4(self.router_id),
                implementation=self.implementation,
            )
        self.profiler = profiler
        self.vmm.enable_profiling(profiler)
        return profiler

    def disable_profiling(self) -> None:
        self.profiler = None
        self.vmm.disable_profiling()

    # -- wiring ------------------------------------------------------------

    def add_neighbor(
        self,
        peer_address: str,
        peer_asn: int,
        send_fn: Callable[[bytes], None],
        rr_client: bool = False,
    ) -> Neighbor:
        """Configure a neighbor and its outgoing-bytes callback."""
        neighbor = Neighbor.build(
            peer_address,
            peer_asn,
            local_address="0.0.0.0",
            local_asn=self.asn,
            rr_client=rr_client,
        )
        neighbor.local_address = self.local_address
        neighbor.local_router_id = self.router_id
        neighbor.cluster_id = self.cluster_id
        self.neighbors[neighbor.peer_address] = neighbor
        self._send_fns[neighbor.peer_address] = send_fn
        self._established[neighbor.peer_address] = False
        self._rx_buffers[neighbor.peer_address] = bytearray()
        return neighbor

    def session_up(self, peer_address: str) -> None:
        """Mark the session Established and send the full table."""
        address = parse_ipv4(peer_address)
        neighbor = self.neighbors[address]
        neighbor.established = True
        self._established[address] = True
        for prefix in list(self.loc_rib.prefixes()):
            self._export_prefix(prefix, only_peers=[address])
        self._send_update(address, UpdateMessage.end_of_rib())

    def session_down(self, peer_address: str) -> None:
        address = parse_ipv4(peer_address)
        self._established[address] = False
        self.neighbors[address].established = False
        dropped = self.adj_rib_in.drop_peer(address)
        self.adj_rib_out.drop_peer(address)
        for route in dropped:
            self._run_decision(route.prefix)

    def attach_program(self, program) -> None:
        self.vmm.attach_program(program)

    def attach_manifest(self, manifest: Manifest) -> None:
        self.vmm.attach_program(manifest.load())

    def log(self, message: str) -> None:
        self._log.append(message)
        if len(self._log) > 10_000:
            del self._log[:5_000]

    @property
    def log_messages(self) -> List[str]:
        return list(self._log)

    @property
    def telemetry(self):
        """The VMM's telemetry facade (None when disabled)."""
        return self.vmm.telemetry

    def update_telemetry_gauges(self) -> None:
        """Refresh session and RIB-size gauges on the telemetry registry.

        Called before every export (harness snapshot, ``xbgp stats``) so
        scrapes see current control-plane state alongside the VMM's
        execution counters.
        """
        telemetry = self.vmm.telemetry
        if telemetry is None:
            return
        registry = telemetry.registry
        impl = self.implementation
        registry.gauge(
            "xbgp_sessions", "configured BGP sessions", implementation=impl
        ).set(len(self.neighbors))
        registry.gauge(
            "xbgp_sessions_established",
            "sessions in Established state",
            implementation=impl,
        ).set(sum(1 for up in self._established.values() if up))
        for rib_name, rib in (
            ("adj_rib_in", self.adj_rib_in),
            ("loc_rib", self.loc_rib),
            ("adj_rib_out", self.adj_rib_out),
        ):
            registry.gauge(
                "xbgp_rib_routes", "routes per RIB", implementation=impl, rib=rib_name
            ).set(len(rib))

    def igp_metric(self, address: int) -> int:
        if self.igp is None:
            return 0
        return self.igp.metric_to(address)

    # -- local origination ----------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        next_hop: Optional[int] = None,
        attributes: Optional[Sequence[PathAttribute]] = None,
    ) -> None:
        """Install a locally-originated route and advertise it."""
        if attributes is None:
            attributes = [
                make_origin(Origin.IGP),
                make_as_path(AsPath()),
                make_next_hop(next_hop if next_hop else self.local_address),
            ]
        prov = self.provenance
        if prov is not None:
            # Root a fresh trace here: everything this origination
            # triggers — local decision, exports, and the processing on
            # every router the advert reaches — hangs off this span.
            prov.begin_update(None, kind="originate", prefix=str(prefix))
        try:
            route = BirdRoute(prefix, None, EattrList.from_wire(attributes))
            self._local_routes[prefix] = route
            self._run_decision(prefix)
        finally:
            if prov is not None:
                prov.end_update()

    def withdraw_local(self, prefix: Prefix) -> None:
        if self._local_routes.pop(prefix, None) is not None:
            self._run_decision(prefix)

    # -- receive path ------------------------------------------------------------

    def receive_raw(
        self, peer_address: str, data: bytes, parent=None
    ) -> None:
        """Feed raw TCP bytes from a peer (reassembles messages).

        ``parent`` is an optional (trace, span) ref the transport
        shipped with the bytes; the UPDATE span opened while processing
        them adopts it, extending the sender's causal trace here.
        """
        prov = self.provenance
        if prov is not None:
            prov.pending_parent = parent
        try:
            address = parse_ipv4(peer_address)
            buffer = self._rx_buffers[address]
            buffer.extend(data)
            for message in split_stream(buffer):
                self.receive_message(peer_address, message)
        finally:
            if prov is not None:
                prov.pending_parent = None

    def receive_message(self, peer_address: str, message: BgpMessage) -> None:
        address = parse_ipv4(peer_address)
        neighbor = self.neighbors.get(address)
        if neighbor is None:
            self.stats["unknown_peer"] += 1
            return
        self.stats["messages_received"] += 1
        if isinstance(message, UpdateMessage):
            self._process_update(neighbor, message)
        elif isinstance(message, RouteRefreshMessage):
            self._process_route_refresh(neighbor)

    def _process_update(self, neighbor: Neighbor, update: UpdateMessage) -> None:
        if update.is_end_of_rib():
            self.stats["eor_received"] += 1
            return

        prov = self.provenance
        if prov is not None:
            prov.begin_update(
                neighbor,
                prefixes=len(update.nlri),
                withdrawn=len(update.withdrawn),
            )
        try:
            self._process_update_body(neighbor, update)
        finally:
            if prov is not None:
                prov.end_update()

    def _process_update_body(self, neighbor: Neighbor, update: UpdateMessage) -> None:
        prov = self.provenance
        prof = self.profiler
        if prof is not None:
            started = perf_counter()
            eattrs = EattrList.from_wire(update.attributes)
            prof.phase("decode", perf_counter() - started)
        else:
            eattrs = EattrList.from_wire(update.attributes)

        # Insertion point 1: BGP_RECEIVE_MESSAGE — extension code may
        # rewrite the UPDATE's attributes before import processing.
        # With nothing attached the chain reduces to the no-op default,
        # so the hot path skips context construction and re-encoding.
        if not self.hot_path or self.vmm.active(InsertionPoint.BGP_RECEIVE_MESSAGE):
            started = perf_counter() if prof is not None else 0.0
            ctx = ExecutionContext(
                self.host,
                InsertionPoint.BGP_RECEIVE_MESSAGE,
                neighbor=neighbor,
                route=eattrs,
                message=update.encode(),
            )
            self.vmm.run(ctx, lambda: 0)
            if prof is not None:
                prof.phase("bgp_receive_message", perf_counter() - started)

        dirty: List[Prefix] = []
        for prefix in update.withdrawn:
            if self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None:
                dirty.append(prefix)
                if prov is not None:
                    prov.record_withdraw(prefix, neighbor)

        if update.nlri:
            for prefix in update.nlri:
                if prof is not None:
                    started = perf_counter()
                    imported = self._import_route(neighbor, prefix, eattrs)
                    prof.phase("bgp_inbound_filter", perf_counter() - started)
                else:
                    imported = self._import_route(neighbor, prefix, eattrs)
                if imported:
                    dirty.append(prefix)

        for prefix in dirty:
            self._run_decision(prefix)

    def process_update_batch(
        self, neighbor: Neighbor, updates: Sequence[UpdateMessage]
    ) -> None:
        """Import a vector of UPDATEs from one peer, amortizing the
        per-message costs of the sequential path (see the FRR twin,
        :meth:`repro.frr.daemon.FrrDaemon.process_update_batch`):
        eattr decode memoized per distinct raw attribute wire, the
        BGP_INBOUND_FILTER dispatch bound once per batch, decisions
        (and the bulk encode-cache hits behind them) run once per dirty
        prefix at batch end.  Final RIB state is identical to the
        sequential path; transient downstream traffic collapses.
        """
        prov = self.provenance
        prof = self.profiler
        receive_hot = self.hot_path and not self.vmm.active(
            InsertionPoint.BGP_RECEIVE_MESSAGE
        )
        import_run = self.vmm.runner(InsertionPoint.BGP_INBOUND_FILTER)
        # A BGP_RECEIVE_MESSAGE extension may rewrite the decoded eattr
        # list in place, so the decode memo is only sound when that
        # point is empty.
        attr_memo: Optional[Dict[bytes, EattrList]] = {} if receive_hot else None
        dirty: Dict[Prefix, None] = {}  # ordered set
        if prov is not None:
            prov.begin_update(
                neighbor,
                kind="batch",
                prefixes=sum(len(u.nlri) for u in updates),
                withdrawn=sum(len(u.withdrawn) for u in updates),
            )
        try:
            for update in updates:
                self.stats["messages_received"] += 1
                if update.is_end_of_rib():
                    self.stats["eor_received"] += 1
                    continue

                started = perf_counter() if prof is not None else 0.0
                wire = update._attrs_wire
                if attr_memo is not None and wire is not None:
                    eattrs = attr_memo.get(wire)
                    if eattrs is None:
                        eattrs = EattrList.from_wire(update.attributes)
                        attr_memo[wire] = eattrs
                else:
                    eattrs = EattrList.from_wire(update.attributes)
                if prof is not None:
                    prof.phase("decode", perf_counter() - started)

                if not receive_hot:
                    started = perf_counter() if prof is not None else 0.0
                    ctx = ExecutionContext(
                        self.host,
                        InsertionPoint.BGP_RECEIVE_MESSAGE,
                        neighbor=neighbor,
                        route=eattrs,
                        message=update.encode(),
                    )
                    self.vmm.run(ctx, lambda: 0)
                    if prof is not None:
                        prof.phase("bgp_receive_message", perf_counter() - started)

                for prefix in update.withdrawn:
                    if self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None:
                        dirty[prefix] = None
                        if prov is not None:
                            prov.record_withdraw(prefix, neighbor)

                for prefix in update.nlri:
                    started = perf_counter() if prof is not None else 0.0
                    imported = self._import_route(
                        neighbor, prefix, eattrs, run=import_run
                    )
                    if prof is not None:
                        prof.phase("bgp_inbound_filter", perf_counter() - started)
                    if imported:
                        dirty[prefix] = None

            # Bulk export: decisions during a batch defer their sends
            # into per-peer buffers, flushed as coalesced multi-NLRI
            # UPDATEs (same attribute blob -> one message).
            self._bulk_adv = {}
            self._bulk_wd = {}
            try:
                for prefix in dirty:
                    self._run_decision(prefix)
            finally:
                self._flush_bulk_export()
        finally:
            if prov is not None:
                prov.end_update()

    def _import_route(
        self, neighbor: Neighbor, prefix: Prefix, eattrs: EattrList, run=None
    ) -> bool:
        """Run import processing for one NLRI; returns True if RIB changed."""
        prov = self.provenance
        if prov is not None:
            prov.begin_route(prefix, neighbor)
        route = BirdRoute(prefix, neighbor, eattrs)

        # Mandatory RFC 4271 sanity: AS-path loop detection.
        if neighbor.is_ebgp() and route.as_path().contains(self.asn):
            self.stats["loop_rejected"] += 1
            if prov is not None:
                prov.record_filter(prefix, "loop_rejected")
            return self._treat_as_withdraw(neighbor, prefix)

        # Insertion point 2: BGP_INBOUND_FILTER.
        ctx = ExecutionContext(
            self.host,
            InsertionPoint.BGP_INBOUND_FILTER,
            neighbor=neighbor,
            route=route,
            prefix=prefix,
        )
        if run is None:
            run = self.vmm.run
        verdict = run(ctx, lambda: self._native_import(ctx))
        route = ctx.route  # may have been rewritten copy-on-write

        if verdict == FILTER_REJECT:
            self.stats["import_rejected"] += 1
            if prov is not None:
                prov.record_filter(prefix, "import_rejected")
            return self._treat_as_withdraw(neighbor, prefix)

        # Native origin validation (BIRD style: one hash probe chain).
        # Validity is recorded, never used to discard — §3.4 methodology.
        if self.roa_table is not None and neighbor.is_ebgp():
            validity = self.roa_table.validate(prefix, route.origin_asn())
            route.validity = validity
            self.validity_counters[RouteOriginValidity(validity).name] += 1

        self.adj_rib_in.update(neighbor.peer_address, route)
        return True

    def _native_import(self, ctx: ExecutionContext) -> int:
        """PyBIRD's native import processing (the VMM default)."""
        route: BirdRoute = ctx.route
        neighbor = ctx.neighbor

        # Native route-reflection import checks (RFC 4456 §8) only when
        # the host implements RR itself.
        if self.route_reflector == "native" and neighbor.is_ibgp():
            originator = route.attribute(AttrTypeCode.ORIGINATOR_ID)
            if originator is not None and originator.as_u32() == self.router_id:
                return FILTER_REJECT
            cluster_list = route.attribute(AttrTypeCode.CLUSTER_LIST)
            if cluster_list is not None and self.cluster_id in cluster_list.as_cluster_list():
                return FILTER_REJECT

        filtered = self.import_chain.evaluate(route, neighbor)
        if filtered is None:
            return FILTER_REJECT
        ctx.route = filtered
        return FILTER_ACCEPT

    def _treat_as_withdraw(self, neighbor: Neighbor, prefix: Prefix) -> bool:
        return self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None

    def _process_route_refresh(self, neighbor: Neighbor) -> None:
        """RFC 2918: resend our full Adj-RIB-Out for this peer."""
        self.stats["route_refresh_received"] += 1
        for prefix in list(self.loc_rib.prefixes()):
            self._export_prefix(prefix, only_peers=[neighbor.peer_address])
        self._send_update(neighbor.peer_address, UpdateMessage.end_of_rib())

    # -- decision process -----------------------------------------------------------

    def _decision_config(self) -> DecisionConfig:
        metric = self.igp.metric_to if self.igp is not None else None
        return DecisionConfig(
            always_compare_med=self.always_compare_med, igp_metric=metric
        )

    def _select_best(self, candidates: List[BirdRoute]) -> Optional[BirdRoute]:
        if not candidates:
            return None
        config = self._decision_config()
        prov = self.provenance
        if self.vmm.attached_codes(InsertionPoint.BGP_DECISION):
            best = candidates[0]
            for candidate in candidates[1:]:
                ctx = ExecutionContext(
                    self.host,
                    InsertionPoint.BGP_DECISION,
                    route=candidate,
                    best_route=best,
                    prefix=candidate.prefix,
                )
                if prov is None:
                    native = (
                        lambda c=candidate, b=best: 1
                        if compare_routes(c, b, config) < 0
                        else 2
                    )
                    if self.vmm.run(ctx, native) == 1:
                        best = candidate
                    continue
                # When explaining, the native default notes which RFC
                # 4271 ladder step decided — absent that note, the
                # verdict came from the extension chain.
                step_note: Dict[str, str] = {}
                def native(c=candidate, b=best, note=step_note):
                    verdict, step = compare_routes_explain(c, b, config)
                    note["step"] = step
                    return 1 if verdict < 0 else 2
                picked_new = self.vmm.run(ctx, native) == 1
                winner, loser = (
                    (candidate, best) if picked_new else (best, candidate)
                )
                prov.record_elimination(
                    candidate.prefix,
                    step_note.get("step", "extension"),
                    loser,
                    winner,
                    by="native" if "step" in step_note else "extension",
                )
                if picked_new:
                    best = candidate
            return best
        if prov is not None:
            if len(candidates) == 1:
                prov.record_elimination(
                    candidates[0].prefix, "only_candidate", None, candidates[0]
                )
                return candidates[0]
            prefix = candidates[0].prefix
            return best_route_explained(
                candidates,
                config,
                on_step=lambda step, eliminated, kept: prov.record_elimination(
                    prefix, step, eliminated, kept
                ),
            )
        return best_route(candidates, config)

    def _run_decision(self, prefix: Prefix) -> None:
        candidates = self.adj_rib_in.candidates(prefix)
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        prov = self.provenance
        phase = prov.begin_phase("decision", prefix) if prov is not None else None
        prof = self.profiler
        if prof is not None:
            started = perf_counter()
            best = self._select_best(candidates)
            prof.phase("bgp_decision", perf_counter() - started)
        else:
            best = self._select_best(candidates)
        previous = self.loc_rib.lookup(prefix)
        if best is previous:
            if phase is not None:
                prov.end_phase(phase, changed=False)
            return
        if best is None:
            self.loc_rib.remove(prefix)
        else:
            self.loc_rib.install(best)
        if phase is not None:
            prov.end_phase(phase, changed=True)
        self._export_prefix(prefix)

    # -- export path ------------------------------------------------------------------

    def _export_prefix(self, prefix: Prefix, only_peers: Optional[List[int]] = None) -> None:
        prov = self.provenance
        phase = prov.begin_phase("export", prefix) if prov is not None else None
        best = self.loc_rib.lookup(prefix)
        peers = only_peers if only_peers is not None else list(self.neighbors)
        for address in peers:
            if not self._established.get(address):
                continue
            neighbor = self.neighbors[address]
            if best is None:
                self._withdraw_from(neighbor, prefix)
                continue
            if best.source is not None and best.source.peer_address == address:
                # Never advertise a route back to the peer it came from.
                self._withdraw_from(neighbor, prefix)
                continue
            prof = self.profiler
            if prof is not None:
                started = perf_counter()
                export_route = self._export_filter(best, neighbor)
                prof.phase("bgp_outbound_filter", perf_counter() - started)
            else:
                export_route = self._export_filter(best, neighbor)
            if export_route is None:
                if prov is not None:
                    prov.record_export(prefix, address, "suppress")
                self._withdraw_from(neighbor, prefix)
                continue
            export_route = self._apply_export_mechanics(export_route, neighbor)
            self.adj_rib_out.advertise(address, export_route)
            self._send_route(neighbor, export_route)
            if prov is not None:
                prov.record_export(prefix, address, "advertise")
        if phase is not None:
            prov.end_phase(phase)

    def _export_filter(self, route: BirdRoute, neighbor: Neighbor) -> Optional[BirdRoute]:
        """Insertion point 4: BGP_OUTBOUND_FILTER around native export."""
        ctx = ExecutionContext(
            self.host,
            InsertionPoint.BGP_OUTBOUND_FILTER,
            neighbor=neighbor,
            route=route,
            prefix=route.prefix,
        )
        verdict = self.vmm.run(ctx, lambda: self._native_export(ctx))
        if verdict == FILTER_REJECT:
            self.stats["export_rejected"] += 1
            return None
        return ctx.route

    def _native_export(self, ctx: ExecutionContext) -> int:
        route: BirdRoute = ctx.route
        neighbor = ctx.neighbor
        source = route.source

        if source is not None and source.is_ibgp() and neighbor.is_ibgp():
            if self.route_reflector == "native":
                # Reflect client routes to everyone, non-client routes
                # to clients only (RFC 4456 §6).
                if not (source.rr_client or neighbor.rr_client):
                    return FILTER_REJECT
                reflected = self._stamp_reflection(route)
                ctx.route = reflected
                route = reflected
            elif self.route_reflector == "extension":
                # Host is RR-unaware: relaxed split horizon; the
                # extension outbound code is responsible for loop
                # prevention and attribute stamping.
                pass
            else:
                return FILTER_REJECT  # classic iBGP split horizon

        communities = route.attribute(AttrTypeCode.COMMUNITIES)
        if communities is not None:
            values = communities.as_communities()
            if WellKnownCommunity.NO_ADVERTISE in values:
                return FILTER_REJECT
            if WellKnownCommunity.NO_EXPORT in values and neighbor.is_ebgp():
                return FILTER_REJECT

        filtered = self.export_chain.evaluate(route, neighbor)
        if filtered is None:
            return FILTER_REJECT
        ctx.route = filtered
        return FILTER_ACCEPT

    def _stamp_reflection(self, route: BirdRoute) -> BirdRoute:
        """Native RFC 4456 attribute stamping (ORIGINATOR_ID, CLUSTER_LIST)."""
        eattrs = route.eattrs.copy()
        if AttrTypeCode.ORIGINATOR_ID not in eattrs:
            originator = route.source.peer_router_id if route.source else self.router_id
            attr = make_originator_id(originator)
            eattrs.ea_set(attr.type_code, attr.flags, attr.value)
        existing = eattrs.ea_find(AttrTypeCode.CLUSTER_LIST)
        previous: Tuple[int, ...] = ()
        if existing is not None:
            previous = tuple(
                struct.unpack_from("!I", existing.data, i)[0]
                for i in range(0, len(existing.data), 4)
            )
        attr = make_cluster_list((self.cluster_id,) + previous)
        eattrs.ea_set(attr.type_code, attr.flags, attr.value)
        return route.with_eattrs(eattrs)

    def _apply_export_mechanics(self, route: BirdRoute, neighbor: Neighbor) -> BirdRoute:
        """AS-path prepend / next-hop / LOCAL_PREF handling per session type.

        The rewrite is a pure function of (attribute set, session type,
        whether the source is eBGP, nexthop_self); heavy attribute
        sharing means it repeats across thousands of routes, so the hot
        path memoises the rewritten eattr list and each route gets a
        copy (eattr lists are mutable, so the cached master is never
        handed out directly).
        """
        source_ebgp = route.source is not None and route.source.is_ebgp()
        if self.hot_path:
            key = (
                route.eattrs.cache_key(),
                int(neighbor.session_type),
                source_ebgp,
                self.nexthop_self,
            )
            cache = self._mechanics_cache
            rewritten = cache.get(key)
            if rewritten is None:
                rewritten = self._export_mechanics_eattrs(route, neighbor, source_ebgp)
                if len(cache) >= 65536:  # fits a full-table shard's distinct sets
                    cache.clear()
                cache[key] = rewritten
            return route.with_eattrs(rewritten.copy())
        return route.with_eattrs(
            self._export_mechanics_eattrs(route, neighbor, source_ebgp)
        )

    def _export_mechanics_eattrs(
        self, route: BirdRoute, neighbor: Neighbor, source_ebgp: bool
    ):
        eattrs = route.eattrs.copy()
        if neighbor.is_ebgp():
            path = route.as_path().prepend(self.asn)
            attr = make_as_path(path)
            eattrs.ea_set(attr.type_code, attr.flags, attr.value)
            next_hop = make_next_hop(self.local_address)
            eattrs.ea_set(next_hop.type_code, next_hop.flags, next_hop.value)
            eattrs.ea_unset(AttrTypeCode.LOCAL_PREF)
            eattrs.ea_unset(AttrTypeCode.MULTI_EXIT_DISC)
        else:
            if AttrTypeCode.LOCAL_PREF not in eattrs:
                local_pref = PathAttribute(0x40, AttrTypeCode.LOCAL_PREF, struct.pack("!I", 100))
                eattrs.ea_set(local_pref.type_code, local_pref.flags, local_pref.value)
            if self.nexthop_self and route.source is not None and route.source.is_ebgp():
                next_hop = make_next_hop(self.local_address)
                eattrs.ea_set(next_hop.type_code, next_hop.flags, next_hop.value)
        return eattrs

    # -- encoding -----------------------------------------------------------------------

    def _encode_attributes(self, route: BirdRoute, neighbor: Neighbor) -> bytes:
        """Native attr encoding plus BGP_ENCODE_MESSAGE extension bytes.

        Memoised on (attribute set, peer export class): re-advertising
        the same attributes to N peers of the same class encodes once.
        Constraint: BGP_ENCODE_MESSAGE extensions must be deterministic
        in (attribute set, peer class) — true for the shipped GeoLoc
        encoder and anything derived only from route attributes and peer
        info.
        """
        cache = None
        if self.hot_path:
            key = (
                route.eattrs.cache_key(),
                int(neighbor.session_type),
                neighbor.rr_client,
            )
            cache = self._encode_cache
            blob = cache.get(key)
            if blob is not None:
                return blob

        native = b"".join(
            eattr.to_path_attribute().encode()
            for eattr in route.eattrs
            if eattr.code in NATIVE_ENCODABLE
        )
        if not self.hot_path or self.vmm.active(InsertionPoint.BGP_ENCODE_MESSAGE):
            out_buffer = bytearray()
            ctx = ExecutionContext(
                self.host,
                InsertionPoint.BGP_ENCODE_MESSAGE,
                neighbor=neighbor,
                route=route,
                prefix=route.prefix,
                out_buffer=out_buffer,
            )
            self.vmm.run(ctx, lambda: 0)
            blob = native + bytes(out_buffer)
        else:
            blob = native
        if cache is not None:
            if len(cache) >= 65536:  # fits a full-table shard's distinct sets
                cache.clear()
            cache[key] = blob
        return blob

    #: Batch-scoped bulk-export buffers; non-None only while a
    #: process_update_batch decision sweep runs.
    _bulk_adv: Optional[Dict[int, Dict[bytes, List[Prefix]]]] = None
    _bulk_wd: Optional[Dict[int, List[Prefix]]] = None

    def _send_route(self, neighbor: Neighbor, route: BirdRoute) -> None:
        prof = self.profiler
        if prof is not None:
            started = perf_counter()
            attrs_blob = self._encode_attributes(route, neighbor)
            prof.phase("bgp_encode_message", perf_counter() - started)
        else:
            attrs_blob = self._encode_attributes(route, neighbor)
        bulk = self._bulk_adv
        if bulk is not None:
            groups = bulk.setdefault(neighbor.peer_address, {})
            groups.setdefault(attrs_blob, []).append(route.prefix)
            return
        body = (
            struct.pack("!H", 0)
            + struct.pack("!H", len(attrs_blob))
            + attrs_blob
            + route.prefix.encode()
        )
        from ..bgp.messages import encode_header
        from ..bgp.constants import MessageType

        self._send_raw(neighbor.peer_address, encode_header(MessageType.UPDATE, body))
        self.stats["updates_sent"] += 1

    def _withdraw_from(self, neighbor: Neighbor, prefix: Prefix) -> None:
        if self.adj_rib_out.withdraw(neighbor.peer_address, prefix) is None:
            return
        if self.provenance is not None:
            self.provenance.record_export(prefix, neighbor.peer_address, "withdraw")
        bulk = self._bulk_wd
        if bulk is not None:
            bulk.setdefault(neighbor.peer_address, []).append(prefix)
            return
        update = UpdateMessage(withdrawn=[prefix])
        self._send_update(neighbor.peer_address, update)

    def _flush_bulk_export(self) -> None:
        """Emit the sends deferred by a batch decision sweep.

        Same coalescing as the FRR host: one UPDATE per distinct
        encoded attribute blob per peer, chunked to the 4096-byte wire
        ceiling; withdrawals likewise.
        """
        from ..bgp.constants import MessageType
        from ..bgp.messages import encode_header

        adv, wd = self._bulk_adv, self._bulk_wd
        self._bulk_adv = None
        self._bulk_wd = None
        for peer_address, prefixes in (wd or {}).items():
            for start in range(0, len(prefixes), 512):
                self._send_update(
                    peer_address,
                    UpdateMessage(withdrawn=prefixes[start : start + 512]),
                )
        for peer_address, groups in (adv or {}).items():
            for blob, prefixes in groups.items():
                head = struct.pack("!HH", 0, len(blob)) + blob
                room = max(1, (4096 - 19 - len(head)) // 5)
                for start in range(0, len(prefixes), room):
                    nlri = b"".join(
                        prefix.encode() for prefix in prefixes[start : start + room]
                    )
                    self._send_raw(
                        peer_address, encode_header(MessageType.UPDATE, head + nlri)
                    )
                    self.stats["updates_sent"] += 1

    def _send_update(self, peer_address: int, update: UpdateMessage) -> None:
        self._send_raw(peer_address, update.encode())
        self.stats["updates_sent"] += 1

    def _send_raw(self, peer_address: int, data: bytes) -> None:
        send_fn = self._send_fns.get(peer_address)
        if send_fn is not None:
            send_fn(data)

    # -- introspection ----------------------------------------------------------------

    def loc_rib_snapshot(self) -> Dict[Prefix, List[PathAttribute]]:
        """Prefix -> neutral attribute list, for cross-host equivalence tests."""
        return {
            route.prefix: sorted(
                route.attribute_list(), key=lambda a: a.type_code
            )
            for route in self.loc_rib.routes()
        }
