"""BIRD-style extended attributes (eattrs).

Real BIRD keeps route attributes in a generic ``eattr`` list — id,
flags, raw data — with a uniform find/set/unset API, which is why the
paper's BIRD glue was thin ("BIRD includes a flexible API to manage BGP
attributes.  xBGP simply extends this API").  PyBIRD mirrors that: an
:class:`EattrList` stores attribute values as the raw network-byte-
order bytes straight off the wire, so converting to and from the
neutral xBGP representation is almost free.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..bgp.attributes import PathAttribute

__all__ = ["Eattr", "EattrList"]


class Eattr:
    """One extended attribute: (code, flags, raw bytes).

    Effectively immutable — ``ea_set`` replaces the whole object — so
    the ``get_attr`` helper-struct bytes are memoised on ``_packed``
    (filled by the glue's ``get_attr_packed``).
    """

    __slots__ = ("code", "flags", "data", "_packed")

    def __init__(self, code: int, flags: int, data: bytes):
        self.code = code
        self.flags = flags
        self.data = bytes(data)
        self._packed: Optional[bytes] = None

    def to_path_attribute(self) -> PathAttribute:
        return PathAttribute(self.flags, self.code, self.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Eattr):
            return NotImplemented
        return (
            self.code == other.code
            and self.flags == other.flags
            and self.data == other.data
        )

    def __hash__(self) -> int:
        return hash((self.code, self.flags, self.data))

    def __repr__(self) -> str:
        return f"Eattr({self.code}, {self.flags:#04x}, {self.data.hex()})"


class EattrList:
    """Mutable list of eattrs with BIRD's find/set/unset API."""

    __slots__ = ("_attrs", "_ckey", "_write_cache")

    def __init__(self, attrs: Optional[Dict[int, Eattr]] = None):
        self._attrs: Dict[int, Eattr] = dict(attrs) if attrs else {}
        self._ckey: Optional[Tuple[Tuple[int, int, bytes], ...]] = None
        # ``set_attr`` template cache: (code, flags, data) -> the list
        # that results from that write, pre-memoised.  Valid only for
        # the *current* content, so copies share it (same content) and
        # any in-place mutation swaps in a fresh dict rather than
        # clearing the shared one.
        self._write_cache: Dict[Tuple[int, int, bytes], "EattrList"] = {}

    @classmethod
    def from_wire(cls, attributes: Iterable[PathAttribute]) -> "EattrList":
        """Build from decoded path attributes (keeps raw values)."""
        instance = cls()
        for attribute in attributes:
            instance._attrs[attribute.type_code] = Eattr(
                attribute.type_code, attribute.flags, attribute.value
            )
        return instance

    # -- the flexible attribute API --------------------------------------

    def ea_find(self, code: int) -> Optional[Eattr]:
        return self._attrs.get(code)

    def ea_set(self, code: int, flags: int, data: bytes) -> None:
        self._attrs[code] = Eattr(code, flags, data)
        self._ckey = None
        self._write_cache = {}

    def ea_unset(self, code: int) -> bool:
        removed = self._attrs.pop(code, None) is not None
        if removed:
            self._ckey = None
            self._write_cache = {}
        return removed

    def __contains__(self, code: int) -> bool:
        return code in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Eattr]:
        for code in sorted(self._attrs):
            yield self._attrs[code]

    # -- conversion / identity ----------------------------------------------

    def copy(self) -> "EattrList":
        clone = EattrList(self._attrs)
        clone._ckey = self._ckey  # same attrs, same identity
        clone._write_cache = self._write_cache  # same content, same templates
        return clone

    def to_path_attributes(self) -> List[PathAttribute]:
        return [eattr.to_path_attribute() for eattr in self]

    def cache_key(self) -> Tuple[Tuple[int, int, bytes], ...]:
        """Hashable identity used for update packing and dedup.

        Memoised (built once per distinct attribute-set state); any
        ``ea_set``/``ea_unset`` invalidates the cached tuple.
        """
        key = self._ckey
        if key is None:
            key = tuple((e.code, e.flags, e.data) for e in self)
            self._ckey = key
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EattrList):
            return NotImplemented
        return self._attrs == other._attrs

    def __repr__(self) -> str:
        return f"EattrList({list(self)!r})"
