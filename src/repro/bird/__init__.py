"""PyBIRD: the BIRD-flavoured host implementation.

BIRD-like internals: flexible eattr lists holding raw wire bytes, a
hash-table ROA store, lazy attribute parsing.  Thin xBGP glue.
"""

from .daemon import BirdDaemon
from .eattrs import Eattr, EattrList
from .rib import BirdRoute
from .xbgp_glue import BirdHost

__all__ = ["BirdDaemon", "Eattr", "EattrList", "BirdRoute", "BirdHost"]
