"""PyBIRD route objects: lazily-parsed views over eattr lists."""

from __future__ import annotations

import struct
from typing import List, Optional

from ..bgp.aspath import AsPath
from ..bgp.attributes import PathAttribute
from ..bgp.constants import AttrTypeCode, Origin, RouteOriginValidity
from ..bgp.peer import Neighbor
from ..bgp.prefix import Prefix
from ..bgp.rib import RouteView

__all__ = ["BirdRoute"]

_UNSET = object()


class BirdRoute(RouteView):
    """One route: prefix + source neighbor + shared eattr list.

    The eattr list is shared between the routes of one UPDATE (BIRD
    interns ``rta`` the same way); mutation therefore always goes
    through :meth:`with_eattrs`, which takes a fresh list.  Decision-
    process accessors parse the raw bytes on first use and memoise.
    """

    __slots__ = (
        "prefix",
        "source",
        "eattrs",
        "validity",
        "_local_pref",
        "_path_len",
        "_origin",
        "_med",
        "_next_hop",
    )

    def __init__(self, prefix: Prefix, source: Optional[Neighbor], eattrs):
        self.prefix = prefix
        self.source = source
        self.eattrs = eattrs
        self.validity: Optional[RouteOriginValidity] = None
        self._local_pref = _UNSET
        self._path_len = _UNSET
        self._origin = _UNSET
        self._med = _UNSET
        self._next_hop = _UNSET

    # -- RouteView contract ------------------------------------------------

    def attribute(self, type_code: int) -> Optional[PathAttribute]:
        eattr = self.eattrs.ea_find(type_code)
        return eattr.to_path_attribute() if eattr is not None else None

    def attribute_list(self) -> List[PathAttribute]:
        return self.eattrs.to_path_attributes()

    def with_attributes(self, attributes: List[PathAttribute]) -> "BirdRoute":
        from .eattrs import EattrList

        return self.with_eattrs(EattrList.from_wire(attributes))

    def with_eattrs(self, eattrs) -> "BirdRoute":
        clone = BirdRoute(self.prefix, self.source, eattrs)
        clone.validity = self.validity
        return clone

    # -- memoised decision accessors ------------------------------------------

    def local_pref(self) -> int:
        if self._local_pref is _UNSET:
            eattr = self.eattrs.ea_find(AttrTypeCode.LOCAL_PREF)
            self._local_pref = (
                struct.unpack("!I", eattr.data)[0]
                if eattr is not None and len(eattr.data) == 4
                else 100
            )
        return self._local_pref

    def as_path(self) -> AsPath:
        eattr = self.eattrs.ea_find(AttrTypeCode.AS_PATH)
        return AsPath.decode(eattr.data) if eattr is not None else AsPath()

    def as_path_length(self) -> int:
        if self._path_len is _UNSET:
            self._path_len = self.as_path().length()
        return self._path_len

    def origin(self) -> int:
        if self._origin is _UNSET:
            eattr = self.eattrs.ea_find(AttrTypeCode.ORIGIN)
            self._origin = (
                eattr.data[0] if eattr is not None and eattr.data else Origin.INCOMPLETE
            )
        return self._origin

    def med(self) -> int:
        if self._med is _UNSET:
            eattr = self.eattrs.ea_find(AttrTypeCode.MULTI_EXIT_DISC)
            self._med = (
                struct.unpack("!I", eattr.data)[0]
                if eattr is not None and len(eattr.data) == 4
                else 0
            )
        return self._med

    def next_hop(self) -> int:
        if self._next_hop is _UNSET:
            eattr = self.eattrs.ea_find(AttrTypeCode.NEXT_HOP)
            self._next_hop = (
                struct.unpack("!I", eattr.data)[0]
                if eattr is not None and len(eattr.data) == 4
                else 0
            )
        return self._next_hop

    def origin_asn(self) -> int:
        return self.as_path().origin_asn()

    def story_key(self):
        # The eattr list already memoises a hashable identity for the
        # encode cache; reuse it instead of converting to wire form.
        return (self.peer_address(), self.eattrs.cache_key())

    def __repr__(self) -> str:
        return f"BirdRoute({self.prefix}, from={self.source!r})"
