"""Protocol constants shared across the BGP substrate (RFC 4271 et al.)."""

from __future__ import annotations

import enum

__all__ = [
    "BGP_VERSION",
    "BGP_HEADER_SIZE",
    "BGP_MAX_MESSAGE_SIZE",
    "BGP_MARKER",
    "MessageType",
    "AttrTypeCode",
    "AttrFlag",
    "Origin",
    "AsPathSegmentType",
    "NotificationCode",
    "OpenSubcode",
    "UpdateSubcode",
    "FsmSubcode",
    "CeaseSubcode",
    "WellKnownCommunity",
    "SessionType",
    "RouteOriginValidity",
    "AS_TRANS",
]

BGP_VERSION = 4
BGP_HEADER_SIZE = 19
BGP_MAX_MESSAGE_SIZE = 4096
BGP_MARKER = b"\xff" * 16

#: Placeholder 2-octet AS for 4-octet AS numbers (RFC 6793).
AS_TRANS = 23456


class MessageType(enum.IntEnum):
    """RFC 4271 §4.1 message type codes."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4
    ROUTE_REFRESH = 5  # RFC 2918


class AttrTypeCode(enum.IntEnum):
    """Path attribute type codes (IANA BGP parameters registry)."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8
    ORIGINATOR_ID = 9
    CLUSTER_LIST = 10
    MP_REACH_NLRI = 14
    MP_UNREACH_NLRI = 15
    LARGE_COMMUNITIES = 32
    #: The paper's GeoLoc attribute (draft-chen-idr-geo-coordinates);
    #: never standardized, so it uses a code from the "reserved for
    #: development" upper range.
    GEOLOC = 243


class AttrFlag(enum.IntFlag):
    """Path attribute flag octet (RFC 4271 §4.3)."""

    EXTENDED_LENGTH = 0x10
    PARTIAL = 0x20
    TRANSITIVE = 0x40
    OPTIONAL = 0x80


class Origin(enum.IntEnum):
    """ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AsPathSegmentType(enum.IntEnum):
    """AS_PATH segment types."""

    AS_SET = 1
    AS_SEQUENCE = 2
    AS_CONFED_SEQUENCE = 3
    AS_CONFED_SET = 4


class NotificationCode(enum.IntEnum):
    """NOTIFICATION error codes (RFC 4271 §4.5)."""

    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


class OpenSubcode(enum.IntEnum):
    UNSUPPORTED_VERSION = 1
    BAD_PEER_AS = 2
    BAD_BGP_IDENTIFIER = 3
    UNSUPPORTED_OPTIONAL_PARAMETER = 4
    UNACCEPTABLE_HOLD_TIME = 6


class UpdateSubcode(enum.IntEnum):
    MALFORMED_ATTRIBUTE_LIST = 1
    UNRECOGNIZED_WELL_KNOWN_ATTRIBUTE = 2
    MISSING_WELL_KNOWN_ATTRIBUTE = 3
    ATTRIBUTE_FLAGS_ERROR = 4
    ATTRIBUTE_LENGTH_ERROR = 5
    INVALID_ORIGIN_ATTRIBUTE = 6
    INVALID_NEXT_HOP_ATTRIBUTE = 8
    OPTIONAL_ATTRIBUTE_ERROR = 9
    INVALID_NETWORK_FIELD = 10
    MALFORMED_AS_PATH = 11


class FsmSubcode(enum.IntEnum):
    """RFC 6608 FSM error subcodes."""

    UNSPECIFIED = 0
    UNEXPECTED_IN_OPENSENT = 1
    UNEXPECTED_IN_OPENCONFIRM = 2
    UNEXPECTED_IN_ESTABLISHED = 3


class CeaseSubcode(enum.IntEnum):
    """RFC 4486 cease subcodes."""

    MAX_PREFIXES_REACHED = 1
    ADMIN_SHUTDOWN = 2
    PEER_DECONFIGURED = 3
    ADMIN_RESET = 4
    CONNECTION_REJECTED = 5
    OTHER_CONFIGURATION_CHANGE = 6
    COLLISION_RESOLUTION = 7
    OUT_OF_RESOURCES = 8


class WellKnownCommunity(enum.IntEnum):
    """RFC 1997 well-known community values."""

    NO_EXPORT = 0xFFFFFF01
    NO_ADVERTISE = 0xFFFFFF02
    NO_EXPORT_SUBCONFED = 0xFFFFFF03


class SessionType(enum.IntEnum):
    """Session type as exposed by the xBGP ``peer_info`` helper."""

    IBGP_SESSION = 1
    EBGP_SESSION = 2
    LOCAL_SESSION = 3


class RouteOriginValidity(enum.IntEnum):
    """RFC 6811 origin-validation states."""

    VALID = 0
    NOT_FOUND = 1
    INVALID = 2
