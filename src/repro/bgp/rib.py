"""The abstract RFC 4271 RIB triple: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

These containers are the data structures the xBGP API exposes (Fig. 2
of the paper, blue boxes).  Both vendor daemons use them, but each
stores its *own* route class inside — PyFRR interns parsed attribute
sets, PyBIRD keeps lazily-parsed eattr lists — which is exactly the
heterogeneity the neutral xBGP representation has to bridge.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from .attributes import PathAttribute
from .constants import AttrTypeCode, Origin
from .peer import Neighbor
from .prefix import Prefix

__all__ = ["RouteView", "AdjRibIn", "LocRib", "AdjRibOut"]

R = TypeVar("R", bound="RouteView")


class RouteView:
    """The accessor contract every vendor route class implements.

    The decision process, policies and xBGP glue only touch routes
    through this interface, so they work with either daemon's internal
    representation.
    """

    __slots__ = ()

    #: The announced prefix.
    prefix: Prefix
    #: The neighbor the route was learned from (None = locally originated).
    source: Optional[Neighbor]

    def attribute(self, type_code: int) -> Optional[PathAttribute]:
        """Return the attribute in neutral form, or None."""
        raise NotImplementedError

    def attribute_list(self) -> List[PathAttribute]:
        """All attributes in neutral form (any order)."""
        raise NotImplementedError

    def with_attributes(self: R, attributes: List[PathAttribute]) -> R:
        """Return a copy of the route carrying ``attributes`` instead."""
        raise NotImplementedError

    # -- decision-process accessors (may be overridden with faster
    # implementations by the vendor route classes) --------------------

    def local_pref(self) -> int:
        attribute = self.attribute(AttrTypeCode.LOCAL_PREF)
        return attribute.as_u32() if attribute is not None else 100

    def as_path_length(self) -> int:
        attribute = self.attribute(AttrTypeCode.AS_PATH)
        return attribute.as_path().length() if attribute is not None else 0

    def origin(self) -> int:
        attribute = self.attribute(AttrTypeCode.ORIGIN)
        return int(attribute.as_origin()) if attribute is not None else Origin.INCOMPLETE

    def med(self) -> int:
        attribute = self.attribute(AttrTypeCode.MULTI_EXIT_DISC)
        return attribute.as_u32() if attribute is not None else 0

    def next_hop(self) -> int:
        attribute = self.attribute(AttrTypeCode.NEXT_HOP)
        return attribute.as_u32() if attribute is not None else 0

    def neighbor_asn(self) -> int:
        return self.source.peer_asn if self.source is not None else 0

    def from_ebgp(self) -> bool:
        return self.source is not None and self.source.is_ebgp()

    def originator_or_router_id(self) -> int:
        attribute = self.attribute(AttrTypeCode.ORIGINATOR_ID)
        if attribute is not None:
            return attribute.as_u32()
        return self.source.peer_router_id if self.source is not None else 0

    def cluster_list_length(self) -> int:
        attribute = self.attribute(AttrTypeCode.CLUSTER_LIST)
        return len(attribute.value) // 4 if attribute is not None else 0

    def peer_address(self) -> int:
        return self.source.peer_address if self.source is not None else 0

    # -- provenance -----------------------------------------------------

    def story_key(self):
        """Hashable identity of this route's *content* (peer + attrs).

        The provenance flap/oscillation detector compares successive
        best routes by this key: two routes with the same learning peer
        and byte-identical attribute sets are the same path, however
        many times the object was rebuilt.  Vendor route classes
        override this with cheaper keys (interned attribute sets,
        eattr-list cache keys).
        """
        return (
            self.peer_address(),
            tuple(
                sorted(
                    (int(attr.type_code), attr.flags, bytes(attr.value))
                    for attr in self.attribute_list()
                )
            ),
        )


class AdjRibIn(Generic[R]):
    """Per-peer table of accepted incoming routes."""

    def __init__(self) -> None:
        self._tables: Dict[int, Dict[Prefix, R]] = {}

    def update(self, peer_address: int, route: R) -> Optional[R]:
        """Install ``route``; return the replaced route if any."""
        table = self._tables.setdefault(peer_address, {})
        previous = table.get(route.prefix)
        table[route.prefix] = route
        return previous

    def withdraw(self, peer_address: int, prefix: Prefix) -> Optional[R]:
        """Remove ``prefix`` learned from ``peer_address`` if present."""
        table = self._tables.get(peer_address)
        if table is None:
            return None
        return table.pop(prefix, None)

    def drop_peer(self, peer_address: int) -> List[R]:
        """Flush a peer's table (session down); return its routes."""
        table = self._tables.pop(peer_address, None)
        return list(table.values()) if table else []

    def candidates(self, prefix: Prefix) -> List[R]:
        """Every route for ``prefix`` across all peers."""
        return [
            table[prefix] for table in self._tables.values() if prefix in table
        ]

    def routes_from(self, peer_address: int) -> Iterator[R]:
        yield from self._tables.get(peer_address, {}).values()

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())


class LocRib(Generic[R]):
    """Best route per prefix, as selected by the decision process."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, R] = {}
        #: Optional observer ``fn(action, prefix, route, previous)``
        #: with action in {"install", "replace", "remove"}; the
        #: provenance tracker hooks it to watch best-route churn.
        self.on_change = None

    def install(self, route: R) -> Optional[R]:
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        if self.on_change is not None:
            action = "replace" if previous is not None else "install"
            self.on_change(action, route.prefix, route, previous)
        return previous

    def remove(self, prefix: Prefix) -> Optional[R]:
        removed = self._routes.pop(prefix, None)
        if removed is not None and self.on_change is not None:
            self.on_change("remove", prefix, None, removed)
        return removed

    def lookup(self, prefix: Prefix) -> Optional[R]:
        return self._routes.get(prefix)

    def routes(self) -> Iterator[R]:
        yield from self._routes.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._routes.keys()

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __len__(self) -> int:
        return len(self._routes)


class AdjRibOut(Generic[R]):
    """Per-peer table of routes advertised (post export filter)."""

    def __init__(self) -> None:
        self._tables: Dict[int, Dict[Prefix, R]] = {}

    def advertise(self, peer_address: int, route: R) -> Optional[R]:
        table = self._tables.setdefault(peer_address, {})
        previous = table.get(route.prefix)
        table[route.prefix] = route
        return previous

    def withdraw(self, peer_address: int, prefix: Prefix) -> Optional[R]:
        table = self._tables.get(peer_address)
        if table is None:
            return None
        return table.pop(prefix, None)

    def advertised(self, peer_address: int, prefix: Prefix) -> Optional[R]:
        table = self._tables.get(peer_address)
        return table.get(prefix) if table else None

    def routes_to(self, peer_address: int) -> Iterator[R]:
        yield from self._tables.get(peer_address, {}).values()

    def drop_peer(self, peer_address: int) -> None:
        self._tables.pop(peer_address, None)

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())
