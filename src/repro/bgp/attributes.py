"""Path attribute wire codec and the neutral xBGP representation.

RFC 4271 §4.3 encodes each attribute as::

    flags(1) | type(1) | length(1 or 2) | value

:class:`PathAttribute` holds exactly that — flags, type code and the
raw network-byte-order value — which is xBGP's *neutral representation*
(§2.1 of the paper: "the xBGP functions that deal with BGP messages and
attributes always manipulate them in network byte order").  Host
implementations translate this form to and from their internal storage.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from .aspath import AsPath
from .communities import decode_communities, encode_communities
from .constants import AttrFlag, AttrTypeCode, Origin
from .prefix import format_ipv4

__all__ = [
    "PathAttribute",
    "AttributeDecodeError",
    "decode_attributes",
    "encode_attributes",
    "make_origin",
    "make_as_path",
    "make_next_hop",
    "make_med",
    "make_local_pref",
    "make_atomic_aggregate",
    "make_aggregator",
    "make_communities",
    "make_originator_id",
    "make_cluster_list",
    "make_geoloc",
    "decode_geoloc",
    "GEOLOC_SCALE",
]

#: GeoLoc fixed-point scale: degrees are stored as round(deg * 1e7),
#: the resolution used by draft-chen-idr-geo-coordinates.
GEOLOC_SCALE = 10_000_000


class AttributeDecodeError(ValueError):
    """Raised for malformed path attribute wire bytes."""


_WELL_KNOWN_FLAGS: Dict[int, int] = {
    AttrTypeCode.ORIGIN: AttrFlag.TRANSITIVE,
    AttrTypeCode.AS_PATH: AttrFlag.TRANSITIVE,
    AttrTypeCode.NEXT_HOP: AttrFlag.TRANSITIVE,
    AttrTypeCode.MULTI_EXIT_DISC: AttrFlag.OPTIONAL,
    AttrTypeCode.LOCAL_PREF: AttrFlag.TRANSITIVE,
    AttrTypeCode.ATOMIC_AGGREGATE: AttrFlag.TRANSITIVE,
    AttrTypeCode.AGGREGATOR: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrTypeCode.COMMUNITIES: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrTypeCode.ORIGINATOR_ID: AttrFlag.OPTIONAL,
    AttrTypeCode.CLUSTER_LIST: AttrFlag.OPTIONAL,
    AttrTypeCode.LARGE_COMMUNITIES: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
    AttrTypeCode.GEOLOC: AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE,
}


class PathAttribute:
    """One path attribute in neutral (network-byte-order) form."""

    __slots__ = ("flags", "type_code", "value")

    def __init__(self, flags: int, type_code: int, value: bytes):
        self.flags = int(flags) & 0xFF
        self.type_code = int(type_code) & 0xFF
        self.value = bytes(value)

    # -- flag predicates ---------------------------------------------

    @property
    def optional(self) -> bool:
        return bool(self.flags & AttrFlag.OPTIONAL)

    @property
    def transitive(self) -> bool:
        return bool(self.flags & AttrFlag.TRANSITIVE)

    @property
    def partial(self) -> bool:
        return bool(self.flags & AttrFlag.PARTIAL)

    # -- wire --------------------------------------------------------

    def encode(self) -> bytes:
        """Encode flags/type/length/value, choosing extended length as needed."""
        flags = self.flags
        length = len(self.value)
        if length > 255:
            # 0x10 = extended-length flag (plain int: hot path).
            header = struct.pack("!BBH", flags | 0x10, self.type_code, length)
        else:
            header = struct.pack("!BBB", flags & 0xEF, self.type_code, length)
        return header + self.value

    # -- typed views -------------------------------------------------

    def as_u32(self) -> int:
        """Interpret a 4-byte value (MED, LOCAL_PREF, ORIGINATOR_ID…)."""
        if len(self.value) != 4:
            raise AttributeDecodeError(
                f"attribute {self.type_code} is {len(self.value)} bytes, expected 4"
            )
        return struct.unpack("!I", self.value)[0]

    def as_origin(self) -> Origin:
        if len(self.value) != 1:
            raise AttributeDecodeError("ORIGIN must be one byte")
        return Origin(self.value[0])

    def as_path(self) -> AsPath:
        return AsPath.decode(self.value)

    def as_communities(self):
        return decode_communities(self.value)

    def as_cluster_list(self) -> Tuple[int, ...]:
        if len(self.value) % 4 != 0:
            raise AttributeDecodeError("CLUSTER_LIST not a multiple of 4")
        return tuple(
            struct.unpack_from("!I", self.value, i)[0]
            for i in range(0, len(self.value), 4)
        )

    # -- dunder ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathAttribute):
            return NotImplemented
        return (
            self.flags == other.flags
            and self.type_code == other.type_code
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.flags, self.type_code, self.value))

    def __repr__(self) -> str:
        try:
            name = AttrTypeCode(self.type_code).name
        except ValueError:
            name = str(self.type_code)
        return f"PathAttribute({name}, flags={self.flags:#04x}, {self.value.hex()})"


def decode_attributes(data: bytes) -> List[PathAttribute]:
    """Decode a packed path-attributes block (UPDATE field)."""
    attributes: List[PathAttribute] = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise AttributeDecodeError("truncated attribute header")
        flags = data[offset]
        type_code = data[offset + 1]
        offset += 2
        if flags & AttrFlag.EXTENDED_LENGTH:
            if offset + 2 > len(data):
                raise AttributeDecodeError("truncated extended length")
            (length,) = struct.unpack_from("!H", data, offset)
            offset += 2
        else:
            if offset + 1 > len(data):
                raise AttributeDecodeError("truncated length")
            length = data[offset]
            offset += 1
        end = offset + length
        if end > len(data):
            raise AttributeDecodeError(
                f"attribute {type_code} body truncated ({length} bytes claimed)"
            )
        # EXTENDED_LENGTH is an encoding artifact, not a semantic flag:
        # normalize it away so attribute identity survives re-encoding.
        attributes.append(PathAttribute(flags & 0xEF, type_code, data[offset:end]))
        offset = end
    return attributes


def encode_attributes(attributes: Iterable[PathAttribute]) -> bytes:
    """Encode attributes sorted by type code (canonical order)."""
    ordered = sorted(attributes, key=lambda a: a.type_code)
    return b"".join(attribute.encode() for attribute in ordered)


# -- constructors for known attributes --------------------------------


def _flags_for(code: AttrTypeCode) -> int:
    return int(_WELL_KNOWN_FLAGS.get(code, AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE))


def make_origin(origin: Origin) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.ORIGIN), AttrTypeCode.ORIGIN, bytes([origin])
    )


def make_as_path(path: AsPath) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.AS_PATH), AttrTypeCode.AS_PATH, path.encode()
    )


def make_next_hop(address: int) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.NEXT_HOP),
        AttrTypeCode.NEXT_HOP,
        struct.pack("!I", address),
    )


def make_med(value: int) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.MULTI_EXIT_DISC),
        AttrTypeCode.MULTI_EXIT_DISC,
        struct.pack("!I", value),
    )


def make_local_pref(value: int) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.LOCAL_PREF),
        AttrTypeCode.LOCAL_PREF,
        struct.pack("!I", value),
    )


def make_atomic_aggregate() -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.ATOMIC_AGGREGATE), AttrTypeCode.ATOMIC_AGGREGATE, b""
    )


def make_aggregator(asn: int, router_id: int) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.AGGREGATOR),
        AttrTypeCode.AGGREGATOR,
        struct.pack("!II", asn, router_id),
    )


def make_communities(communities: Iterable[int]) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.COMMUNITIES),
        AttrTypeCode.COMMUNITIES,
        encode_communities(communities),
    )


def make_originator_id(router_id: int) -> PathAttribute:
    return PathAttribute(
        _flags_for(AttrTypeCode.ORIGINATOR_ID),
        AttrTypeCode.ORIGINATOR_ID,
        struct.pack("!I", router_id),
    )


def make_cluster_list(cluster_ids: Iterable[int]) -> PathAttribute:
    value = b"".join(struct.pack("!I", cid) for cid in cluster_ids)
    return PathAttribute(
        _flags_for(AttrTypeCode.CLUSTER_LIST), AttrTypeCode.CLUSTER_LIST, value
    )


def make_geoloc(latitude: float, longitude: float) -> PathAttribute:
    """Build the paper's GeoLoc attribute (§2 example).

    Coordinates are fixed-point signed 32-bit degrees scaled by 1e7,
    latitude first, network byte order.
    """
    if not -90.0 <= latitude <= 90.0:
        raise ValueError(f"latitude out of range: {latitude}")
    if not -180.0 <= longitude <= 180.0:
        raise ValueError(f"longitude out of range: {longitude}")
    value = struct.pack(
        "!ii", round(latitude * GEOLOC_SCALE), round(longitude * GEOLOC_SCALE)
    )
    return PathAttribute(_flags_for(AttrTypeCode.GEOLOC), AttrTypeCode.GEOLOC, value)


def decode_geoloc(attribute: PathAttribute) -> Tuple[float, float]:
    """Decode a GeoLoc attribute into (latitude, longitude) degrees."""
    if len(attribute.value) != 8:
        raise AttributeDecodeError("GEOLOC must be 8 bytes")
    lat_fp, lon_fp = struct.unpack("!ii", attribute.value)
    return lat_fp / GEOLOC_SCALE, lon_fp / GEOLOC_SCALE


def describe(attribute: PathAttribute) -> str:
    """Render an attribute for logs and debugging."""
    code = attribute.type_code
    try:
        name = AttrTypeCode(code).name
    except ValueError:
        return f"attr#{code}={attribute.value.hex()}"
    if code == AttrTypeCode.ORIGIN:
        return f"ORIGIN={attribute.as_origin().name}"
    if code == AttrTypeCode.AS_PATH:
        return f"AS_PATH={attribute.as_path()}"
    if code == AttrTypeCode.NEXT_HOP:
        return f"NEXT_HOP={format_ipv4(attribute.as_u32())}"
    if code in (AttrTypeCode.MULTI_EXIT_DISC, AttrTypeCode.LOCAL_PREF):
        return f"{name}={attribute.as_u32()}"
    if code == AttrTypeCode.COMMUNITIES:
        rendered = " ".join(str(c) for c in sorted(attribute.as_communities()))
        return f"COMMUNITIES=[{rendered}]"
    if code == AttrTypeCode.ORIGINATOR_ID:
        return f"ORIGINATOR_ID={format_ipv4(attribute.as_u32())}"
    if code == AttrTypeCode.CLUSTER_LIST:
        rendered = " ".join(format_ipv4(c) for c in attribute.as_cluster_list())
        return f"CLUSTER_LIST=[{rendered}]"
    if code == AttrTypeCode.GEOLOC:
        lat, lon = decode_geoloc(attribute)
        return f"GEOLOC=({lat:.5f}, {lon:.5f})"
    return f"{name}={attribute.value.hex()}"
