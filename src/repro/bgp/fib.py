"""Forwarding Information Base: longest-prefix-match forwarding.

Fig. 2 of the paper shows the control plane pushing best routes into
the router's FIB.  This module is that data plane: a prefix trie from
the Loc-RIB's best routes to next-hop addresses, plus longest-match
lookup.  The simulator uses it to *forward* (trace actual packet
paths), which lets tests assert data-plane properties — e.g. that the
valley-free fabric really carries traffic over the paths the RIBs
promise.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .prefix import Prefix
from .trie import PrefixTrie

__all__ = ["Fib", "FibEntry"]


class FibEntry:
    """One forwarding entry: next hop plus provenance."""

    __slots__ = ("prefix", "next_hop", "local")

    def __init__(self, prefix: Prefix, next_hop: int, local: bool = False):
        self.prefix = prefix
        self.next_hop = next_hop
        #: True when the prefix is attached locally (packet delivered).
        self.local = local

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FibEntry):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.next_hop == other.next_hop
            and self.local == other.local
        )

    def __repr__(self) -> str:
        kind = "local" if self.local else f"via {self.next_hop:#010x}"
        return f"FibEntry({self.prefix}, {kind})"


class Fib:
    """Longest-prefix-match forwarding table."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[FibEntry] = PrefixTrie()

    def install(self, entry: FibEntry) -> None:
        self._trie.insert(entry.prefix, entry)

    def remove(self, prefix: Prefix) -> Optional[FibEntry]:
        try:
            return self._trie.remove(prefix)
        except KeyError:
            return None

    def lookup(self, address: int) -> Optional[FibEntry]:
        """Longest-match forwarding decision for a destination address."""
        match = self._trie.lookup_address(address)
        return match[1] if match else None

    def lookup_prefix(self, prefix: Prefix) -> Optional[FibEntry]:
        match = self._trie.longest_match(prefix)
        return match[1] if match else None

    def entries(self) -> Iterator[FibEntry]:
        for _, entry in self._trie.items():
            yield entry

    def __len__(self) -> int:
        return len(self._trie)

    @classmethod
    def from_loc_rib(cls, loc_rib) -> "Fib":
        """Build the FIB from a Loc-RIB (RouteView objects)."""
        fib = cls()
        for route in loc_rib.routes():
            fib.install(
                FibEntry(
                    route.prefix,
                    route.next_hop(),
                    local=route.source is None,
                )
            )
        return fib
