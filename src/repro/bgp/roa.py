"""Route Origin Authorizations and RFC 6811 origin validation.

Two interchangeable stores implement the same validation semantics with
the two data structures §3.4 of the paper contrasts:

* :class:`TrieRoaTable` — FRRouting style: ROAs live in a prefix trie
  that is *browsed* (walk every covering node) on each check;
* :class:`HashRoaTable` — BIRD style: ROAs are bucketed in a hash table
  keyed by (network, length) and a check probes at most ``33 - minlen``
  buckets.

The paper found the hash-based extension ~10 % *faster* than FRR's
native trie browse; the two stores let us reproduce (and ablate) that.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .constants import RouteOriginValidity
from .prefix import Prefix, mask_for
from .trie import PrefixTrie

__all__ = [
    "Roa",
    "RoaTable",
    "TrieRoaTable",
    "HashRoaTable",
    "load_roa_file",
    "dump_roa_file",
    "make_roas_for_prefixes",
]


class Roa:
    """One ROA: prefix, authorized origin AS, max length."""

    __slots__ = ("prefix", "asn", "max_length")

    def __init__(self, prefix: Prefix, asn: int, max_length: Optional[int] = None):
        if max_length is None:
            max_length = prefix.length
        if not prefix.length <= max_length <= 32:
            raise ValueError(
                f"maxLength {max_length} outside [{prefix.length}, 32]"
            )
        self.prefix = prefix
        self.asn = asn
        self.max_length = max_length

    def authorizes(self, prefix: Prefix, origin_asn: int) -> bool:
        """RFC 6811: ROA covers the prefix, length fits, origin matches."""
        return (
            self.prefix.contains(prefix)
            and prefix.length <= self.max_length
            and self.asn == origin_asn
            and self.asn != 0
        )

    def covers(self, prefix: Prefix) -> bool:
        """The ROA covers the prefix (regardless of origin/maxlen)."""
        return self.prefix.contains(prefix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Roa):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.asn == other.asn
            and self.max_length == other.max_length
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.asn, self.max_length))

    def __repr__(self) -> str:
        return f"Roa({self.prefix}, AS{self.asn}, maxlen={self.max_length})"


class RoaTable:
    """Validation interface shared by both stores."""

    def add(self, roa: Roa) -> None:
        raise NotImplementedError

    def remove(self, roa: Roa) -> None:
        raise NotImplementedError

    def covering(self, prefix: Prefix) -> List[Roa]:
        """All ROAs whose prefix covers ``prefix``."""
        raise NotImplementedError

    def all_roas(self) -> List[Roa]:
        """Every stored ROA (order unspecified)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def validate(self, prefix: Prefix, origin_asn: int) -> RouteOriginValidity:
        """RFC 6811 §2 validation outcome."""
        covering = self.covering(prefix)
        if not covering:
            return RouteOriginValidity.NOT_FOUND
        for roa in covering:
            if roa.authorizes(prefix, origin_asn):
                return RouteOriginValidity.VALID
        return RouteOriginValidity.INVALID

    def extend(self, roas: Iterable[Roa]) -> None:
        for roa in roas:
            self.add(roa)


class TrieRoaTable(RoaTable):
    """FRRouting-style trie store: validation browses the trie."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[List[Roa]] = PrefixTrie()
        self._count = 0

    def add(self, roa: Roa) -> None:
        bucket = self._trie.get(roa.prefix)
        if bucket is None:
            bucket = []
            self._trie.insert(roa.prefix, bucket)
        if roa not in bucket:
            bucket.append(roa)
            self._count += 1

    def remove(self, roa: Roa) -> None:
        bucket = self._trie.get(roa.prefix)
        if bucket is None or roa not in bucket:
            raise KeyError(repr(roa))
        bucket.remove(roa)
        self._count -= 1
        if not bucket:
            self._trie.remove(roa.prefix)

    def covering(self, prefix: Prefix) -> List[Roa]:
        # Deliberate per-check walk of every node on the path — the
        # behaviour FRRouting's validated-ROA trie browse exhibits.
        found: List[Roa] = []
        for _, bucket in self._trie.covering(prefix):
            found.extend(bucket)
        return found

    def all_roas(self) -> List[Roa]:
        return [roa for _, bucket in self._trie.items() for roa in bucket]

    def __len__(self) -> int:
        return self._count


class HashRoaTable(RoaTable):
    """BIRD-style hash store: buckets keyed by (network, length)."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[int, int], List[Roa]] = {}
        self._count = 0
        self._min_length = 33

    def add(self, roa: Roa) -> None:
        key = (roa.prefix.network, roa.prefix.length)
        bucket = self._buckets.setdefault(key, [])
        if roa not in bucket:
            bucket.append(roa)
            self._count += 1
            self._min_length = min(self._min_length, roa.prefix.length)

    def remove(self, roa: Roa) -> None:
        key = (roa.prefix.network, roa.prefix.length)
        bucket = self._buckets.get(key)
        if bucket is None or roa not in bucket:
            raise KeyError(repr(roa))
        bucket.remove(roa)
        self._count -= 1
        if not bucket:
            del self._buckets[key]

    def covering(self, prefix: Prefix) -> List[Roa]:
        found: List[Roa] = []
        buckets = self._buckets
        if not buckets:
            return found
        network = prefix.network
        get = buckets.get
        for length in range(self._min_length, prefix.length + 1):
            shift = 32 - length
            bucket = get(((network >> shift) << shift if shift else network, length))
            if bucket:
                found.extend(bucket)
        return found

    def all_roas(self) -> List[Roa]:
        return [roa for bucket in self._buckets.values() for roa in bucket]

    def __len__(self) -> int:
        return self._count


def load_roa_file(path: str, table: Optional[RoaTable] = None) -> RoaTable:
    """Load a ROA table from a text file.

    Format: one ROA per line, ``prefix/len origin_asn [max_length]``;
    blank lines and ``#`` comments are skipped.  Matches the paper's
    methodology: the DUT "does not implement the RPKI-Rtr protocol but
    loads a file".
    """
    if table is None:
        table = HashRoaTable()
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise ValueError(f"{path}:{line_number}: expected 2-3 fields")
            prefix = Prefix.parse(fields[0])
            asn = int(fields[1])
            max_length = int(fields[2]) if len(fields) == 3 else None
            table.add(Roa(prefix, asn, max_length))
    return table


def dump_roa_file(path: str, roas: Iterable[Roa]) -> None:
    """Write ROAs in the :func:`load_roa_file` format."""
    with open(path, "w") as handle:
        handle.write("# prefix origin_asn max_length\n")
        for roa in roas:
            handle.write(f"{roa.prefix} {roa.asn} {roa.max_length}\n")


def make_roas_for_prefixes(
    origins: Iterable[Tuple[Prefix, int]],
    valid_fraction: float = 0.75,
    seed: int = 20200604,
) -> List[Roa]:
    """Build a ROA set marking ``valid_fraction`` of the routes VALID.

    Reproduces the paper's §3.4 workload: "loads a file that considers
    75 % of the injected prefixes as valid".  For a deterministic
    ``seed``, each (prefix, origin) pair independently gets a matching
    ROA with probability ``valid_fraction``; the rest get a ROA for a
    different AS (making them INVALID) with probability one half, or no
    ROA (NOT_FOUND) otherwise.
    """
    if not 0.0 <= valid_fraction <= 1.0:
        raise ValueError(f"valid_fraction out of range: {valid_fraction}")
    rng = random.Random(seed)
    roas: List[Roa] = []
    for prefix, origin_asn in origins:
        draw = rng.random()
        if draw < valid_fraction:
            roas.append(Roa(prefix, origin_asn, prefix.length))
        elif draw < valid_fraction + (1.0 - valid_fraction) / 2.0:
            roas.append(Roa(prefix, origin_asn + 1 or 1, prefix.length))
        # else: no ROA -> NOT_FOUND
    return roas
