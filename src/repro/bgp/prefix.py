"""IPv4 addresses and prefixes.

The whole substrate manipulates IPv4 addresses as plain integers in host
representation and :class:`Prefix` objects for NLRI.  Keeping addresses
as integers (instead of ``ipaddress`` objects) keeps the hot paths — RIB
insertion, trie walks, wire encoding — allocation free.

Wire helpers follow RFC 4271 §4.3: a prefix is encoded as a length octet
followed by ``ceil(length / 8)`` octets of the most significant bits.
"""

from __future__ import annotations

import struct
from typing import Iterator, Tuple

__all__ = [
    "Prefix",
    "parse_ipv4",
    "format_ipv4",
    "mask_for",
    "PrefixDecodeError",
]

_MAX_IPV4 = 0xFFFFFFFF


class PrefixDecodeError(ValueError):
    """Raised when wire bytes do not form a valid RFC 4271 prefix."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format integer ``value`` as a dotted quad.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"not an IPv4 address: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mask_for(length: int) -> int:
    """Return the network mask integer for a prefix ``length``."""
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


class Prefix:
    """An IPv4 prefix: network integer plus length, canonicalised.

    Instances are immutable, hashable and ordered (by network then
    length) so they can key RIB dictionaries and sort deterministically.
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int):
        mask = mask_for(length)
        object.__setattr__(self, "network", network & mask)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.0.0.0/8"`` (a bare address means /32)."""
        if "/" in text:
            addr, _, plen = text.partition("/")
            return cls(parse_ipv4(addr), int(plen))
        return cls(parse_ipv4(text), 32)

    # -- wire format -------------------------------------------------

    def encode(self) -> bytes:
        """Encode per RFC 4271 §4.3 (length octet + significant bytes)."""
        nbytes = (self.length + 7) // 8
        packed = struct.pack("!I", self.network)[:nbytes]
        return bytes([self.length]) + packed

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> Tuple["Prefix", int]:
        """Decode one prefix at ``offset``; return (prefix, next offset)."""
        if offset >= len(data):
            raise PrefixDecodeError("truncated prefix: missing length octet")
        length = data[offset]
        if length > 32:
            raise PrefixDecodeError(f"prefix length {length} > 32")
        nbytes = (length + 7) // 8
        end = offset + 1 + nbytes
        if end > len(data):
            raise PrefixDecodeError("truncated prefix body")
        raw = data[offset + 1 : end] + b"\x00" * (4 - nbytes)
        (network,) = struct.unpack("!I", raw)
        return cls(network, length), end

    @classmethod
    def decode_all(cls, data: bytes) -> Iterator["Prefix"]:
        """Decode a packed run of prefixes (an NLRI field)."""
        offset = 0
        while offset < len(data):
            prefix, offset = cls.decode(data, offset)
            yield prefix

    # -- set relations -----------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than ``self``."""
        if other.length < self.length:
            return False
        return (other.network & mask_for(self.length)) == self.network

    def contains_address(self, address: int) -> bool:
        """True if integer ``address`` falls inside this prefix."""
        return (address & mask_for(self.length)) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = most significant) of the network."""
        if not 0 <= index < 32:
            raise IndexError(f"bit index out of range: {index}")
        return (self.network >> (31 - index)) & 1

    # -- dunder ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __le__(self, other: "Prefix") -> bool:
        return (self.network, self.length) <= (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __reduce__(self):
        # The immutability guard in __setattr__ breaks the default
        # slots-state protocol; rebuild through the constructor instead
        # (sharded replay ships prefixes across process boundaries).
        return (Prefix, (self.network, self.length))

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"
