"""RFC 1997 communities and RFC 8092 large communities."""

from __future__ import annotations

import struct
from typing import FrozenSet, Iterable, Tuple

from .constants import WellKnownCommunity

__all__ = [
    "Community",
    "community",
    "encode_communities",
    "decode_communities",
    "LargeCommunity",
    "encode_large_communities",
    "decode_large_communities",
    "CommunityDecodeError",
]


class CommunityDecodeError(ValueError):
    """Raised for malformed community wire bytes."""


class Community(int):
    """A 32-bit community, printable as ``asn:value``."""

    def __new__(cls, value: int) -> "Community":
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"community out of range: {value:#x}")
        return super().__new__(cls, value)

    @property
    def asn(self) -> int:
        return int(self) >> 16

    @property
    def value(self) -> int:
        return int(self) & 0xFFFF

    def is_well_known(self) -> bool:
        return int(self) in WellKnownCommunity._value2member_map_

    def __str__(self) -> str:
        if self.is_well_known():
            return WellKnownCommunity(int(self)).name
        return f"{self.asn}:{self.value}"

    def __repr__(self) -> str:
        return f"Community({str(self)!r})"


def community(asn: int, value: int) -> Community:
    """Build a community from its ``asn:value`` halves."""
    if not 0 <= asn <= 0xFFFF or not 0 <= value <= 0xFFFF:
        raise ValueError(f"community halves out of range: {asn}:{value}")
    return Community((asn << 16) | value)


def encode_communities(communities: Iterable[int]) -> bytes:
    """Encode the COMMUNITIES attribute value (sorted for determinism)."""
    return b"".join(struct.pack("!I", int(c)) for c in sorted(set(communities)))


def decode_communities(data: bytes) -> FrozenSet[Community]:
    """Decode a COMMUNITIES attribute value into a frozen set."""
    if len(data) % 4 != 0:
        raise CommunityDecodeError(f"length {len(data)} not a multiple of 4")
    return frozenset(
        Community(struct.unpack_from("!I", data, i)[0]) for i in range(0, len(data), 4)
    )


class LargeCommunity(Tuple[int, int, int]):
    """A 12-byte (global, local1, local2) large community."""

    def __new__(cls, global_admin: int, local1: int, local2: int) -> "LargeCommunity":
        for part in (global_admin, local1, local2):
            if not 0 <= part <= 0xFFFFFFFF:
                raise ValueError(f"large community part out of range: {part}")
        return super().__new__(cls, (global_admin, local1, local2))

    def __str__(self) -> str:
        return ":".join(str(part) for part in self)


def encode_large_communities(communities: Iterable[LargeCommunity]) -> bytes:
    """Encode the LARGE_COMMUNITIES attribute value."""
    return b"".join(struct.pack("!III", *c) for c in sorted(set(communities)))


def decode_large_communities(data: bytes) -> FrozenSet[LargeCommunity]:
    """Decode a LARGE_COMMUNITIES attribute value."""
    if len(data) % 12 != 0:
        raise CommunityDecodeError(f"length {len(data)} not a multiple of 12")
    return frozenset(
        LargeCommunity(*struct.unpack_from("!III", data, i))
        for i in range(0, len(data), 12)
    )
