"""Shared BGP protocol substrate: wire format, RIBs, decision process.

This package is the RFC 4271 machinery both vendor daemons
(:mod:`repro.frr`, :mod:`repro.bird`) are built on.  The xBGP layer
(:mod:`repro.core`) exposes these abstract data structures through the
vendor-neutral API.
"""

from .aspath import AsPath, AsPathSegment
from .attributes import PathAttribute
from .communities import Community, LargeCommunity, community
from .constants import (
    AttrFlag,
    AttrTypeCode,
    MessageType,
    Origin,
    RouteOriginValidity,
    SessionType,
)
from .messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from .peer import Neighbor
from .prefix import Prefix, format_ipv4, parse_ipv4
from .roa import HashRoaTable, Roa, TrieRoaTable

__all__ = [
    "AsPath",
    "AsPathSegment",
    "PathAttribute",
    "Community",
    "LargeCommunity",
    "community",
    "AttrFlag",
    "AttrTypeCode",
    "MessageType",
    "Origin",
    "RouteOriginValidity",
    "SessionType",
    "KeepaliveMessage",
    "NotificationMessage",
    "OpenMessage",
    "UpdateMessage",
    "Neighbor",
    "Prefix",
    "format_ipv4",
    "parse_ipv4",
    "HashRoaTable",
    "Roa",
    "TrieRoaTable",
]
