"""Native import/export filter framework.

Both daemons evaluate ordered filter chains at the inbound- and
outbound-filter points.  Each filter returns a :class:`FilterResult`:
``ACCEPT`` or ``REJECT`` short-circuit the chain; ``CONTINUE`` passes
the (possibly rewritten) route to the next filter, falling through to
accept at chain end — the same semantics the VMM's ``next()`` chaining
gives xBGP extension code, so native and extension filters compose.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .attributes import PathAttribute, make_communities
from .constants import AttrTypeCode, WellKnownCommunity
from .peer import Neighbor
from .prefix import Prefix
from .rib import RouteView

__all__ = [
    "FilterAction",
    "FilterResult",
    "FilterChain",
    "PrefixListFilter",
    "CommunityTagFilter",
    "CommunityMatchFilter",
    "AsPathLoopFilter",
    "NoExportFilter",
]


class FilterAction(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"
    CONTINUE = "continue"


class FilterResult:
    """Outcome of one filter: an action plus the (maybe rewritten) route."""

    __slots__ = ("action", "route")

    def __init__(self, action: FilterAction, route: Optional[RouteView] = None):
        self.action = action
        self.route = route

    @classmethod
    def accept(cls, route: RouteView) -> "FilterResult":
        return cls(FilterAction.ACCEPT, route)

    @classmethod
    def reject(cls) -> "FilterResult":
        return cls(FilterAction.REJECT)

    @classmethod
    def proceed(cls, route: RouteView) -> "FilterResult":
        return cls(FilterAction.CONTINUE, route)


#: A filter: (route, neighbor) -> FilterResult.
Filter = Callable[[RouteView, Neighbor], FilterResult]


class FilterChain:
    """Ordered filter list with CONTINUE/ACCEPT/REJECT semantics."""

    def __init__(self, filters: Iterable[Filter] = ()):
        self._filters: List[Filter] = list(filters)

    def append(self, filter_fn: Filter) -> None:
        self._filters.append(filter_fn)

    def __len__(self) -> int:
        return len(self._filters)

    def evaluate(self, route: RouteView, neighbor: Neighbor) -> Optional[RouteView]:
        """Run the chain; return the accepted route or None if rejected."""
        current = route
        for filter_fn in self._filters:
            result = filter_fn(current, neighbor)
            if result.action == FilterAction.REJECT:
                return None
            if result.route is not None:
                current = result.route
            if result.action == FilterAction.ACCEPT:
                return current
        return current


class PrefixListFilter:
    """Reject (or only-accept) routes matching a prefix list."""

    def __init__(self, prefixes: Sequence[Prefix], permit: bool = False):
        self._prefixes = tuple(prefixes)
        self._permit = permit

    def __call__(self, route: RouteView, neighbor: Neighbor) -> FilterResult:
        matched = any(entry.contains(route.prefix) for entry in self._prefixes)
        if matched == self._permit:
            return FilterResult.proceed(route)
        return FilterResult.reject()


class CommunityTagFilter:
    """Attach a community on import (the classic ingress-tagging trick)."""

    def __init__(self, community_value: int):
        self._community = community_value

    def __call__(self, route: RouteView, neighbor: Neighbor) -> FilterResult:
        attributes = route.attribute_list()
        existing = route.attribute(AttrTypeCode.COMMUNITIES)
        communities = set(existing.as_communities()) if existing is not None else set()
        communities.add(self._community)
        attributes = [
            a for a in attributes if a.type_code != AttrTypeCode.COMMUNITIES
        ]
        attributes.append(make_communities(communities))
        return FilterResult.proceed(route.with_attributes(attributes))


class CommunityMatchFilter:
    """Reject routes carrying a community (egress side of tagging)."""

    def __init__(self, community_value: int):
        self._community = community_value

    def __call__(self, route: RouteView, neighbor: Neighbor) -> FilterResult:
        attribute = route.attribute(AttrTypeCode.COMMUNITIES)
        if attribute is not None and self._community in attribute.as_communities():
            return FilterResult.reject()
        return FilterResult.proceed(route)


class AsPathLoopFilter:
    """RFC 4271 §9.1.2: drop routes whose AS_PATH contains our AS."""

    def __init__(self, local_asn: int):
        self._local_asn = local_asn

    def __call__(self, route: RouteView, neighbor: Neighbor) -> FilterResult:
        attribute = route.attribute(AttrTypeCode.AS_PATH)
        if attribute is not None and attribute.as_path().contains(self._local_asn):
            return FilterResult.reject()
        return FilterResult.proceed(route)


class NoExportFilter:
    """RFC 1997: honour NO_EXPORT / NO_ADVERTISE on export."""

    def __call__(self, route: RouteView, neighbor: Neighbor) -> FilterResult:
        attribute = route.attribute(AttrTypeCode.COMMUNITIES)
        if attribute is None:
            return FilterResult.proceed(route)
        communities = attribute.as_communities()
        if WellKnownCommunity.NO_ADVERTISE in communities:
            return FilterResult.reject()
        if WellKnownCommunity.NO_EXPORT in communities and neighbor.is_ebgp():
            return FilterResult.reject()
        return FilterResult.proceed(route)
