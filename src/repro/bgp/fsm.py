"""The BGP session finite state machine (RFC 4271 §8).

A deliberately event-driven FSM: callers feed it events (start, stop,
connection up/down, received messages, timer expiries) and it returns
actions (messages to send, session up/down signals).  It owns no I/O,
so it runs identically under the discrete-event simulator and the
asyncio transport.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from .constants import (
    CeaseSubcode,
    FsmSubcode,
    MessageType,
    NotificationCode,
    OpenSubcode,
)
from .messages import (
    BgpMessage,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)

__all__ = ["FsmState", "FsmEvent", "Action", "SessionFsm", "FsmError"]


class FsmState(enum.Enum):
    IDLE = "Idle"
    CONNECT = "Connect"
    ACTIVE = "Active"
    OPEN_SENT = "OpenSent"
    OPEN_CONFIRM = "OpenConfirm"
    ESTABLISHED = "Established"


class FsmEvent(enum.Enum):
    MANUAL_START = 1
    MANUAL_STOP = 2
    CONNECTION_RETRY_EXPIRES = 9
    HOLD_TIMER_EXPIRES = 10
    KEEPALIVE_TIMER_EXPIRES = 11
    TCP_CONNECTED = 17
    TCP_FAILED = 18
    MESSAGE_RECEIVED = 27


class Action(enum.Enum):
    SEND_OPEN = "send_open"
    SEND_KEEPALIVE = "send_keepalive"
    SEND_NOTIFICATION = "send_notification"
    SESSION_ESTABLISHED = "session_established"
    SESSION_DOWN = "session_down"
    DELIVER_UPDATE = "deliver_update"
    START_CONNECT = "start_connect"


class FsmError(Exception):
    """Raised on events that are illegal for the current state."""


class SessionFsm:
    """One peer session's state machine.

    ``process(event, message=None)`` returns a list of
    ``(Action, payload)`` tuples that the surrounding session driver
    executes (send a message, deliver an UPDATE to the daemon, tear the
    session down…).
    """

    def __init__(self, local_asn: int, router_id: int, hold_time: int = 90):
        self.local_asn = local_asn
        self.router_id = router_id
        self.configured_hold_time = hold_time
        self.state = FsmState.IDLE
        self.negotiated_hold_time = hold_time
        self.peer_open: Optional[OpenMessage] = None
        self._observers: List[Callable[[FsmState, FsmState], None]] = []

    def add_observer(self, callback: Callable[[FsmState, FsmState], None]) -> None:
        """Register a state-transition observer (for tests and logging)."""
        self._observers.append(callback)

    def _transition(self, new_state: FsmState) -> None:
        old_state, self.state = self.state, new_state
        for observer in self._observers:
            observer(old_state, new_state)

    # -- event processing ---------------------------------------------

    def process(self, event: FsmEvent, message: Optional[BgpMessage] = None):
        """Feed one event; return the list of resulting actions."""
        handler = getattr(self, f"_in_{self.state.name.lower()}")
        return handler(event, message)

    def _open_message(self) -> OpenMessage:
        return OpenMessage.for_speaker(
            self.local_asn, self.router_id, self.configured_hold_time
        )

    def _drop(self, notification: Optional[NotificationMessage] = None):
        actions = []
        if notification is not None and self.state in (
            FsmState.OPEN_SENT,
            FsmState.OPEN_CONFIRM,
            FsmState.ESTABLISHED,
        ):
            actions.append((Action.SEND_NOTIFICATION, notification))
        if self.state == FsmState.ESTABLISHED:
            actions.append((Action.SESSION_DOWN, None))
        self.peer_open = None
        self._transition(FsmState.IDLE)
        return actions

    # -- per-state handlers -------------------------------------------

    def _in_idle(self, event: FsmEvent, message):
        if event == FsmEvent.MANUAL_START:
            self._transition(FsmState.CONNECT)
            return [(Action.START_CONNECT, None)]
        # Everything else is ignored in Idle (RFC 4271 §8.2.2).
        return []

    def _in_connect(self, event: FsmEvent, message):
        if event == FsmEvent.TCP_CONNECTED:
            self._transition(FsmState.OPEN_SENT)
            return [(Action.SEND_OPEN, self._open_message())]
        if event == FsmEvent.TCP_FAILED:
            self._transition(FsmState.ACTIVE)
            return []
        if event == FsmEvent.CONNECTION_RETRY_EXPIRES:
            return [(Action.START_CONNECT, None)]
        if event == FsmEvent.MANUAL_STOP:
            return self._drop()
        return []

    def _in_active(self, event: FsmEvent, message):
        if event == FsmEvent.TCP_CONNECTED:
            self._transition(FsmState.OPEN_SENT)
            return [(Action.SEND_OPEN, self._open_message())]
        if event == FsmEvent.CONNECTION_RETRY_EXPIRES:
            self._transition(FsmState.CONNECT)
            return [(Action.START_CONNECT, None)]
        if event == FsmEvent.MANUAL_STOP:
            return self._drop()
        return []

    def _in_open_sent(self, event: FsmEvent, message):
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(message, OpenMessage):
            problem = self._validate_open(message)
            if problem is not None:
                return self._drop(problem)
            self.peer_open = message
            self.negotiated_hold_time = min(
                self.configured_hold_time, message.hold_time
            )
            self._transition(FsmState.OPEN_CONFIRM)
            return [(Action.SEND_KEEPALIVE, KeepaliveMessage())]
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(
            message, NotificationMessage
        ):
            return self._drop()
        if event == FsmEvent.HOLD_TIMER_EXPIRES:
            return self._drop(
                NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED)
            )
        if event == FsmEvent.TCP_FAILED:
            self._transition(FsmState.ACTIVE)
            return []
        if event == FsmEvent.MANUAL_STOP:
            return self._drop(
                NotificationMessage(
                    NotificationCode.CEASE, CeaseSubcode.ADMIN_SHUTDOWN
                )
            )
        if event == FsmEvent.MESSAGE_RECEIVED:
            return self._drop(
                NotificationMessage(
                    NotificationCode.FSM_ERROR, FsmSubcode.UNEXPECTED_IN_OPENSENT
                )
            )
        return []

    def _in_open_confirm(self, event: FsmEvent, message):
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(message, KeepaliveMessage):
            self._transition(FsmState.ESTABLISHED)
            return [(Action.SESSION_ESTABLISHED, self.peer_open)]
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(
            message, NotificationMessage
        ):
            return self._drop()
        if event == FsmEvent.HOLD_TIMER_EXPIRES:
            return self._drop(
                NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED)
            )
        if event == FsmEvent.KEEPALIVE_TIMER_EXPIRES:
            return [(Action.SEND_KEEPALIVE, KeepaliveMessage())]
        if event == FsmEvent.MANUAL_STOP:
            return self._drop(
                NotificationMessage(
                    NotificationCode.CEASE, CeaseSubcode.ADMIN_SHUTDOWN
                )
            )
        if event == FsmEvent.MESSAGE_RECEIVED:
            return self._drop(
                NotificationMessage(
                    NotificationCode.FSM_ERROR, FsmSubcode.UNEXPECTED_IN_OPENCONFIRM
                )
            )
        return []

    def _in_established(self, event: FsmEvent, message):
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(message, UpdateMessage):
            return [(Action.DELIVER_UPDATE, message)]
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(message, KeepaliveMessage):
            return []
        if event == FsmEvent.MESSAGE_RECEIVED and isinstance(
            message, NotificationMessage
        ):
            return self._drop()
        if event == FsmEvent.KEEPALIVE_TIMER_EXPIRES:
            return [(Action.SEND_KEEPALIVE, KeepaliveMessage())]
        if event == FsmEvent.HOLD_TIMER_EXPIRES:
            return self._drop(
                NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED)
            )
        if event in (FsmEvent.MANUAL_STOP, FsmEvent.TCP_FAILED):
            notification = None
            if event == FsmEvent.MANUAL_STOP:
                notification = NotificationMessage(
                    NotificationCode.CEASE, CeaseSubcode.ADMIN_SHUTDOWN
                )
            return self._drop(notification)
        if event == FsmEvent.MESSAGE_RECEIVED:
            return self._drop(
                NotificationMessage(
                    NotificationCode.FSM_ERROR, FsmSubcode.UNEXPECTED_IN_ESTABLISHED
                )
            )
        return []

    # -- validation ----------------------------------------------------

    def _validate_open(self, message: OpenMessage) -> Optional[NotificationMessage]:
        if message.hold_time not in (0,) and message.hold_time < 3:
            return NotificationMessage(
                NotificationCode.OPEN_MESSAGE_ERROR,
                OpenSubcode.UNACCEPTABLE_HOLD_TIME,
            )
        if message.router_id in (0, 0xFFFFFFFF):
            return NotificationMessage(
                NotificationCode.OPEN_MESSAGE_ERROR, OpenSubcode.BAD_BGP_IDENTIFIER
            )
        return None
