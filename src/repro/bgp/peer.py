"""Neighbor (peer) configuration and state shared by both daemons."""

from __future__ import annotations

from typing import Any, Dict, Optional

from .constants import SessionType
from .prefix import format_ipv4, parse_ipv4

__all__ = ["Neighbor"]


class Neighbor:
    """One configured BGP neighbor.

    Carries everything the xBGP ``peer_info`` helper exposes: addresses,
    AS numbers, router ids and the session type, plus host-side policy
    knobs (route-reflector client flag, cluster id) and free-form
    configuration (``xtra``) reachable through the ``get_xtra`` helper.
    """

    __slots__ = (
        "peer_address",
        "peer_asn",
        "local_address",
        "local_asn",
        "peer_router_id",
        "local_router_id",
        "rr_client",
        "cluster_id",
        "xtra",
        "established",
        "_packed_info",
    )

    def __init__(
        self,
        peer_address: int,
        peer_asn: int,
        local_address: int,
        local_asn: int,
        peer_router_id: int = 0,
        local_router_id: int = 0,
        rr_client: bool = False,
        cluster_id: int = 0,
        xtra: Optional[Dict[str, Any]] = None,
    ):
        self.peer_address = peer_address
        self.peer_asn = peer_asn
        self.local_address = local_address
        self.local_asn = local_asn
        self.peer_router_id = peer_router_id or peer_address
        self.local_router_id = local_router_id or local_address
        self.rr_client = rr_client
        self.cluster_id = cluster_id or self.local_router_id
        self.xtra: Dict[str, Any] = dict(xtra or {})
        self.established = False

    def __setattr__(self, name: str, value: Any) -> None:
        # Any field change (addresses, ASNs, session state…) invalidates
        # the cached ``pack_peer_info`` bytes held in ``_packed_info``
        # (see repro.core.abi); the struct is rebuilt on next use.
        object.__setattr__(self, name, value)
        if name != "_packed_info":
            object.__setattr__(self, "_packed_info", None)

    @classmethod
    def build(
        cls,
        peer_address: str,
        peer_asn: int,
        local_address: str,
        local_asn: int,
        **kwargs: Any,
    ) -> "Neighbor":
        """Convenience constructor taking dotted-quad addresses."""
        return cls(
            parse_ipv4(peer_address), peer_asn, parse_ipv4(local_address), local_asn,
            **kwargs,
        )

    @property
    def session_type(self) -> SessionType:
        """iBGP when the AS numbers match, eBGP otherwise."""
        if self.peer_asn == self.local_asn:
            return SessionType.IBGP_SESSION
        return SessionType.EBGP_SESSION

    def is_ibgp(self) -> bool:
        return self.session_type == SessionType.IBGP_SESSION

    def is_ebgp(self) -> bool:
        return self.session_type == SessionType.EBGP_SESSION

    def __repr__(self) -> str:
        return (
            f"Neighbor({format_ipv4(self.peer_address)} AS{self.peer_asn} "
            f"{self.session_type.name})"
        )
