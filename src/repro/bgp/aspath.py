"""AS_PATH representation and wire codec.

The neutral xBGP representation always uses 4-octet AS numbers
(RFC 6793); the 2-octet legacy encoding is supported for interop with
old speakers.  Paths are sequences of segments; the common case is one
``AS_SEQUENCE``.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

from .constants import AsPathSegmentType

__all__ = ["AsPathSegment", "AsPath", "AsPathDecodeError"]


class AsPathDecodeError(ValueError):
    """Raised for malformed AS_PATH wire bytes."""


class AsPathSegment:
    """One AS_PATH segment: a type plus an ordered tuple of AS numbers."""

    __slots__ = ("kind", "asns")

    def __init__(self, kind: AsPathSegmentType, asns: Iterable[int]):
        self.kind = AsPathSegmentType(kind)
        self.asns: Tuple[int, ...] = tuple(int(a) for a in asns)
        for asn in self.asns:
            if not 0 <= asn <= 0xFFFFFFFF:
                raise ValueError(f"AS number out of range: {asn}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AsPathSegment):
            return NotImplemented
        return self.kind == other.kind and self.asns == other.asns

    def __hash__(self) -> int:
        return hash((self.kind, self.asns))

    def __repr__(self) -> str:
        return f"AsPathSegment({self.kind.name}, {list(self.asns)})"

    def path_length(self) -> int:
        """RFC 4271 §9.1.2.2: an AS_SET counts as one hop."""
        if self.kind in (AsPathSegmentType.AS_SET, AsPathSegmentType.AS_CONFED_SET):
            return 1
        return len(self.asns)


class AsPath:
    """An ordered list of :class:`AsPathSegment`.

    Immutable by convention; mutating operations return new paths.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: Iterable[AsPathSegment] = ()):
        self.segments: Tuple[AsPathSegment, ...] = tuple(segments)

    @classmethod
    def from_sequence(cls, asns: Sequence[int]) -> "AsPath":
        """Build a path holding a single AS_SEQUENCE (the common case)."""
        if not asns:
            return cls()
        return cls([AsPathSegment(AsPathSegmentType.AS_SEQUENCE, asns)])

    # -- semantics ---------------------------------------------------

    def length(self) -> int:
        """Decision-process path length (AS_SET counts once)."""
        return sum(segment.path_length() for segment in self.segments)

    def asn_iter(self) -> Iterator[int]:
        """Iterate every AS number in order of appearance."""
        for segment in self.segments:
            yield from segment.asns

    def contains(self, asn: int) -> bool:
        """Loop detection: does ``asn`` appear anywhere in the path?"""
        return any(a == asn for a in self.asn_iter())

    def first_asn(self) -> int:
        """Neighbouring (leftmost) AS, or 0 for an empty path."""
        for asn in self.asn_iter():
            return asn
        return 0

    def origin_asn(self) -> int:
        """Originating (rightmost) AS, or 0 for an empty path.

        Per RFC 6811, when the path ends with an AS_SET the origin is
        considered ambiguous; we return 0 so validation yields INVALID
        unless a covering ROA matches AS 0 (it never does).
        """
        if not self.segments:
            return 0
        last = self.segments[-1]
        if last.kind != AsPathSegmentType.AS_SEQUENCE or not last.asns:
            return 0
        return last.asns[-1]

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        if count < 1:
            raise ValueError("count must be >= 1")
        head = (asn,) * count
        if self.segments and self.segments[0].kind == AsPathSegmentType.AS_SEQUENCE:
            first = AsPathSegment(
                AsPathSegmentType.AS_SEQUENCE, head + self.segments[0].asns
            )
            return AsPath((first,) + self.segments[1:])
        return AsPath(
            (AsPathSegment(AsPathSegmentType.AS_SEQUENCE, head),) + self.segments
        )

    def consecutive_pairs(self) -> Iterator[Tuple[int, int]]:
        """Yield each consecutive (left, right) AS pair of the flat path.

        This is the walk the valley-free data-center filter (§3.3) does:
        a route is rejected when any pair matches the level manifest.
        """
        previous = None
        for asn in self.asn_iter():
            if previous is not None:
                yield previous, asn
            previous = asn

    # -- wire codec --------------------------------------------------

    def encode(self, four_octet: bool = True) -> bytes:
        """Encode the attribute value field."""
        fmt = "!I" if four_octet else "!H"
        out = bytearray()
        for segment in self.segments:
            if len(segment.asns) > 255:
                raise ValueError("segment longer than 255 ASes")
            out.append(segment.kind)
            out.append(len(segment.asns))
            for asn in segment.asns:
                if not four_octet and asn > 0xFFFF:
                    raise ValueError(f"AS {asn} needs 4-octet encoding")
                out += struct.pack(fmt, asn)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, four_octet: bool = True) -> "AsPath":
        """Decode an attribute value field."""
        size = 4 if four_octet else 2
        fmt = "!I" if four_octet else "!H"
        segments: List[AsPathSegment] = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise AsPathDecodeError("truncated segment header")
            try:
                kind = AsPathSegmentType(data[offset])
            except ValueError as exc:
                raise AsPathDecodeError(f"bad segment type {data[offset]}") from exc
            count = data[offset + 1]
            offset += 2
            end = offset + count * size
            if end > len(data):
                raise AsPathDecodeError("truncated segment body")
            asns = [
                struct.unpack_from(fmt, data, offset + i * size)[0]
                for i in range(count)
            ]
            segments.append(AsPathSegment(kind, asns))
            offset = end
        return cls(segments)

    # -- dunder ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AsPath):
            return NotImplemented
        return self.segments == other.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    def __len__(self) -> int:
        return self.length()

    def __repr__(self) -> str:
        return f"AsPath({list(self.asn_iter())})"

    def __str__(self) -> str:
        parts = []
        for segment in self.segments:
            rendered = " ".join(str(a) for a in segment.asns)
            if segment.kind == AsPathSegmentType.AS_SET:
                parts.append("{" + rendered + "}")
            else:
                parts.append(rendered)
        return " ".join(parts)
