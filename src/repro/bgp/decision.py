"""The BGP decision process (RFC 4271 §9.1.2.2 route ranking).

Both vendor daemons call :func:`best_route` on the Adj-RIB-In
candidates for a prefix.  The comparison is the classic ladder:

1. highest LOCAL_PREF;
2. shortest AS_PATH (AS_SET counts as one hop);
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED, compared only between routes from the same neighbouring
   AS (unless ``always_compare_med``);
5. eBGP-learned preferred over iBGP-learned;
6. lowest IGP metric to the BGP next hop;
7. lowest ORIGINATOR_ID (or peer router id) — RFC 4456 §9;
8. shortest CLUSTER_LIST — RFC 4456 §9;
9. lowest peer address.

The ranking is exposed both as a single-winner selection and as a
``sort key`` so tests can assert full deterministic orderings.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from .rib import RouteView

__all__ = [
    "DecisionConfig",
    "best_route",
    "best_route_explained",
    "rank_routes",
    "compare_routes",
    "compare_routes_explain",
]

R = TypeVar("R", bound=RouteView)

#: Returns the IGP metric towards an address (next hop); ``None`` or a
#: large value means unreachable.
IgpMetricFn = Callable[[int], int]

_UNREACHABLE = 2**32


class DecisionConfig:
    """Knobs altering the ranking, mirroring real daemon options."""

    __slots__ = ("always_compare_med", "igp_metric", "prefer_oldest")

    def __init__(
        self,
        always_compare_med: bool = False,
        igp_metric: Optional[IgpMetricFn] = None,
    ):
        self.always_compare_med = always_compare_med
        self.igp_metric = igp_metric

    def metric_to(self, address: int) -> int:
        if self.igp_metric is None:
            return 0
        try:
            metric = self.igp_metric(address)
        except KeyError:
            return _UNREACHABLE
        return _UNREACHABLE if metric is None else metric


def compare_routes(a: RouteView, b: RouteView, config: DecisionConfig) -> int:
    """Three-way comparison: negative when ``a`` is preferred over ``b``."""
    if a.local_pref() != b.local_pref():
        return b.local_pref() - a.local_pref()
    if a.as_path_length() != b.as_path_length():
        return a.as_path_length() - b.as_path_length()
    if a.origin() != b.origin():
        return a.origin() - b.origin()
    same_neighbor = a.neighbor_asn() == b.neighbor_asn()
    if (config.always_compare_med or same_neighbor) and a.med() != b.med():
        return a.med() - b.med()
    if a.from_ebgp() != b.from_ebgp():
        return -1 if a.from_ebgp() else 1
    metric_a = config.metric_to(a.next_hop())
    metric_b = config.metric_to(b.next_hop())
    if metric_a != metric_b:
        return -1 if metric_a < metric_b else 1
    if a.originator_or_router_id() != b.originator_or_router_id():
        return -1 if a.originator_or_router_id() < b.originator_or_router_id() else 1
    if a.cluster_list_length() != b.cluster_list_length():
        return a.cluster_list_length() - b.cluster_list_length()
    if a.peer_address() != b.peer_address():
        return -1 if a.peer_address() < b.peer_address() else 1
    return 0


def compare_routes_explain(
    a: RouteView, b: RouteView, config: DecisionConfig
) -> "tuple[int, str]":
    """:func:`compare_routes` plus the name of the deciding ladder step.

    Kept separate from the plain comparator so the decision hot path
    pays nothing for explainability; provenance-enabled daemons call
    this variant instead.  Returns ``(cmp, step)`` where ``step`` is one
    of ``local_pref``, ``as_path_length``, ``origin``, ``med``,
    ``ebgp_over_ibgp``, ``igp_metric``, ``originator_id``,
    ``cluster_list``, ``peer_address`` or ``tie``.
    """
    if a.local_pref() != b.local_pref():
        return b.local_pref() - a.local_pref(), "local_pref"
    if a.as_path_length() != b.as_path_length():
        return a.as_path_length() - b.as_path_length(), "as_path_length"
    if a.origin() != b.origin():
        return a.origin() - b.origin(), "origin"
    same_neighbor = a.neighbor_asn() == b.neighbor_asn()
    if (config.always_compare_med or same_neighbor) and a.med() != b.med():
        return a.med() - b.med(), "med"
    if a.from_ebgp() != b.from_ebgp():
        return (-1 if a.from_ebgp() else 1), "ebgp_over_ibgp"
    metric_a = config.metric_to(a.next_hop())
    metric_b = config.metric_to(b.next_hop())
    if metric_a != metric_b:
        return (-1 if metric_a < metric_b else 1), "igp_metric"
    if a.originator_or_router_id() != b.originator_or_router_id():
        return (
            -1 if a.originator_or_router_id() < b.originator_or_router_id() else 1
        ), "originator_id"
    if a.cluster_list_length() != b.cluster_list_length():
        return a.cluster_list_length() - b.cluster_list_length(), "cluster_list"
    if a.peer_address() != b.peer_address():
        return (-1 if a.peer_address() < b.peer_address() else 1), "peer_address"
    return 0, "tie"


def best_route(candidates: Sequence[R], config: Optional[DecisionConfig] = None) -> Optional[R]:
    """Select the single best route among ``candidates``.

    A linear pass with the three-way comparator: order independent for
    a fixed candidate set because the comparator is a total preorder
    with the final peer-address tie break making it antisymmetric.
    """
    if not candidates:
        return None
    config = config or DecisionConfig()
    best = candidates[0]
    for route in candidates[1:]:
        if compare_routes(route, best, config) < 0:
            best = route
    return best


def best_route_explained(
    candidates: Sequence[R],
    config: Optional[DecisionConfig] = None,
    on_step: Optional[Callable[..., None]] = None,
) -> Optional[R]:
    """:func:`best_route` that narrates each pairwise elimination.

    ``on_step(step, eliminated=..., kept=...)`` fires once per losing
    candidate with the ladder step that decided the pair.
    """
    if not candidates:
        return None
    config = config or DecisionConfig()
    best = candidates[0]
    for route in candidates[1:]:
        verdict, step = compare_routes_explain(route, best, config)
        if verdict < 0:
            if on_step is not None:
                on_step(step, eliminated=best, kept=route)
            best = route
        elif on_step is not None:
            on_step(step, eliminated=route, kept=best)
    return best


def rank_routes(candidates: Iterable[R], config: Optional[DecisionConfig] = None) -> List[R]:
    """Return ``candidates`` fully ordered, best first."""
    import functools

    config = config or DecisionConfig()
    return sorted(
        candidates, key=functools.cmp_to_key(lambda a, b: compare_routes(a, b, config))
    )
