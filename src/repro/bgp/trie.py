"""Binary prefix trie (radix-1) for longest-prefix and covering lookups.

PyFRR stores validated ROAs in this trie and *browses* it on every
origin-validation check, mirroring FRRouting's per-check walk over its
ROA table — the behaviour §3.4 of the paper found to be slower than a
hash lookup.  The trie is also the substrate for FIB longest-match.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .prefix import Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps :class:`Prefix` keys to values with prefix-aware queries.

    Supports exact lookup, longest-prefix match on addresses, iteration
    over all covering (less specific) and covered (more specific)
    entries, insertion and deletion.
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_value

    # -- mutation ----------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> V:
        """Remove and return the value at ``prefix``.

        Raises :class:`KeyError` when absent.  Interior nodes left empty
        are pruned so the trie does not grow monotonically.
        """
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for i in range(prefix.length):
            bit = prefix.bit(i)
            child = node.children[bit]
            if child is None:
                raise KeyError(str(prefix))
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(str(prefix))
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune childless, valueless tail nodes.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return value  # type: ignore[return-value]

    # -- queries -----------------------------------------------------

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Exact-match lookup."""
        node = self._find(prefix)
        if node is not None and node.has_value:
            return node.value
        return default

    def longest_match(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Most specific stored entry covering ``prefix`` (incl. itself)."""
        best: Optional[Tuple[int, V]] = None
        node = self._root
        if node.has_value:
            best = (0, node.value)  # type: ignore[assignment]
        for i in range(prefix.length):
            child = node.children[prefix.bit(i)]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (i + 1, node.value)  # type: ignore[assignment]
        if best is None:
            return None
        length, value = best
        return Prefix(prefix.network, length), value

    def lookup_address(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a host ``address``."""
        return self.longest_match(Prefix(address, 32))

    def covering(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield every stored entry that covers ``prefix``, shortest first.

        This is the "browse" walk PyFRR's native origin validator uses:
        it visits each node on the path rather than doing one hash probe.
        """
        node = self._root
        if node.has_value:
            yield Prefix(0, 0), node.value  # type: ignore[misc]
        for i in range(prefix.length):
            child = node.children[prefix.bit(i)]
            if child is None:
                return
            node = child
            if node.has_value:
                yield Prefix(prefix.network, i + 1), node.value  # type: ignore[misc]

    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Yield every stored entry equal to or more specific than ``prefix``."""
        node = self._find(prefix)
        if node is None:
            return
        stack: List[Tuple[_Node[V], int, int]] = [(node, prefix.network, prefix.length)]
        while stack:
            current, network, length = stack.pop()
            if current.has_value:
                yield Prefix(network, length), current.value  # type: ignore[misc]
            for bit in (1, 0):
                child = current.children[bit]
                if child is not None:
                    child_net = network | (bit << (31 - length)) if length < 32 else network
                    stack.append((child, child_net, length + 1))

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all (prefix, value) pairs in depth-first order."""
        yield from self.covered(Prefix(0, 0))

    # -- internals ---------------------------------------------------

    def _find(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        for i in range(prefix.length):
            child = node.children[prefix.bit(i)]
            if child is None:
                return None
            node = child
        return node
