"""RFC 4271 message codecs: OPEN, UPDATE, NOTIFICATION, KEEPALIVE.

Every message renders to and parses from the real wire format, header
included, so the same code backs both the in-process simulator and the
asyncio TCP transport (``repro.net``).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .attributes import PathAttribute, decode_attributes, encode_attributes
from .constants import (
    BGP_HEADER_SIZE,
    BGP_MARKER,
    BGP_MAX_MESSAGE_SIZE,
    BGP_VERSION,
    MessageType,
    NotificationCode,
)
from .prefix import Prefix, format_ipv4

__all__ = [
    "MessageDecodeError",
    "Capability",
    "CAP_MULTIPROTOCOL",
    "CAP_ROUTE_REFRESH",
    "CAP_FOUR_OCTET_AS",
    "OpenMessage",
    "UpdateMessage",
    "NotificationMessage",
    "KeepaliveMessage",
    "RouteRefreshMessage",
    "BgpMessage",
    "decode_message",
    "encode_header",
    "split_stream",
]

CAP_MULTIPROTOCOL = 1
CAP_ROUTE_REFRESH = 2
CAP_FOUR_OCTET_AS = 65


class MessageDecodeError(ValueError):
    """Raised for malformed BGP messages."""

    def __init__(self, message: str, subcode: int = 0):
        super().__init__(message)
        self.subcode = subcode


class Capability:
    """One RFC 5492 capability TLV."""

    __slots__ = ("code", "value")

    def __init__(self, code: int, value: bytes = b""):
        self.code = code
        self.value = bytes(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capability):
            return NotImplemented
        return self.code == other.code and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.code, self.value))

    def __repr__(self) -> str:
        return f"Capability(code={self.code}, value={self.value.hex()})"


def encode_header(message_type: MessageType, body: bytes) -> bytes:
    """Prepend the 19-byte marker/length/type header to ``body``."""
    total = BGP_HEADER_SIZE + len(body)
    if total > BGP_MAX_MESSAGE_SIZE:
        raise ValueError(f"message too large: {total} bytes")
    return BGP_MARKER + struct.pack("!HB", total, message_type) + body


class OpenMessage:
    """OPEN (RFC 4271 §4.2) with RFC 5492 capabilities."""

    type = MessageType.OPEN
    __slots__ = ("asn", "hold_time", "router_id", "capabilities")

    def __init__(
        self,
        asn: int,
        hold_time: int,
        router_id: int,
        capabilities: Sequence[Capability] = (),
    ):
        self.asn = asn
        self.hold_time = hold_time
        self.router_id = router_id
        self.capabilities: Tuple[Capability, ...] = tuple(capabilities)

    @classmethod
    def for_speaker(cls, asn: int, router_id: int, hold_time: int = 90) -> "OpenMessage":
        """Build an OPEN advertising 4-octet-AS and route-refresh."""
        caps = [
            Capability(CAP_ROUTE_REFRESH),
            Capability(CAP_FOUR_OCTET_AS, struct.pack("!I", asn)),
        ]
        my_as = asn if asn <= 0xFFFF else 23456
        return cls(my_as, hold_time, router_id, caps)

    def four_octet_asn(self) -> Optional[int]:
        """The AS from the 4-octet-AS capability, if advertised."""
        for cap in self.capabilities:
            if cap.code == CAP_FOUR_OCTET_AS and len(cap.value) == 4:
                return struct.unpack("!I", cap.value)[0]
        return None

    def effective_asn(self) -> int:
        """Peer AS after RFC 6793 resolution."""
        four = self.four_octet_asn()
        return four if four is not None else self.asn

    def encode(self) -> bytes:
        caps = b""
        for cap in self.capabilities:
            caps += bytes([cap.code, len(cap.value)]) + cap.value
        params = b""
        if caps:
            # A single type-2 (capabilities) optional parameter.
            params = bytes([2, len(caps)]) + caps
        body = struct.pack(
            "!BHHIB",
            BGP_VERSION,
            self.asn,
            self.hold_time,
            self.router_id,
            len(params),
        )
        return encode_header(self.type, body + params)

    @classmethod
    def decode_body(cls, body: bytes) -> "OpenMessage":
        if len(body) < 10:
            raise MessageDecodeError("OPEN body too short")
        version, asn, hold_time, router_id, opt_len = struct.unpack_from("!BHHIB", body)
        if version != BGP_VERSION:
            raise MessageDecodeError(f"unsupported BGP version {version}", subcode=1)
        params = body[10 : 10 + opt_len]
        if len(params) != opt_len:
            raise MessageDecodeError("OPEN optional parameters truncated")
        capabilities: List[Capability] = []
        offset = 0
        while offset < len(params):
            if offset + 2 > len(params):
                raise MessageDecodeError("truncated optional parameter")
            param_type, param_len = params[offset], params[offset + 1]
            offset += 2
            value = params[offset : offset + param_len]
            if len(value) != param_len:
                raise MessageDecodeError("truncated optional parameter body")
            offset += param_len
            if param_type == 2:  # capabilities
                inner = 0
                while inner < len(value):
                    if inner + 2 > len(value):
                        raise MessageDecodeError("truncated capability")
                    code, clen = value[inner], value[inner + 1]
                    inner += 2
                    cval = value[inner : inner + clen]
                    if len(cval) != clen:
                        raise MessageDecodeError("truncated capability value")
                    inner += clen
                    capabilities.append(Capability(code, cval))
        return cls(asn, hold_time, router_id, capabilities)

    def __repr__(self) -> str:
        return (
            f"OpenMessage(asn={self.effective_asn()}, hold={self.hold_time}, "
            f"id={format_ipv4(self.router_id)})"
        )


class UpdateMessage:
    """UPDATE (RFC 4271 §4.3): withdrawals, attributes, NLRI."""

    type = MessageType.UPDATE
    __slots__ = ("withdrawn", "nlri", "_attributes", "_attrs_wire")

    def __init__(
        self,
        withdrawn: Sequence[Prefix] = (),
        attributes: Sequence[PathAttribute] = (),
        nlri: Sequence[Prefix] = (),
    ):
        self.withdrawn: Tuple[Prefix, ...] = tuple(withdrawn)
        self._attributes: Optional[Tuple[PathAttribute, ...]] = tuple(attributes)
        self._attrs_wire: Optional[bytes] = None
        self.nlri: Tuple[Prefix, ...] = tuple(nlri)

    @property
    def attributes(self) -> Tuple[PathAttribute, ...]:
        """Path attributes, decoded on first access.

        Decoded messages carry the raw attribute bytes and parse them
        lazily: a receiver that only looks at NLRI/withdrawn prefixes
        (a monitoring collector, an end-of-RIB check) never pays the
        per-attribute parse.  Attribute *content* errors therefore
        surface at first access rather than inside ``decode_message``;
        structural (length) errors are still raised eagerly there.
        """
        attributes = self._attributes
        if attributes is None:
            attributes = tuple(decode_attributes(self._attrs_wire))
            self._attributes = attributes
        return attributes

    def attribute(self, type_code: int) -> Optional[PathAttribute]:
        """Return the attribute with ``type_code`` or None."""
        for attribute in self.attributes:
            if attribute.type_code == type_code:
                return attribute
        return None

    def is_end_of_rib(self) -> bool:
        """RFC 4724: an empty UPDATE marks end of initial table transfer."""
        if self.withdrawn or self.nlri:
            return False
        if self._attributes is None:
            return not self._attrs_wire
        return not self._attributes

    @classmethod
    def end_of_rib(cls) -> "UpdateMessage":
        return cls()

    def encode(self) -> bytes:
        withdrawn = b"".join(prefix.encode() for prefix in self.withdrawn)
        # A decoded message re-emits its original attribute bytes
        # verbatim (the message is immutable, so they stay the truth).
        attrs = (
            self._attrs_wire
            if self._attrs_wire is not None
            else encode_attributes(self.attributes)
        )
        nlri = b"".join(prefix.encode() for prefix in self.nlri)
        body = (
            struct.pack("!H", len(withdrawn))
            + withdrawn
            + struct.pack("!H", len(attrs))
            + attrs
            + nlri
        )
        return encode_header(self.type, body)

    @classmethod
    def decode_body(cls, body: bytes) -> "UpdateMessage":
        if len(body) < 4:
            raise MessageDecodeError("UPDATE body too short", subcode=1)
        (withdrawn_len,) = struct.unpack_from("!H", body)
        offset = 2
        withdrawn_end = offset + withdrawn_len
        if withdrawn_end + 2 > len(body):
            raise MessageDecodeError("UPDATE withdrawn field truncated", subcode=1)
        withdrawn = list(Prefix.decode_all(body[offset:withdrawn_end]))
        (attrs_len,) = struct.unpack_from("!H", body, withdrawn_end)
        attrs_start = withdrawn_end + 2
        attrs_end = attrs_start + attrs_len
        if attrs_end > len(body):
            raise MessageDecodeError("UPDATE attribute field truncated", subcode=1)
        nlri = list(Prefix.decode_all(body[attrs_end:]))
        message = cls(withdrawn, (), nlri)
        if attrs_len:
            message._attributes = None
            message._attrs_wire = body[attrs_start:attrs_end]
        return message

    def __repr__(self) -> str:
        return (
            f"UpdateMessage(withdrawn={len(self.withdrawn)}, "
            f"attrs={len(self.attributes)}, nlri={len(self.nlri)})"
        )


class NotificationMessage:
    """NOTIFICATION (RFC 4271 §4.5)."""

    type = MessageType.NOTIFICATION
    __slots__ = ("code", "subcode", "data")

    def __init__(self, code: int, subcode: int = 0, data: bytes = b""):
        self.code = code
        self.subcode = subcode
        self.data = bytes(data)

    def encode(self) -> bytes:
        return encode_header(self.type, bytes([self.code, self.subcode]) + self.data)

    @classmethod
    def decode_body(cls, body: bytes) -> "NotificationMessage":
        if len(body) < 2:
            raise MessageDecodeError("NOTIFICATION body too short")
        return cls(body[0], body[1], body[2:])

    def __repr__(self) -> str:
        try:
            name = NotificationCode(self.code).name
        except ValueError:
            name = str(self.code)
        return f"NotificationMessage({name}/{self.subcode})"


class KeepaliveMessage:
    """KEEPALIVE (RFC 4271 §4.4) — header only."""

    type = MessageType.KEEPALIVE
    __slots__ = ()

    def encode(self) -> bytes:
        return encode_header(self.type, b"")

    @classmethod
    def decode_body(cls, body: bytes) -> "KeepaliveMessage":
        if body:
            raise MessageDecodeError("KEEPALIVE must have no body", subcode=2)
        return cls()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeepaliveMessage)

    def __hash__(self) -> int:
        return hash(MessageType.KEEPALIVE)

    def __repr__(self) -> str:
        return "KeepaliveMessage()"


class RouteRefreshMessage:
    """ROUTE-REFRESH (RFC 2918): ask a peer to resend its Adj-RIB-Out."""

    type = MessageType.ROUTE_REFRESH
    __slots__ = ("afi", "safi")

    def __init__(self, afi: int = 1, safi: int = 1):
        self.afi = afi
        self.safi = safi

    def encode(self) -> bytes:
        return encode_header(self.type, struct.pack("!HBB", self.afi, 0, self.safi))

    @classmethod
    def decode_body(cls, body: bytes) -> "RouteRefreshMessage":
        if len(body) != 4:
            raise MessageDecodeError("ROUTE-REFRESH must be 4 bytes")
        afi, _, safi = struct.unpack("!HBB", body)
        return cls(afi, safi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteRefreshMessage):
            return NotImplemented
        return self.afi == other.afi and self.safi == other.safi

    def __repr__(self) -> str:
        return f"RouteRefreshMessage(afi={self.afi}, safi={self.safi})"


BgpMessage = Union[
    OpenMessage,
    UpdateMessage,
    NotificationMessage,
    KeepaliveMessage,
    RouteRefreshMessage,
]

_DECODERS: Dict[int, type] = {
    MessageType.OPEN: OpenMessage,
    MessageType.UPDATE: UpdateMessage,
    MessageType.NOTIFICATION: NotificationMessage,
    MessageType.KEEPALIVE: KeepaliveMessage,
    MessageType.ROUTE_REFRESH: RouteRefreshMessage,
}


def decode_message(data: bytes) -> Tuple[BgpMessage, int]:
    """Decode one message from ``data``; return (message, bytes consumed)."""
    if len(data) < BGP_HEADER_SIZE:
        raise MessageDecodeError("short header")
    if data[:16] != BGP_MARKER:
        raise MessageDecodeError("bad marker", subcode=1)
    total, message_type = struct.unpack_from("!HB", data, 16)
    if not BGP_HEADER_SIZE <= total <= BGP_MAX_MESSAGE_SIZE:
        raise MessageDecodeError(f"bad message length {total}", subcode=2)
    if len(data) < total:
        raise MessageDecodeError("truncated message")
    decoder = _DECODERS.get(message_type)
    if decoder is None:
        raise MessageDecodeError(f"bad message type {message_type}", subcode=3)
    body = data[BGP_HEADER_SIZE:total]
    return decoder.decode_body(body), total


def split_stream(buffer: bytearray) -> List[BgpMessage]:
    """Drain complete messages from a TCP reassembly ``buffer`` in place.

    Returns decoded messages; leaves any trailing partial message in the
    buffer.  Used by the asyncio transport.

    A malformed frame raises only once it sits at the *head* of the
    buffer: valid messages decoded earlier in the same batch are
    returned first and the bad bytes stay put, so the next call raises.
    Raising mid-batch instead would silently drop the already-consumed
    messages, making delivery depend on how TCP happened to segment
    the stream (found by the differential fuzzer's reassembly oracle).
    """
    messages: List[BgpMessage] = []
    while len(buffer) >= BGP_HEADER_SIZE:
        total, _ = struct.unpack_from("!HB", buffer, 16)
        if len(buffer) < total:
            break
        try:
            message, consumed = decode_message(bytes(buffer[:total]))
        except ValueError:
            if messages:
                return messages
            raise
        del buffer[:consumed]
        messages.append(message)
    return messages
