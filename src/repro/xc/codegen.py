"""eBPF code generation for xc.

The generated code is simple and regular rather than optimal: every
local variable and every expression temporary lives in a stack slot, so
values never sit in a caller-saved register across a helper call.  User
functions other than the entry point are inlined at their call sites
(our VM, like classic ubpf, dispatches ``call`` only to helpers).

Builtins compiled inline rather than called:

* ``htons``/``htonl``/``htonll`` and the ``ntoh*`` twins — byte swaps
  (the paper's plugins use ``bpf_htonl`` etc. to build wire bytes);
* ``sgt``/``sge``/``slt``/``sle`` — signed comparisons (xc's operators
  are unsigned like eBPF's default jumps).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..ebpf.isa import (
    ALU_OPS,
    BPF_ALU,
    BPF_ALU64,
    BPF_DW,
    BPF_IMM,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_LDX,
    BPF_MEM,
    BPF_STX,
    BPF_X,
    JMP_OPS,
    Instruction,
)
from ..ebpf.memory import STACK_SIZE
from .astnodes import (
    ArrayDecl,
    Assign,
    For,
    Index,
    IndexAssign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStatement,
    Function,
    If,
    Load,
    Logical,
    Name,
    Number,
    Program,
    Return,
    Statement,
    Store,
    Str,
    Unary,
    VarDecl,
    While,
)
from .parser import parse

__all__ = ["compile_source", "compile_program", "CompileError"]

_SIZE_TO_FLAG = {1: 0x10, 2: 0x08, 4: 0x00, 8: 0x18}

_CMP_TO_JMP = {
    "==": "jeq",
    "!=": "jne",
    "<": "jlt",
    "<=": "jle",
    ">": "jgt",
    ">=": "jge",
}
_SIGNED_CMP = {"sgt": "jsgt", "sge": "jsge", "slt": "jslt", "sle": "jsle"}
_SWAPS = {
    "htons": 16,
    "ntohs": 16,
    "htonl": 32,
    "ntohl": 32,
    "htonll": 64,
    "ntohll": 64,
    "bpf_htons": 16,
    "bpf_ntohs": 16,
    "bpf_htonl": 32,
    "bpf_ntohl": 32,
    "bpf_htonll": 64,
    "bpf_ntohll": 64,
}
_ARITH = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "lsh",
    ">>": "rsh",
}

_MAX_INLINE_DEPTH = 16

_M64 = (1 << 64) - 1

_FOLDERS = {
    "+": lambda a, b: (a + b) & _M64,
    "-": lambda a, b: (a - b) & _M64,
    "*": lambda a, b: (a * b) & _M64,
    "/": lambda a, b: (a // b) & _M64 if b else 0,
    "%": lambda a, b: (a % b) & _M64 if b else a,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: (a << (b % 64)) & _M64,
    ">>": lambda a, b: (a & _M64) >> (b % 64),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


def _fold(expr):
    """Constant-fold a pure expression tree (64-bit unsigned semantics,
    matching the VM).  Division by a constant zero is left unfolded so
    the verifier still rejects it."""
    if isinstance(expr, Binary):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if isinstance(left, Number) and isinstance(right, Number):
            if expr.op in ("/", "%") and (right.value & _M64) == 0:
                return Binary(expr.op, left, right, expr.line)
            folder = _FOLDERS.get(expr.op)
            if folder is not None:
                return Number(folder(left.value & _M64, right.value & _M64), expr.line)
        return Binary(expr.op, left, right, expr.line)
    if isinstance(expr, Unary):
        operand = _fold(expr.operand)
        if isinstance(operand, Number):
            value = operand.value & _M64
            if expr.op == "-":
                return Number((-value) & _M64, expr.line)
            if expr.op == "~":
                return Number(value ^ _M64, expr.line)
            if expr.op == "!":
                return Number(int(value == 0), expr.line)
        return Unary(expr.op, operand, expr.line)
    if isinstance(expr, Logical):
        left = _fold(expr.left)
        if isinstance(left, Number):
            truthy = (left.value & _M64) != 0
            if expr.op == "&&" and not truthy:
                return Number(0, expr.line)
            if expr.op == "||" and truthy:
                return Number(1, expr.line)
            # Constant non-deciding left: result is right's truthiness.
            right = _fold(expr.right)
            if isinstance(right, Number):
                return Number(int((right.value & _M64) != 0), expr.line)
            return Logical(expr.op, left, right, expr.line)
        return Logical(expr.op, left, _fold(expr.right), expr.line)
    if isinstance(expr, Load):
        return Load(expr.size, _fold(expr.address), expr.line)
    if isinstance(expr, Call):
        return Call(expr.name, tuple(_fold(arg) for arg in expr.args), expr.line)
    if isinstance(expr, Index):
        return Index(expr.name, _fold(expr.index), expr.line)
    return expr


class CompileError(ValueError):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Emitter:
    """Instruction buffer with label-based branch fixups."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[Tuple[int, str]] = []  # (slot index, label)
        self._label_counter = 0

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def bind(self, label: str) -> None:
        if label in self._labels:
            raise ValueError(f"label {label!r} bound twice")
        self._labels[label] = len(self.instructions)

    def raw(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    # -- convenience constructors ------------------------------------

    def alu_imm(self, op: str, dst: int, imm: int) -> None:
        self.raw(Instruction(BPF_ALU64 | BPF_K | ALU_OPS[op], dst, 0, 0, imm))

    def alu_reg(self, op: str, dst: int, src: int) -> None:
        self.raw(Instruction(BPF_ALU64 | BPF_X | ALU_OPS[op], dst, src, 0, 0))

    def mov_imm(self, dst: int, imm: int) -> None:
        if -(2**31) <= imm < 2**31:
            self.alu_imm("mov", dst, imm)
        else:
            self.lddw(dst, imm)

    def mov_reg(self, dst: int, src: int) -> None:
        self.alu_reg("mov", dst, src)

    def lddw(self, dst: int, value: int) -> None:
        value &= 0xFFFFFFFFFFFFFFFF
        low = value & 0xFFFFFFFF
        high = value >> 32
        self.raw(Instruction(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, _s32(low)))
        self.raw(Instruction(0, 0, 0, 0, _s32(high)))

    def load(self, size: int, dst: int, src: int, offset: int) -> None:
        self.raw(
            Instruction(BPF_LDX | BPF_MEM | _SIZE_TO_FLAG[size], dst, src, offset, 0)
        )

    def store_reg(self, size: int, dst: int, offset: int, src: int) -> None:
        self.raw(
            Instruction(BPF_STX | BPF_MEM | _SIZE_TO_FLAG[size], dst, src, offset, 0)
        )

    def jump(self, op: str, dst: int, label: str, imm: int = 0, src: int = -1) -> None:
        if src >= 0:
            opcode = BPF_JMP | BPF_X | JMP_OPS[op]
            instruction = Instruction(opcode, dst, src, 0, 0)
        else:
            opcode = BPF_JMP | BPF_K | JMP_OPS[op]
            instruction = Instruction(opcode, dst, 0, 0, _s32(imm))
        self._fixups.append((len(self.instructions), label))
        self.raw(instruction)

    def ja(self, label: str) -> None:
        self._fixups.append((len(self.instructions), label))
        self.raw(Instruction(BPF_JMP | JMP_OPS["ja"], 0, 0, 0, 0))

    def call(self, helper_id: int) -> None:
        self.raw(Instruction(BPF_JMP | JMP_OPS["call"], 0, 0, 0, helper_id))

    def exit(self) -> None:
        self.raw(Instruction(BPF_JMP | JMP_OPS["exit"], 0, 0, 0, 0))

    def endian_be(self, width: int, dst: int) -> None:
        self.raw(Instruction(BPF_ALU | BPF_X | ALU_OPS["end"], dst, 0, 0, width))

    def finish(self) -> List[Instruction]:
        for index, label in self._fixups:
            target = self._labels.get(label)
            if target is None:
                raise ValueError(f"unbound label {label!r}")
            offset = target - index - 1
            if not -32768 <= offset <= 32767:
                raise ValueError(f"branch to {label!r} out of range")
            instruction = self.instructions[index]
            self.instructions[index] = instruction._replace(offset=offset)
        return self.instructions


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


#: Frame split: scalar slots (locals, temporaries, parameters) live in
#: [-SCALAR_LIMIT, 0); address-taken blocks (arrays, string literals)
#: live in [-STACK_SIZE, -SCALAR_LIMIT).  The JIT's trusted-layout mode
#: relies on this segregation: pointers derived from r10 can only reach
#: the block region, so scalar slots are safely promoted to Python
#: locals even in programs that take stack addresses.
SCALAR_LIMIT = 384


class _Frame:
    """Stack-slot allocator for one program (shared across inlines).

    Scalars allocate downward from the frame top; address-taken blocks
    allocate upward from the frame bottom.  The two must not meet.
    """

    def __init__(self) -> None:
        self._scalar_offset = 0  # bytes below r10 handed to scalars
        self._block_top = -STACK_SIZE  # next free block offset
        self._free_slots: List[int] = []  # reusable 8-byte scalar slots

    def alloc_scalar(self, line: int) -> int:
        """Allocate one 8-byte scalar slot (local variable, parameter).

        Recycled slots (dead temporaries, out-of-scope locals) are
        reused before the frame grows.
        """
        if self._free_slots:
            return self._free_slots.pop()
        self._scalar_offset += 8
        if self._scalar_offset > SCALAR_LIMIT:
            raise CompileError(
                line, f"more than {SCALAR_LIMIT // 8} live scalar slots"
            )
        return -self._scalar_offset

    def alloc_block(self, size: int, line: int) -> int:
        """Allocate an address-taken block (array or string literal)."""
        aligned = (size + 7) & ~7
        offset = self._block_top
        self._block_top += aligned
        if self._block_top > -SCALAR_LIMIT:
            raise CompileError(
                line,
                f"arrays/strings exceed {STACK_SIZE - SCALAR_LIMIT} frame bytes",
            )
        return offset

    def alloc_temp(self, line: int) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        return self.alloc_scalar(line)

    def free_temp(self, offset: int) -> None:
        self._free_slots.append(offset)


class _Scope:
    """Lexical scoping of variable names to frame offsets.

    Scalar slots owned by a scope are recycled when the scope ends:
    block locals and inlined callees\' frames reuse stack space instead
    of growing the frame monotonically.
    """

    def __init__(self, parent: Optional["_Scope"] = None):
        self._parent = parent
        self._vars: Dict[str, Tuple[str, int, int]] = {}  # name -> (kind, offset, elem)
        self.scalar_slots: List[int] = []

    def declare(
        self, name: str, kind: str, offset: int, line: int, elem: int = 8
    ) -> None:
        if name in self._vars:
            raise CompileError(line, f"redeclaration of {name!r}")
        self._vars[name] = (kind, offset, elem)
        if kind == "var":
            self.scalar_slots.append(offset)

    def lookup(self, name: str) -> Optional[Tuple[str, int]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            entry = scope._vars.get(name)
            if entry is not None:
                return entry
            scope = scope._parent
        return None


class _Compiler:
    def __init__(
        self,
        program: Program,
        helper_ids: Mapping[str, int],
        constants: Mapping[str, int],
    ):
        self.program = program
        self.helper_ids = dict(helper_ids)
        self.constants = dict(constants)
        self.functions = {fn.name: fn for fn in program.functions}
        self.emitter = _Emitter()
        self.frame = _Frame()
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break) labels
        self._inline_stack: List[str] = []
        # (result slot, end label) for the innermost inlined call.
        self._inline_returns: List[Tuple[int, str]] = []

    # -- entry -----------------------------------------------------------

    def compile(self) -> List[Instruction]:
        entry = self.program.entry
        scope = _Scope()
        for index, param in enumerate(entry.params):
            offset = self.frame.alloc_scalar(entry.line)
            scope.declare(param, "var", offset, entry.line)
            self.emitter.store_reg(8, 10, offset, index + 1)
        self._block(entry.body, scope)
        # Implicit ``return 0`` guard for paths that fall off the end.
        self.emitter.mov_imm(0, 0)
        self.emitter.exit()
        return self.emitter.finish()

    # -- statements ---------------------------------------------------------

    def _block(self, block: Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for statement in block.statements:
            self._statement(statement, scope)
        # Block locals die with the scope: recycle their slots.
        for offset in scope.scalar_slots:
            self.frame.free_temp(offset)

    def _statement(self, statement: Statement, scope: _Scope) -> None:
        emit = self.emitter
        if isinstance(statement, VarDecl):
            offset = self.frame.alloc_scalar(statement.line)
            if statement.init is not None:
                slot = self._expr(statement.init, scope)
                emit.load(8, 1, 10, slot)
                emit.store_reg(8, 10, offset, 1)
                self.frame.free_temp(slot)
            else:
                emit.mov_imm(1, 0)
                emit.store_reg(8, 10, offset, 1)
            scope.declare(statement.name, "var", offset, statement.line)
            return
        if isinstance(statement, ArrayDecl):
            size = statement.element_size * statement.count
            if size <= 0:
                raise CompileError(statement.line, "zero-sized array")
            offset = self.frame.alloc_block(size, statement.line)
            scope.declare(
                statement.name, "array", offset, statement.line,
                elem=statement.element_size,
            )
            return
        if isinstance(statement, Assign):
            entry = scope.lookup(statement.name)
            if entry is None or entry[0] != "var":
                raise CompileError(
                    statement.line, f"assignment to undeclared {statement.name!r}"
                )
            slot = self._expr(statement.value, scope)
            emit.load(8, 1, 10, slot)
            emit.store_reg(8, 10, entry[1], 1)
            self.frame.free_temp(slot)
            return
        if isinstance(statement, IndexAssign):
            entry = scope.lookup(statement.name)
            if entry is None or entry[0] != "array":
                raise CompileError(
                    statement.line, f"{statement.name!r} is not an array"
                )
            _, offset, elem = entry
            value_slot = self._expr(statement.value, scope)
            index_slot = self._expr(statement.index, scope)
            emit.load(8, 1, 10, index_slot)
            if elem != 1:
                emit.alu_imm("mul", 1, elem)
            emit.alu_reg("add", 1, 10)
            emit.alu_imm("add", 1, offset)
            emit.load(8, 2, 10, value_slot)
            emit.store_reg(elem, 1, 0, 2)
            self.frame.free_temp(index_slot)
            self.frame.free_temp(value_slot)
            return
        if isinstance(statement, Store):
            addr_slot = self._expr(statement.address, scope)
            value_slot = self._expr(statement.value, scope)
            emit.load(8, 1, 10, addr_slot)
            emit.load(8, 2, 10, value_slot)
            emit.store_reg(statement.size, 1, 0, 2)
            self.frame.free_temp(value_slot)
            self.frame.free_temp(addr_slot)
            return
        if isinstance(statement, If):
            else_label = emit.new_label("else")
            end_label = emit.new_label("endif")
            self._branch_if_false(statement.condition, scope, else_label)
            self._block(statement.then_body, scope)
            if statement.else_body is not None:
                emit.ja(end_label)
                emit.bind(else_label)
                self._block(statement.else_body, scope)
                emit.bind(end_label)
            else:
                emit.bind(else_label)
            return
        if isinstance(statement, For):
            for_scope = _Scope(scope)
            if statement.init is not None:
                self._statement(statement.init, for_scope)
            top_label = emit.new_label("for")
            step_label = emit.new_label("forstep")
            end_label = emit.new_label("endfor")
            emit.bind(top_label)
            if statement.condition is not None:
                self._branch_if_false(statement.condition, for_scope, end_label)
            # `continue` jumps to the step clause, not the condition.
            self._loop_stack.append((step_label, end_label))
            self._block(statement.body, for_scope)
            self._loop_stack.pop()
            emit.bind(step_label)
            if statement.step is not None:
                self._statement(statement.step, for_scope)
            emit.ja(top_label)
            emit.bind(end_label)
            for offset in for_scope.scalar_slots:
                self.frame.free_temp(offset)
            return
        if isinstance(statement, While):
            top_label = emit.new_label("loop")
            end_label = emit.new_label("endloop")
            emit.bind(top_label)
            self._branch_if_false(statement.condition, scope, end_label)
            self._loop_stack.append((top_label, end_label))
            self._block(statement.body, scope)
            self._loop_stack.pop()
            emit.ja(top_label)
            emit.bind(end_label)
            return
        if isinstance(statement, Return):
            if statement.value is not None:
                slot = self._expr(statement.value, scope)
                emit.load(8, 0, 10, slot)
                self.frame.free_temp(slot)
            else:
                emit.mov_imm(0, 0)
            if self._inline_returns:
                result_slot, end_label = self._inline_returns[-1]
                emit.store_reg(8, 10, result_slot, 0)
                emit.ja(end_label)
            else:
                emit.exit()
            return
        if isinstance(statement, Break):
            if not self._loop_stack:
                raise CompileError(statement.line, "break outside loop")
            emit.ja(self._loop_stack[-1][1])
            return
        if isinstance(statement, Continue):
            if not self._loop_stack:
                raise CompileError(statement.line, "continue outside loop")
            emit.ja(self._loop_stack[-1][0])
            return
        if isinstance(statement, ExprStatement):
            slot = self._expr(statement.expr, scope)
            self.frame.free_temp(slot)
            return
        raise CompileError(getattr(statement, "line", 0), f"bad statement {statement}")

    def _branch_if_false(self, condition: Expr, scope: _Scope, label: str) -> None:
        slot = self._expr(condition, scope)
        self.emitter.load(8, 1, 10, slot)
        self.frame.free_temp(slot)
        self.emitter.jump("jeq", 1, label, imm=0)

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: Expr, scope: _Scope) -> int:
        """Compile ``expr``; return the frame offset of its result slot."""
        expr = _fold(expr)
        emit = self.emitter
        frame = self.frame

        if isinstance(expr, Number):
            slot = frame.alloc_temp(expr.line)
            emit.mov_imm(1, expr.value)
            emit.store_reg(8, 10, slot, 1)
            return slot

        if isinstance(expr, Str):
            # NUL-terminated string on the stack; value is its address.
            data = expr.value + b"\x00"
            block = frame.alloc_block(len(data), expr.line)
            for index in range(0, len(data), 8):
                chunk = data[index : index + 8]
                emit.mov_imm(1, int.from_bytes(chunk.ljust(8, b"\x00"), "little"))
                emit.store_reg(8, 10, block + index, 1)
            slot = frame.alloc_temp(expr.line)
            emit.mov_reg(1, 10)
            emit.alu_imm("add", 1, block)
            emit.store_reg(8, 10, slot, 1)
            return slot

        if isinstance(expr, Name):
            entry = scope.lookup(expr.name)
            if entry is not None:
                kind, offset = entry[0], entry[1]
                slot = frame.alloc_temp(expr.line)
                if kind == "var":
                    emit.load(8, 1, 10, offset)
                else:  # array name decays to its address
                    emit.mov_reg(1, 10)
                    emit.alu_imm("add", 1, offset)
                emit.store_reg(8, 10, slot, 1)
                return slot
            if expr.name in self.constants:
                slot = frame.alloc_temp(expr.line)
                emit.mov_imm(1, self.constants[expr.name])
                emit.store_reg(8, 10, slot, 1)
                return slot
            raise CompileError(expr.line, f"undefined name {expr.name!r}")

        if isinstance(expr, Unary):
            slot = self._expr(expr.operand, scope)
            emit.load(8, 1, 10, slot)
            if expr.op == "-":
                emit.raw(
                    Instruction(BPF_ALU64 | BPF_K | ALU_OPS["neg"], 1, 0, 0, 0)
                )
            elif expr.op == "~":
                emit.alu_imm("xor", 1, -1)
            elif expr.op == "!":
                done = emit.new_label("notz")
                emit.mov_imm(2, 1)
                emit.jump("jeq", 1, done, imm=0)
                emit.mov_imm(2, 0)
                emit.bind(done)
                emit.mov_reg(1, 2)
            else:
                raise CompileError(expr.line, f"bad unary {expr.op!r}")
            emit.store_reg(8, 10, slot, 1)
            return slot

        if isinstance(expr, Binary):
            left_slot = self._expr(expr.left, scope)
            right_slot = self._expr(expr.right, scope)
            emit.load(8, 1, 10, left_slot)
            emit.load(8, 2, 10, right_slot)
            if expr.op in _ARITH:
                emit.alu_reg(_ARITH[expr.op], 1, 2)
            elif expr.op in _CMP_TO_JMP:
                true_label = emit.new_label("cmpt")
                emit.mov_imm(3, 1)
                emit.jump(_CMP_TO_JMP[expr.op], 1, true_label, src=2)
                emit.mov_imm(3, 0)
                emit.bind(true_label)
                emit.mov_reg(1, 3)
            else:
                raise CompileError(expr.line, f"bad operator {expr.op!r}")
            emit.store_reg(8, 10, left_slot, 1)
            frame.free_temp(right_slot)
            return left_slot

        if isinstance(expr, Logical):
            slot = frame.alloc_temp(expr.line)
            short_label = emit.new_label("sc")
            end_label = emit.new_label("scend")
            left_slot = self._expr(expr.left, scope)
            emit.load(8, 1, 10, left_slot)
            frame.free_temp(left_slot)
            if expr.op == "&&":
                emit.jump("jeq", 1, short_label, imm=0)
            else:  # '||'
                emit.jump("jne", 1, short_label, imm=0)
            right_slot = self._expr(expr.right, scope)
            emit.load(8, 1, 10, right_slot)
            frame.free_temp(right_slot)
            norm_label = emit.new_label("norm")
            emit.mov_imm(2, 1)
            emit.jump("jne", 1, norm_label, imm=0)
            emit.mov_imm(2, 0)
            emit.bind(norm_label)
            emit.store_reg(8, 10, slot, 2)
            emit.ja(end_label)
            emit.bind(short_label)
            emit.mov_imm(2, 0 if expr.op == "&&" else 1)
            emit.store_reg(8, 10, slot, 2)
            emit.bind(end_label)
            return slot

        if isinstance(expr, Load):
            addr_slot = self._expr(expr.address, scope)
            emit.load(8, 1, 10, addr_slot)
            emit.load(expr.size, 1, 1, 0)
            emit.store_reg(8, 10, addr_slot, 1)
            return addr_slot

        if isinstance(expr, Index):
            entry = scope.lookup(expr.name)
            if entry is None or entry[0] != "array":
                raise CompileError(expr.line, f"{expr.name!r} is not an array")
            _, offset, elem = entry
            slot = self._expr(expr.index, scope)
            emit.load(8, 1, 10, slot)
            if elem != 1:
                emit.alu_imm("mul", 1, elem)
            emit.alu_reg("add", 1, 10)
            emit.alu_imm("add", 1, offset)
            emit.load(elem, 1, 1, 0)
            emit.store_reg(8, 10, slot, 1)
            return slot

        if isinstance(expr, Call):
            return self._call(expr, scope)

        raise CompileError(getattr(expr, "line", 0), f"bad expression {expr}")

    def _call(self, expr: Call, scope: _Scope) -> int:
        emit = self.emitter
        frame = self.frame

        # -- inline byte swaps -----------------------------------------
        if expr.name in _SWAPS:
            if len(expr.args) != 1:
                raise CompileError(expr.line, f"{expr.name} takes one argument")
            slot = self._expr(expr.args[0], scope)
            emit.load(8, 1, 10, slot)
            emit.endian_be(_SWAPS[expr.name], 1)
            emit.store_reg(8, 10, slot, 1)
            return slot

        # -- inline signed comparisons ----------------------------------
        if expr.name in _SIGNED_CMP:
            if len(expr.args) != 2:
                raise CompileError(expr.line, f"{expr.name} takes two arguments")
            left_slot = self._expr(expr.args[0], scope)
            right_slot = self._expr(expr.args[1], scope)
            emit.load(8, 1, 10, left_slot)
            emit.load(8, 2, 10, right_slot)
            true_label = emit.new_label("scmp")
            emit.mov_imm(3, 1)
            emit.jump(_SIGNED_CMP[expr.name], 1, true_label, src=2)
            emit.mov_imm(3, 0)
            emit.bind(true_label)
            emit.store_reg(8, 10, left_slot, 3)
            frame.free_temp(right_slot)
            return left_slot

        # -- user-function inlining ---------------------------------------
        if expr.name in self.functions and expr.name != self.program.entry.name:
            return self._inline(expr, scope)

        # -- helper call ------------------------------------------------------
        helper_id = self.helper_ids.get(expr.name)
        if helper_id is None:
            raise CompileError(expr.line, f"unknown function {expr.name!r}")
        arg_slots = [self._expr(arg, scope) for arg in expr.args]
        for index, slot in enumerate(arg_slots):
            emit.load(8, index + 1, 10, slot)
        emit.call(helper_id)
        for slot in arg_slots:
            frame.free_temp(slot)
        result_slot = frame.alloc_temp(expr.line)
        emit.store_reg(8, 10, result_slot, 0)
        return result_slot

    def _inline(self, expr: Call, scope: _Scope) -> int:
        if expr.name in self._inline_stack:
            raise CompileError(expr.line, f"recursive call to {expr.name!r}")
        if len(self._inline_stack) >= _MAX_INLINE_DEPTH:
            raise CompileError(expr.line, "inline depth exceeded")
        function = self.functions[expr.name]
        if len(expr.args) != len(function.params):
            raise CompileError(
                expr.line,
                f"{expr.name} expects {len(function.params)} arguments, "
                f"got {len(expr.args)}",
            )
        emit = self.emitter
        frame = self.frame
        callee_scope = _Scope()  # no access to caller locals
        for param, arg in zip(function.params, expr.args):
            arg_slot = self._expr(arg, scope)
            param_offset = frame.alloc_scalar(expr.line)
            emit.load(8, 1, 10, arg_slot)
            emit.store_reg(8, 10, param_offset, 1)
            frame.free_temp(arg_slot)
            callee_scope.declare(param, "var", param_offset, expr.line)
        result_slot = frame.alloc_temp(expr.line)
        end_label = emit.new_label(f"ret_{expr.name}")
        # Default return value 0 if the callee falls off the end.
        emit.mov_imm(1, 0)
        emit.store_reg(8, 10, result_slot, 1)
        self._inline_stack.append(expr.name)
        self._inline_returns.append((result_slot, end_label))
        self._block(function.body, callee_scope)
        self._inline_returns.pop()
        self._inline_stack.pop()
        emit.bind(end_label)
        # The callee's parameter slots die with the call.
        for offset in callee_scope.scalar_slots:
            frame.free_temp(offset)
        return result_slot


def compile_program(
    program: Program,
    helper_ids: Optional[Mapping[str, int]] = None,
    constants: Optional[Mapping[str, int]] = None,
) -> List[Instruction]:
    """Compile a parsed program to eBPF instructions."""
    return _Compiler(program, helper_ids or {}, constants or {}).compile()


def compile_source(
    source: str,
    helper_ids: Optional[Mapping[str, int]] = None,
    constants: Optional[Mapping[str, int]] = None,
) -> List[Instruction]:
    """Compile xc ``source`` to eBPF instructions.

    ``helper_ids`` maps callable helper names to call numbers;
    ``constants`` predefines names (session types, filter verdicts…)
    usable as integer literals.
    """
    numeric_constants = {
        name: int(value) for name, value in (constants or {}).items()
    }
    program = parse(source, numeric_constants)
    return compile_program(program, helper_ids or {}, numeric_constants)
