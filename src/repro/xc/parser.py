"""Recursive-descent parser for xc.

Grammar (precedence climbing for expressions)::

    program     := function+
    function    := type name '(' params? ')' block
    params      := type name (',' type name)*
    block       := '{' statement* '}'
    statement   := type name ('[' num ']')? ('=' expr)? ';'
                 | name ('=' | '+=' | '-=' | '*=' | '/=' | '%=' |
                         '&=' | '|=' | '^=' | '<<=' | '>>=') expr ';'
                 | name '[' expr ']' (assign-op) expr ';'
                 | '*' '(' type '*' ')' '(' expr ')' '=' expr ';'
                 | 'if' '(' expr ')' block ('else' (block | if-stmt))?
                 | 'while' '(' expr ')' block
                 | 'for' '(' init? ';' expr? ';' step? ')' block
                 | 'return' expr? ';'
                 | 'break' ';' | 'continue' ';'
                 | expr ';'
    expr        := logical-or
    unary       := ('-' | '~' | '!')? postfix | deref
    deref       := '*' '(' type '*' ')' unary
    primary     := num | string | name | name '(' args ')'
                 | name '[' expr ']' | '(' expr ')'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .astnodes import (
    ArrayDecl,
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    ExprStatement,
    For,
    Function,
    If,
    Index,
    IndexAssign,
    Load,
    Logical,
    Name,
    Number,
    Program,
    Return,
    Statement,
    Store,
    Str,
    Unary,
    VarDecl,
    While,
)
from .lexer import Token, tokenize

__all__ = ["parse", "ParseError"]

_TYPE_SIZES = {"u8": 1, "u16": 2, "u32": 4, "u64": 8, "int": 8, "uint64_t": 8}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class ParseError(ValueError):
    def __init__(self, token: Token, message: str):
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(self._peek(), f"expected {want!r}")
        return token

    # -- grammar ---------------------------------------------------------

    def parse_program(self) -> Program:
        functions: List[Function] = []
        while self._peek().kind != "eof":
            functions.append(self._function())
        if not functions:
            raise ParseError(self._peek(), "empty program")
        return Program(tuple(functions))

    def _function(self) -> Function:
        self._expect("type")
        name = self._expect("name")
        self._expect("punct", "(")
        params: List[str] = []
        if not self._accept("punct", ")"):
            while True:
                self._expect("type")
                # Tolerate pointer-style params: ``type *name``.
                while self._accept("op", "*"):
                    pass
                param = self._expect("name")
                # Tolerate (and ignore) attribute-ish trailing names,
                # e.g. ``bpf_full_args_t *args UNUSED``.
                while self._peek().kind == "name":
                    self._next()
                params.append(param.text)
                if self._accept("punct", ")"):
                    break
                self._expect("punct", ",")
        if len(params) > 5:
            raise ParseError(name, "at most 5 parameters (eBPF ABI)")
        body = self._block()
        return Function(name.text, tuple(params), body, name.line)

    def _block(self) -> Block:
        self._expect("punct", "{")
        statements: List[Statement] = []
        while not self._accept("punct", "}"):
            statements.append(self._statement())
        return Block(tuple(statements))

    def _statement(self) -> Statement:
        token = self._peek()

        if token.kind == "type":
            return self._declaration()

        if token.kind == "kw":
            if token.text == "if":
                return self._if_statement()
            if token.text == "while":
                return self._while_statement()
            if token.text == "for":
                return self._for_statement()
            if token.text == "return":
                self._next()
                if self._accept("punct", ";"):
                    return Return(None, token.line)
                value = self._expression()
                self._expect("punct", ";")
                return Return(value, token.line)
            if token.text == "break":
                self._next()
                self._expect("punct", ";")
                return Break(token.line)
            if token.text == "continue":
                self._next()
                self._expect("punct", ";")
                return Continue(token.line)

        # Typed store:  *(u16 *)(addr) = value;
        if token.kind == "op" and token.text == "*" and self._peek(1).kind == "punct" \
                and self._peek(1).text == "(" and self._peek(2).kind == "type":
            size, address = self._deref_prefix()
            self._expect("op", "=")
            value = self._expression()
            self._expect("punct", ";")
            return Store(size, address, value, token.line)

        # Assignment: name = expr;  compound: name += expr;
        if token.kind == "name" and self._peek(1).kind == "op" and (
            self._peek(1).text == "="
            or (self._peek(1).text.endswith("=") and self._peek(1).text not in ("==", "!=", "<=", ">="))
        ):
            name = self._next()
            operator = self._next().text  # '=' or 'op='
            value = self._expression()
            self._expect("punct", ";")
            if operator != "=":
                value = Binary(operator[:-1], Name(name.text, name.line), value, token.line)
            return Assign(name.text, value, token.line)

        # Array element write: name[index] = expr;  (also compound)
        if token.kind == "name" and self._peek(1).kind == "punct" and self._peek(1).text == "[":
            # Look ahead: only a statement if an '=' follows the ']'.
            saved = self._index
            name = self._next()
            self._next()  # '['
            index = self._expression()
            self._expect("punct", "]")
            nxt = self._peek()
            if nxt.kind == "op" and (
                nxt.text == "="
                or (nxt.text.endswith("=") and nxt.text not in ("==", "!=", "<=", ">="))
            ):
                operator = self._next().text
                value = self._expression()
                self._expect("punct", ";")
                if operator != "=":
                    value = Binary(
                        operator[:-1], Index(name.text, index, name.line), value, token.line
                    )
                return IndexAssign(name.text, index, value, token.line)
            self._index = saved  # expression statement after all

        expr = self._expression()
        self._expect("punct", ";")
        return ExprStatement(expr, token.line)

    def _declaration(self) -> Statement:
        type_token = self._expect("type")
        is_pointer = False
        while self._accept("op", "*"):
            is_pointer = True
        name = self._expect("name")
        if self._accept("punct", "["):
            count_token = self._expect("num")
            self._expect("punct", "]")
            self._expect("punct", ";")
            element = 8 if is_pointer else _TYPE_SIZES[type_token.text]
            return ArrayDecl(name.text, element, count_token.value, name.line)
        init: Optional[Expr] = None
        if self._accept("op", "="):
            init = self._expression()
        self._expect("punct", ";")
        return VarDecl(name.text, init, name.line)

    def _if_statement(self) -> If:
        token = self._expect("kw", "if")
        self._expect("punct", "(")
        condition = self._expression()
        self._expect("punct", ")")
        then_body = self._block()
        else_body: Optional[Block] = None
        if self._accept("kw", "else"):
            if self._peek().kind == "kw" and self._peek().text == "if":
                else_body = Block((self._if_statement(),))
            else:
                else_body = self._block()
        return If(condition, then_body, else_body, token.line)

    def _for_statement(self) -> "For":
        token = self._expect("kw", "for")
        self._expect("punct", "(")
        init = None
        if not self._accept("punct", ";"):
            init = self._statement()  # consumes its ';'
        condition = None
        if not self._accept("punct", ";"):
            condition = self._expression()
            self._expect("punct", ";")
        step = None
        if not self._accept("punct", ")"):
            step = self._for_step()
            self._expect("punct", ")")
        body = self._block()
        return For(init, condition, step, body, token.line)

    def _for_step(self) -> Statement:
        """The step clause: an assignment or expression, no semicolon."""
        token = self._peek()
        if token.kind == "name" and self._peek(1).kind == "op" and (
            self._peek(1).text == "="
            or (
                self._peek(1).text.endswith("=")
                and self._peek(1).text not in ("==", "!=", "<=", ">=")
            )
        ):
            name = self._next()
            operator = self._next().text
            value = self._expression()
            if operator != "=":
                value = Binary(operator[:-1], Name(name.text, name.line), value, token.line)
            return Assign(name.text, value, token.line)
        return ExprStatement(self._expression(), token.line)

    def _while_statement(self) -> While:
        token = self._expect("kw", "while")
        self._expect("punct", "(")
        condition = self._expression()
        self._expect("punct", ")")
        body = self._block()
        return While(condition, body, token.line)

    # -- expressions --------------------------------------------------------

    def _expression(self, min_precedence: int = 1) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind != "op" or token.text not in _PRECEDENCE:
                break
            precedence = _PRECEDENCE[token.text]
            if precedence < min_precedence:
                break
            self._next()
            right = self._expression(precedence + 1)
            if token.text in ("&&", "||"):
                left = Logical(token.text, left, right, token.line)
            else:
                left = Binary(token.text, left, right, token.line)
        return left

    def _deref_prefix(self) -> Tuple[int, Expr]:
        """Consume ``*(type *)(...)`` and return (size, address expr)."""
        star = self._expect("op", "*")
        self._expect("punct", "(")
        type_token = self._expect("type")
        self._expect("op", "*")
        self._expect("punct", ")")
        address = self._unary()
        size = _TYPE_SIZES.get(type_token.text)
        if size is None:
            raise ParseError(star, f"cannot dereference type {type_token.text!r}")
        return size, address

    def _unary(self) -> Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self._next()
            return Unary(token.text, self._unary(), token.line)
        if token.kind == "op" and token.text == "*":
            size, address = self._deref_prefix()
            return Load(size, address, token.line)
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind == "num":
            return Number(token.value, token.line)
        if token.kind == "str":
            raw = token.text[1:-1]
            value = (
                raw.encode("ascii")
                .decode("unicode_escape")
                .encode("latin-1")
            )
            return Str(value, token.line)
        if token.kind == "punct" and token.text == "(":
            # Either a parenthesised expression or a (type) cast to drop.
            if self._peek().kind == "type":
                self._next()
                while self._accept("op", "*"):
                    pass
                self._expect("punct", ")")
                return self._unary()
            expr = self._expression()
            self._expect("punct", ")")
            return expr
        if token.kind == "name":
            if self._accept("punct", "("):
                args: List[Expr] = []
                if not self._accept("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if self._accept("punct", ")"):
                            break
                        self._expect("punct", ",")
                if len(args) > 5:
                    raise ParseError(token, "at most 5 call arguments (eBPF ABI)")
                return Call(token.text, tuple(args), token.line)
            if self._accept("punct", "["):
                index = self._expression()
                self._expect("punct", "]")
                return Index(token.text, index, token.line)
            return Name(token.text, token.line)
        raise ParseError(token, "expected expression")


def parse(source: str, constants: Optional[Dict[str, int]] = None) -> Program:
    """Parse xc ``source`` into a :class:`Program`."""
    return _Parser(tokenize(source, constants)).parse_program()
