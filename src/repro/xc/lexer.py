"""Lexer for xc, the C subset xBGP programs are written in.

The language is deliberately the part of C the paper's plugins use
(Listing 1): 64-bit unsigned arithmetic, pointers as integers, typed
dereferences ``*(u16 *)(ptr + 2)``, ``if``/``while``/``return``, helper
calls and ``#define`` constants.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, NamedTuple, Optional

__all__ = ["Token", "LexerError", "tokenize", "KEYWORDS", "TYPE_NAMES"]

KEYWORDS = {
    "for",
    "if",
    "else",
    "while",
    "return",
    "break",
    "continue",
}

TYPE_NAMES = {"u8", "u16", "u32", "u64", "int", "uint64_t", "void"}


class LexerError(ValueError):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Token(NamedTuple):
    kind: str  # 'num', 'name', 'kw', 'type', 'op', 'punct', 'str'
    text: str
    line: int

    @property
    def value(self) -> int:
        if self.kind != "num":
            raise ValueError(f"not a number token: {self}")
        return int(self.text, 0)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<newline>\n)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<str>"(?:[^"\\]|\\.)*")
  | (?P<op><<=?|>>=?|<=|>=|==|!=|&&|\|\||[-+*/%&|^]=|[-+*/%&|^~!<>=])
  | (?P<punct>[()\[\]{},;])
    """,
    re.VERBOSE | re.DOTALL,
)


def _expand_defines(source: str) -> str:
    """Strip ``#define NAME value`` lines, substituting token-wise."""
    defines: Dict[str, str] = {}
    kept_lines: List[str] = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) != 3:
                raise LexerError(0, f"malformed define: {stripped!r}")
            defines[parts[1]] = parts[2]
            kept_lines.append("")  # keep line numbering stable
        elif stripped.startswith("#"):
            kept_lines.append("")  # ignore other preprocessor lines
        else:
            kept_lines.append(line)
    text = "\n".join(kept_lines)
    if defines:
        # Repeated substitution supports chained defines, bounded to
        # avoid cycles.
        for _ in range(8):
            changed = False
            for name, value in defines.items():
                new = re.sub(rf"\b{re.escape(name)}\b", value, text)
                if new != text:
                    text = new
                    changed = True
            if not changed:
                break
    return text


def tokenize(source: str, constants: Optional[Dict[str, int]] = None) -> List[Token]:
    """Tokenize ``source``; ``constants`` are extra predefined names."""
    source = _expand_defines(source)
    if constants:
        replacements = {name: str(value) for name, value in constants.items()}
    else:
        replacements = {}
    tokens: List[Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise LexerError(line, f"unexpected character {source[position]!r}")
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws",):
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "name":
            if text in replacements:
                tokens.append(Token("num", replacements[text], line))
            elif text in KEYWORDS:
                tokens.append(Token("kw", text, line))
            elif text in TYPE_NAMES:
                tokens.append(Token("type", text, line))
            else:
                tokens.append(Token("name", text, line))
            continue
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
