"""xc: a small C-subset compiler targeting eBPF.

The paper's operators write xBGP programs in C and compile them with
clang to eBPF bytecode.  This package provides the offline equivalent:
``compile_source`` turns a C-subset program (64-bit unsigned scalars,
typed pointer dereferences, ``if``/``while``/``return``, helper calls,
``#define``) into eBPF instructions runnable by :mod:`repro.ebpf`.
"""

from .codegen import CompileError, compile_program, compile_source
from .lexer import LexerError, tokenize
from .parser import ParseError, parse

__all__ = [
    "CompileError",
    "compile_program",
    "compile_source",
    "LexerError",
    "tokenize",
    "ParseError",
    "parse",
]
