"""AST node definitions for xc."""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple, Union

__all__ = [
    "Number",
    "Name",
    "Unary",
    "Binary",
    "Logical",
    "Call",
    "Load",
    "Str",
    "Expr",
    "VarDecl",
    "ArrayDecl",
    "Assign",
    "Store",
    "IndexAssign",
    "Index",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "ExprStatement",
    "Statement",
    "Block",
    "Function",
    "Program",
]


class Number(NamedTuple):
    value: int
    line: int


class Name(NamedTuple):
    name: str
    line: int


class Unary(NamedTuple):
    op: str  # '-', '~', '!'
    operand: "Expr"
    line: int


class Binary(NamedTuple):
    op: str  # + - * / % & | ^ << >> == != < <= > >=
    left: "Expr"
    right: "Expr"
    line: int


class Logical(NamedTuple):
    op: str  # '&&' or '||'
    left: "Expr"
    right: "Expr"
    line: int


class Call(NamedTuple):
    name: str
    args: Tuple["Expr", ...]
    line: int


class Load(NamedTuple):
    size: int  # 1, 2, 4 or 8 bytes
    address: "Expr"
    line: int


class Str(NamedTuple):
    value: bytes  # unescaped, without the trailing NUL
    line: int


class Index(NamedTuple):
    """Array element read: ``name[index]`` (element size from the
    array's declaration)."""

    name: str
    index: "Expr"
    line: int


Expr = Union[Number, Name, Unary, Binary, Logical, Call, Load, Str, Index]


class VarDecl(NamedTuple):
    name: str
    init: Optional[Expr]
    line: int


class ArrayDecl(NamedTuple):
    name: str
    element_size: int  # bytes per element
    count: int
    line: int


class Assign(NamedTuple):
    name: str
    value: Expr
    line: int


class Store(NamedTuple):
    size: int
    address: Expr
    value: Expr
    line: int


class IndexAssign(NamedTuple):
    """Array element write: ``name[index] = value``."""

    name: str
    index: Expr
    value: Expr
    line: int


class If(NamedTuple):
    condition: Expr
    then_body: "Block"
    else_body: Optional["Block"]
    line: int


class While(NamedTuple):
    condition: Expr
    body: "Block"
    line: int


class For(NamedTuple):
    """C-style for: init and step are optional statements, condition an
    optional expression (absent means true)."""

    init: Optional["Statement"]
    condition: Optional[Expr]
    step: Optional["Statement"]
    body: "Block"
    line: int


class Return(NamedTuple):
    value: Optional[Expr]
    line: int


class Break(NamedTuple):
    line: int


class Continue(NamedTuple):
    line: int


class ExprStatement(NamedTuple):
    expr: Expr
    line: int


Statement = Union[
    "For",
    VarDecl,
    ArrayDecl,
    Assign,
    Store,
    IndexAssign,
    If,
    While,
    Return,
    Break,
    Continue,
    ExprStatement,
]


class Block(NamedTuple):
    statements: Tuple[Statement, ...]


class Function(NamedTuple):
    name: str
    params: Tuple[str, ...]
    body: Block
    line: int


class Program(NamedTuple):
    functions: Tuple[Function, ...]

    @property
    def entry(self) -> Function:
        """The entry point: the last function defined (C convention —
        callees appear before their callers, so the program's public
        function comes last)."""
        return self.functions[-1]
