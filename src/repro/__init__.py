"""xBGP reproduction: programmable BGP via eBPF extension code.

Reproduction of *xBGP: When You Can't Wait for the IETF and Vendors*
(Wirtgen, De Coninck, Bush, Vanbever, Bonaventure - HotNets 2020) as a
pure-Python system:

* :mod:`repro.core` - libxbgp: the vendor-neutral API, insertion
  points and the Virtual Machine Manager;
* :mod:`repro.ebpf` - a userspace eBPF VM (ISA, assembler, verifier,
  interpreter, JIT translator);
* :mod:`repro.xc` - a C-subset compiler producing the plugin bytecode;
* :mod:`repro.frr` / :mod:`repro.bird` - two xBGP-compliant BGP
  daemons with deliberately different internals (FRRouting-like and
  BIRD-like);
* :mod:`repro.bgp` - the shared RFC 4271 substrate (wire format, RIBs,
  decision process, FSM, ROAs);
* :mod:`repro.plugins` - the paper's five use cases as xBGP programs;
* :mod:`repro.sim` / :mod:`repro.net` - discrete-event simulation and
  live asyncio transport;
* :mod:`repro.workload` / :mod:`repro.mrt` - synthetic RIS-like tables
  and the MRT archive format;
* :mod:`repro.eval` - the experiment drivers for every paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
