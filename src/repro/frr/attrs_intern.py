"""FRRouting-style interned attribute sets.

Real FRRouting parses path attributes into ``struct attr`` — host
byte order, fixed fields — and hash-conses them (``attrhash``).  The
paper's FRR glue was the bigger one precisely because of this: every
xBGP call crossing the API needs conversion between this parsed form
and the neutral network-byte-order representation.  The conversion
functions live here (:meth:`FrrAttrs.from_wire`, :meth:`FrrAttrs.to_wire`,
:meth:`FrrAttrs.attr_to_wire`) and are exercised by the glue on every
``get_attr``/``set_attr``.
"""

from __future__ import annotations

import struct
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..bgp.aspath import AsPath, AsPathSegment
from ..bgp.attributes import (
    PathAttribute,
    make_as_path,
    make_atomic_aggregate,
    make_aggregator,
    make_cluster_list,
    make_communities,
    make_local_pref,
    make_med,
    make_next_hop,
    make_origin,
    make_originator_id,
)
from ..bgp.constants import AsPathSegmentType, AttrFlag, AttrTypeCode, Origin

__all__ = ["FrrAttrs", "AttrPool"]

#: Parsed AS path in host form: tuple of (segment kind, tuple of ASNs).
HostPath = Tuple[Tuple[int, Tuple[int, ...]], ...]


class FrrAttrs:
    """Immutable parsed attribute set (host byte order), hash-consable.

    Unknown attribute codes are carried in ``extra`` as raw
    ``(code, flags, bytes)`` triples — the equivalent of FRR's
    ``transit`` blob (and the part the paper had to extend so plugins
    can attach non-standard attributes like ORIGINATOR_ID or GeoLoc).
    """

    __slots__ = (
        "origin",
        "as_path",
        "next_hop",
        "med",
        "local_pref",
        "atomic_aggregate",
        "aggregator",
        "communities",
        "originator_id",
        "cluster_list",
        "extra",
        "_key",
        "_hash",
        "_wire_cache",
        "_attr_cache",
        "_packed_cache",
        "_write_cache",
    )

    def __init__(
        self,
        origin: Optional[int] = None,
        as_path: HostPath = (),
        next_hop: Optional[int] = None,
        med: Optional[int] = None,
        local_pref: Optional[int] = None,
        atomic_aggregate: bool = False,
        aggregator: Optional[Tuple[int, int]] = None,
        communities: Optional[FrozenSet[int]] = None,
        originator_id: Optional[int] = None,
        cluster_list: Optional[Tuple[int, ...]] = None,
        extra: Tuple[Tuple[int, int, bytes], ...] = (),
    ):
        self.origin = origin
        self.as_path = as_path
        self.next_hop = next_hop
        self.med = med
        self.local_pref = local_pref
        self.atomic_aggregate = atomic_aggregate
        self.aggregator = aggregator
        self.communities = communities
        self.originator_id = originator_id
        self.cluster_list = cluster_list
        self.extra = tuple(sorted(extra))
        self._key = (
            origin,
            as_path,
            next_hop,
            med,
            local_pref,
            atomic_aggregate,
            aggregator,
            communities,
            originator_id,
            cluster_list,
            self.extra,
        )
        self._hash = hash(self._key)
        self._wire_cache: Optional[List[PathAttribute]] = None
        # Per-attribute neutral-form cache: FrrAttrs are immutable and
        # interned, so each host->wire conversion happens once (FRR
        # itself caches encoded attribute blobs the same way).
        self._attr_cache: Dict[int, Optional[PathAttribute]] = {}
        # Per-attribute ``get_attr`` helper-struct cache (pack_attr
        # header + payload), filled by the glue's get_attr_packed.
        self._packed_cache: Dict[int, Optional[bytes]] = {}
        # ``set_attr`` write cache: (code, flags, value) -> the interned
        # result of applying that write to this set.  Extensions stamp
        # the same value onto many routes sharing an attribute set (RR
        # stamps one ORIGINATOR_ID per peer), so the parse + rebuild +
        # intern happens once per (set, write) pair.
        self._write_cache: Dict[Tuple[int, int, bytes], "FrrAttrs"] = {}

    def key(self):
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrrAttrs):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle only the eleven constructor fields: the derived key,
        # hash and marshalling caches are rebuilt on unpickle, so a
        # shipped intern table re-interns cleanly inside shard workers.
        return (
            FrrAttrs,
            (
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.atomic_aggregate,
                self.aggregator,
                self.communities,
                self.originator_id,
                self.cluster_list,
                self.extra,
            ),
        )

    # -- conversion: wire (neutral) -> host ------------------------------

    @classmethod
    def from_wire(cls, attributes: Iterable[PathAttribute]) -> "FrrAttrs":
        """Parse neutral attributes into the host representation."""
        fields: Dict[str, object] = {}
        extra: List[Tuple[int, int, bytes]] = []
        for attribute in attributes:
            code = attribute.type_code
            if code == AttrTypeCode.ORIGIN and len(attribute.value) == 1:
                fields["origin"] = attribute.value[0]
            elif code == AttrTypeCode.AS_PATH:
                path = AsPath.decode(attribute.value)
                fields["as_path"] = tuple(
                    (int(segment.kind), segment.asns) for segment in path.segments
                )
            elif code == AttrTypeCode.NEXT_HOP and len(attribute.value) == 4:
                fields["next_hop"] = struct.unpack("!I", attribute.value)[0]
            elif code == AttrTypeCode.MULTI_EXIT_DISC and len(attribute.value) == 4:
                fields["med"] = struct.unpack("!I", attribute.value)[0]
            elif code == AttrTypeCode.LOCAL_PREF and len(attribute.value) == 4:
                fields["local_pref"] = struct.unpack("!I", attribute.value)[0]
            elif code == AttrTypeCode.ATOMIC_AGGREGATE:
                fields["atomic_aggregate"] = True
            elif code == AttrTypeCode.AGGREGATOR and len(attribute.value) == 8:
                fields["aggregator"] = struct.unpack("!II", attribute.value)
            elif code == AttrTypeCode.COMMUNITIES and len(attribute.value) % 4 == 0:
                fields["communities"] = frozenset(
                    struct.unpack_from("!I", attribute.value, i)[0]
                    for i in range(0, len(attribute.value), 4)
                )
            elif code == AttrTypeCode.ORIGINATOR_ID and len(attribute.value) == 4:
                fields["originator_id"] = struct.unpack("!I", attribute.value)[0]
            elif code == AttrTypeCode.CLUSTER_LIST and len(attribute.value) % 4 == 0:
                fields["cluster_list"] = tuple(
                    struct.unpack_from("!I", attribute.value, i)[0]
                    for i in range(0, len(attribute.value), 4)
                )
            else:
                extra.append((code, attribute.flags, attribute.value))
        return cls(extra=tuple(extra), **fields)  # type: ignore[arg-type]

    # -- conversion: host -> wire (neutral) ----------------------------------

    def to_wire(self) -> List[PathAttribute]:
        """Serialize the parsed set back to neutral attributes."""
        if self._wire_cache is not None:
            return list(self._wire_cache)
        out: List[PathAttribute] = []
        if self.origin is not None:
            out.append(make_origin(Origin(self.origin)))
        if self.as_path or self.origin is not None:
            segments = [
                AsPathSegment(AsPathSegmentType(kind), asns)
                for kind, asns in self.as_path
            ]
            out.append(make_as_path(AsPath(segments)))
        if self.next_hop is not None:
            out.append(make_next_hop(self.next_hop))
        if self.med is not None:
            out.append(make_med(self.med))
        if self.local_pref is not None:
            out.append(make_local_pref(self.local_pref))
        if self.atomic_aggregate:
            out.append(make_atomic_aggregate())
        if self.aggregator is not None:
            out.append(make_aggregator(*self.aggregator))
        if self.communities is not None:
            out.append(make_communities(self.communities))
        if self.originator_id is not None:
            out.append(make_originator_id(self.originator_id))
        if self.cluster_list is not None:
            out.append(make_cluster_list(self.cluster_list))
        for code, flags, value in self.extra:
            out.append(PathAttribute(flags, code, value))
        out.sort(key=lambda a: a.type_code)
        self._wire_cache = out
        return list(out)

    def attr_to_wire(self, code: int) -> Optional[PathAttribute]:
        """Convert one attribute to neutral form (glue hot path, memoised)."""
        cache = self._attr_cache
        if code in cache:
            return cache[code]
        result = self._attr_to_wire_uncached(code)
        cache[code] = result
        return result

    def _attr_to_wire_uncached(self, code: int) -> Optional[PathAttribute]:
        if code == AttrTypeCode.ORIGIN:
            return make_origin(Origin(self.origin)) if self.origin is not None else None
        if code == AttrTypeCode.AS_PATH:
            if not self.as_path and self.origin is None:
                return None
            segments = [
                AsPathSegment(AsPathSegmentType(kind), asns)
                for kind, asns in self.as_path
            ]
            return make_as_path(AsPath(segments))
        if code == AttrTypeCode.NEXT_HOP:
            return make_next_hop(self.next_hop) if self.next_hop is not None else None
        if code == AttrTypeCode.MULTI_EXIT_DISC:
            return make_med(self.med) if self.med is not None else None
        if code == AttrTypeCode.LOCAL_PREF:
            return (
                make_local_pref(self.local_pref)
                if self.local_pref is not None
                else None
            )
        if code == AttrTypeCode.ATOMIC_AGGREGATE:
            return make_atomic_aggregate() if self.atomic_aggregate else None
        if code == AttrTypeCode.AGGREGATOR:
            return make_aggregator(*self.aggregator) if self.aggregator else None
        if code == AttrTypeCode.COMMUNITIES:
            return (
                make_communities(self.communities)
                if self.communities is not None
                else None
            )
        if code == AttrTypeCode.ORIGINATOR_ID:
            return (
                make_originator_id(self.originator_id)
                if self.originator_id is not None
                else None
            )
        if code == AttrTypeCode.CLUSTER_LIST:
            return (
                make_cluster_list(self.cluster_list)
                if self.cluster_list is not None
                else None
            )
        for extra_code, flags, value in self.extra:
            if extra_code == code:
                return PathAttribute(flags, code, value)
        return None

    # -- functional updates (new interned instance per change) -----------------

    def replaced(self, **changes) -> "FrrAttrs":
        fields = {
            "origin": self.origin,
            "as_path": self.as_path,
            "next_hop": self.next_hop,
            "med": self.med,
            "local_pref": self.local_pref,
            "atomic_aggregate": self.atomic_aggregate,
            "aggregator": self.aggregator,
            "communities": self.communities,
            "originator_id": self.originator_id,
            "cluster_list": self.cluster_list,
            "extra": self.extra,
        }
        fields.update(changes)
        return FrrAttrs(**fields)  # type: ignore[arg-type]

    def with_attr_wire(self, code: int, flags: int, value: bytes) -> "FrrAttrs":
        """Set one attribute from its neutral form (conversion in).

        Parses the single attribute's wire bytes straight into the host
        field (this is the glue hot path: the RR extension calls it for
        every reflected route).
        """
        changes: Dict[str, object] = {}
        if code == AttrTypeCode.ORIGIN:
            if len(value) != 1:
                raise ValueError("ORIGIN must be one byte")
            changes["origin"] = value[0]
        elif code == AttrTypeCode.AS_PATH:
            path = AsPath.decode(value)
            changes["as_path"] = tuple(
                (int(segment.kind), segment.asns) for segment in path.segments
            )
        elif code == AttrTypeCode.NEXT_HOP:
            changes["next_hop"] = struct.unpack("!I", value)[0]
        elif code == AttrTypeCode.MULTI_EXIT_DISC:
            changes["med"] = struct.unpack("!I", value)[0]
        elif code == AttrTypeCode.LOCAL_PREF:
            changes["local_pref"] = struct.unpack("!I", value)[0]
        elif code == AttrTypeCode.ATOMIC_AGGREGATE:
            changes["atomic_aggregate"] = True
        elif code == AttrTypeCode.AGGREGATOR:
            changes["aggregator"] = struct.unpack("!II", value)
        elif code == AttrTypeCode.COMMUNITIES:
            if len(value) % 4 != 0:
                raise ValueError("COMMUNITIES not a multiple of 4")
            changes["communities"] = frozenset(
                struct.unpack_from("!I", value, i)[0] for i in range(0, len(value), 4)
            )
        elif code == AttrTypeCode.ORIGINATOR_ID:
            changes["originator_id"] = struct.unpack("!I", value)[0]
        elif code == AttrTypeCode.CLUSTER_LIST:
            if len(value) % 4 != 0:
                raise ValueError("CLUSTER_LIST not a multiple of 4")
            changes["cluster_list"] = tuple(
                struct.unpack_from("!I", value, i)[0] for i in range(0, len(value), 4)
            )
        else:
            extra = tuple(
                entry for entry in self.extra if entry[0] != code
            ) + ((code, flags, bytes(value)),)
            changes["extra"] = extra
        return self.replaced(**changes)

    def without_attr(self, code: int) -> Tuple["FrrAttrs", bool]:
        """Remove one attribute; returns (new set, removed?)."""
        mapping = {
            AttrTypeCode.ORIGIN: ("origin", None),
            AttrTypeCode.AS_PATH: ("as_path", ()),
            AttrTypeCode.NEXT_HOP: ("next_hop", None),
            AttrTypeCode.MULTI_EXIT_DISC: ("med", None),
            AttrTypeCode.LOCAL_PREF: ("local_pref", None),
            AttrTypeCode.ATOMIC_AGGREGATE: ("atomic_aggregate", False),
            AttrTypeCode.AGGREGATOR: ("aggregator", None),
            AttrTypeCode.COMMUNITIES: ("communities", None),
            AttrTypeCode.ORIGINATOR_ID: ("originator_id", None),
            AttrTypeCode.CLUSTER_LIST: ("cluster_list", None),
        }
        entry = mapping.get(code)
        if entry is not None:
            field, empty = entry
            if getattr(self, field) in (None, (), False):
                return self, False
            return self.replaced(**{field: empty}), True
        extra = tuple(item for item in self.extra if item[0] != code)
        if len(extra) == len(self.extra):
            return self, False
        return self.replaced(extra=extra), True

    def has_attr(self, code: int) -> bool:
        return self.attr_to_wire(code) is not None

    def __repr__(self) -> str:
        return f"FrrAttrs(path={self.as_path}, nh={self.next_hop})"


class AttrPool:
    """FRR's ``attrhash``: hash-consing pool for attribute sets."""

    def __init__(self) -> None:
        self._pool: Dict[tuple, FrrAttrs] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, attrs: FrrAttrs) -> FrrAttrs:
        existing = self._pool.get(attrs.key())
        if existing is not None:
            self.hits += 1
            return existing
        self.misses += 1
        self._pool[attrs.key()] = attrs
        return attrs

    def __len__(self) -> int:
        return len(self._pool)
