"""PyFRR: an FRRouting-flavoured BGP daemon.

Distinctive internals (mirroring what the paper ran into in FRRouting):

* attributes parsed into host-byte-order :class:`FrrAttrs` structs,
  hash-consed through an :class:`AttrPool` (FRR's ``attrhash``);
* validated ROAs stored in a **prefix trie** that native origin
  validation *browses* on every check — the behaviour §3.4 found
  slower than the extension's hash table;
* no flexible attribute API: the xBGP glue supplies one, converting
  to/from the neutral representation on every call.

The message-processing pipeline intentionally parallels
:class:`repro.bird.daemon.BirdDaemon` — both implement RFC 4271 — but
every route touch goes through the FRR-style structures.
"""

from __future__ import annotations

import struct
from collections import Counter
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from ..bgp.attributes import PathAttribute
from ..bgp.constants import (
    AttrTypeCode,
    MessageType,
    Origin,
    RouteOriginValidity,
    WellKnownCommunity,
)
from ..bgp.decision import (
    DecisionConfig,
    best_route,
    best_route_explained,
    compare_routes,
    compare_routes_explain,
)
from ..bgp.messages import (
    BgpMessage,
    RouteRefreshMessage,
    UpdateMessage,
    encode_header,
    split_stream,
)
from ..bgp.peer import Neighbor
from ..bgp.policy import FilterChain
from ..bgp.prefix import Prefix, format_ipv4, parse_ipv4
from ..bgp.rib import AdjRibIn, AdjRibOut, LocRib
from ..bgp.roa import RoaTable, TrieRoaTable
from ..core.abi import FILTER_ACCEPT, FILTER_REJECT
from ..core.context import ExecutionContext
from ..core.insertion_points import InsertionPoint
from ..core.manifest import Manifest
from ..core.vmm import VirtualMachineManager, VmmConfig
from ..igp.spf import IgpView
from ..telemetry import Profiler, ProvenanceTracker
from .attrs_intern import AttrPool, FrrAttrs
from .rib import FrrRoute
from .xbgp_glue import FrrHost, _AttrsBox

__all__ = ["FrrDaemon"]

#: Attribute codes PyFRR encodes natively; everything else needs a
#: BGP_ENCODE_MESSAGE extension (GeoLoc pattern).
NATIVE_ENCODABLE = frozenset(
    {
        AttrTypeCode.ORIGIN,
        AttrTypeCode.AS_PATH,
        AttrTypeCode.NEXT_HOP,
        AttrTypeCode.MULTI_EXIT_DISC,
        AttrTypeCode.LOCAL_PREF,
        AttrTypeCode.ATOMIC_AGGREGATE,
        AttrTypeCode.AGGREGATOR,
        AttrTypeCode.COMMUNITIES,
        AttrTypeCode.ORIGINATOR_ID,
        AttrTypeCode.CLUSTER_LIST,
    }
)


class FrrDaemon:
    """One PyFRR router instance."""

    implementation = "frr"

    def __init__(
        self,
        asn: int,
        router_id: str,
        local_address: Optional[str] = None,
        route_reflector: Optional[str] = None,
        cluster_id: Optional[str] = None,
        always_compare_med: bool = False,
        nexthop_self: bool = True,
        roa_table: Optional[RoaTable] = None,
        igp: Optional[IgpView] = None,
        xtra: Optional[Dict[str, bytes]] = None,
        vmm_config: Optional[VmmConfig] = None,
        hot_path: bool = True,
        provenance: bool = False,
        profiling: bool = False,
    ):
        if route_reflector not in (None, "native", "extension"):
            raise ValueError(f"bad route_reflector mode {route_reflector!r}")
        #: Enables daemon-level hot-path shortcuts (marshalling caches,
        #: export-side encode cache, empty-insertion-point skips).  Off
        #: only for the ablation benchmark's legacy arm.
        self.hot_path = hot_path
        self.asn = asn
        self.router_id = parse_ipv4(router_id)
        self.local_address = parse_ipv4(local_address or router_id)
        self.route_reflector = route_reflector
        self.cluster_id = parse_ipv4(cluster_id) if cluster_id else self.router_id
        self.always_compare_med = always_compare_med
        self.nexthop_self = nexthop_self
        #: FRR-style: validated ROAs in a browseable trie.
        self.roa_table = roa_table
        self.igp = igp
        self.xtra: Dict[str, bytes] = dict(xtra or {})

        self.attr_pool = AttrPool()
        self.neighbors: Dict[int, Neighbor] = {}
        self._send_fns: Dict[int, Callable[[bytes], None]] = {}
        self._established: Dict[int, bool] = {}
        self._rx_buffers: Dict[int, bytearray] = {}

        self.adj_rib_in: AdjRibIn[FrrRoute] = AdjRibIn()
        self.loc_rib: LocRib[FrrRoute] = LocRib()
        self.adj_rib_out: AdjRibOut[FrrRoute] = AdjRibOut()
        self._local_routes: Dict[Prefix, FrrRoute] = {}

        self.import_chain = FilterChain()
        self.export_chain = FilterChain()

        self.validity_counters: Counter = Counter()
        self.stats: Counter = Counter()
        self._log: List[str] = []
        #: Export-side encode cache: (interned FrrAttrs, session type,
        #: rr_client) -> encoded attribute blob.  See _encode_attributes.
        self._encode_cache: Dict[tuple, bytes] = {}
        #: Export-mechanics cache: (interned FrrAttrs, session type,
        #: source-is-eBGP, nexthop_self) -> rewritten interned FrrAttrs.
        #: See _apply_export_mechanics.
        self._mechanics_cache: Dict[tuple, "FrrAttrs"] = {}

        self.host = FrrHost(self)
        self.vmm = VirtualMachineManager(self.host, vmm_config)

        #: The provenance tracker, or None when provenance is off.
        self.provenance: Optional[ProvenanceTracker] = None
        if provenance:
            self.enable_provenance()
        #: The profiler, or None when profiling is off (the default).
        self.profiler: Optional[Profiler] = None
        if profiling:
            self.enable_profiling()

    # -- profiling --------------------------------------------------------

    def enable_profiling(self, profiler: Optional[Profiler] = None) -> Profiler:
        """Turn on hotspot + phase profiling.

        Wires a :class:`~repro.telemetry.profiler.Profiler` into the
        VMM (per-extension PC/block counters, helper timing, memory
        watermarks) and arms the pipeline's phase hooks.  Same gating
        discipline as :meth:`enable_provenance`: the VMM's fast-path
        closures are rebound away while profiling is on and restored by
        :meth:`disable_profiling`, so the off state stays free.
        """
        if profiler is None:
            profiler = Profiler(
                router=format_ipv4(self.router_id),
                implementation=self.implementation,
            )
        self.profiler = profiler
        self.vmm.enable_profiling(profiler)
        return profiler

    def disable_profiling(self) -> None:
        self.profiler = None
        self.vmm.disable_profiling()

    # -- provenance -------------------------------------------------------

    def enable_provenance(
        self, tracker: Optional[ProvenanceTracker] = None
    ) -> ProvenanceTracker:
        """Turn on per-route provenance and causal tracing.

        Installs the tracker on the host glue (VMM + helper hooks) and
        on the Loc-RIB (best-path observer), then rebinds the VMM's
        insertion-point chains: provenance disqualifies the single-code
        fast-path closures, so they must be rebuilt either way the
        toggle goes.
        """
        if tracker is None:
            tracker = ProvenanceTracker(
                router=format_ipv4(self.router_id),
                implementation=self.implementation,
            )
        self.provenance = tracker
        self.host.provenance = tracker
        self.loc_rib.on_change = tracker.rib_changed
        self.vmm.rebind_all()
        return tracker

    def disable_provenance(self) -> None:
        self.provenance = None
        self.host.provenance = None
        self.loc_rib.on_change = None
        self.vmm.rebind_all()

    # -- wiring ----------------------------------------------------------

    def add_neighbor(
        self,
        peer_address: str,
        peer_asn: int,
        send_fn: Callable[[bytes], None],
        rr_client: bool = False,
    ) -> Neighbor:
        neighbor = Neighbor.build(
            peer_address,
            peer_asn,
            local_address="0.0.0.0",
            local_asn=self.asn,
            rr_client=rr_client,
        )
        neighbor.local_address = self.local_address
        neighbor.local_router_id = self.router_id
        neighbor.cluster_id = self.cluster_id
        self.neighbors[neighbor.peer_address] = neighbor
        self._send_fns[neighbor.peer_address] = send_fn
        self._established[neighbor.peer_address] = False
        self._rx_buffers[neighbor.peer_address] = bytearray()
        return neighbor

    def session_up(self, peer_address: str) -> None:
        address = parse_ipv4(peer_address)
        neighbor = self.neighbors[address]
        neighbor.established = True
        self._established[address] = True
        for prefix in list(self.loc_rib.prefixes()):
            self._export_prefix(prefix, only_peers=[address])
        self._send_update(address, UpdateMessage.end_of_rib())

    def session_down(self, peer_address: str) -> None:
        address = parse_ipv4(peer_address)
        self._established[address] = False
        self.neighbors[address].established = False
        dropped = self.adj_rib_in.drop_peer(address)
        self.adj_rib_out.drop_peer(address)
        for route in dropped:
            self._run_decision(route.prefix)

    def attach_program(self, program) -> None:
        self.vmm.attach_program(program)

    def attach_manifest(self, manifest: Manifest) -> None:
        self.vmm.attach_program(manifest.load())

    def log(self, message: str) -> None:
        self._log.append(message)
        if len(self._log) > 10_000:
            del self._log[:5_000]

    @property
    def log_messages(self) -> List[str]:
        return list(self._log)

    @property
    def telemetry(self):
        """The VMM's telemetry facade (None when disabled)."""
        return self.vmm.telemetry

    def update_telemetry_gauges(self) -> None:
        """Refresh session and RIB-size gauges on the telemetry registry.

        Called before every export (harness snapshot, ``xbgp stats``) so
        scrapes see current control-plane state alongside the VMM's
        execution counters.
        """
        telemetry = self.vmm.telemetry
        if telemetry is None:
            return
        registry = telemetry.registry
        impl = self.implementation
        registry.gauge(
            "xbgp_sessions", "configured BGP sessions", implementation=impl
        ).set(len(self.neighbors))
        registry.gauge(
            "xbgp_sessions_established",
            "sessions in Established state",
            implementation=impl,
        ).set(sum(1 for up in self._established.values() if up))
        for rib_name, rib in (
            ("adj_rib_in", self.adj_rib_in),
            ("loc_rib", self.loc_rib),
            ("adj_rib_out", self.adj_rib_out),
        ):
            registry.gauge(
                "xbgp_rib_routes", "routes per RIB", implementation=impl, rib=rib_name
            ).set(len(rib))

    def igp_metric(self, address: int) -> int:
        if self.igp is None:
            return 0
        return self.igp.metric_to(address)

    # -- local origination ------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        next_hop: Optional[int] = None,
        attributes: Optional[Sequence[PathAttribute]] = None,
    ) -> None:
        if attributes is not None:
            attrs = FrrAttrs.from_wire(attributes)
        else:
            attrs = FrrAttrs(
                origin=int(Origin.IGP),
                as_path=(),
                next_hop=next_hop if next_hop else self.local_address,
            )
        prov = self.provenance
        if prov is not None:
            # Root a fresh trace here: everything this origination
            # triggers — local decision, exports, and the processing on
            # every router the advert reaches — hangs off this span.
            prov.begin_update(None, kind="originate", prefix=str(prefix))
        try:
            route = FrrRoute(prefix, None, self.attr_pool.intern(attrs))
            self._local_routes[prefix] = route
            self._run_decision(prefix)
        finally:
            if prov is not None:
                prov.end_update()

    def withdraw_local(self, prefix: Prefix) -> None:
        if self._local_routes.pop(prefix, None) is not None:
            self._run_decision(prefix)

    # -- receive path ---------------------------------------------------------

    def receive_raw(
        self, peer_address: str, data: bytes, parent=None
    ) -> None:
        """Feed raw TCP bytes from a peer (reassembles messages).

        ``parent`` is an optional (trace, span) ref the transport
        shipped with the bytes; the UPDATE span opened while processing
        them adopts it, extending the sender's causal trace here.
        """
        prov = self.provenance
        if prov is not None:
            prov.pending_parent = parent
        try:
            address = parse_ipv4(peer_address)
            buffer = self._rx_buffers[address]
            buffer.extend(data)
            for message in split_stream(buffer):
                self.receive_message(peer_address, message)
        finally:
            if prov is not None:
                prov.pending_parent = None

    def receive_message(self, peer_address: str, message: BgpMessage) -> None:
        address = parse_ipv4(peer_address)
        neighbor = self.neighbors.get(address)
        if neighbor is None:
            self.stats["unknown_peer"] += 1
            return
        self.stats["messages_received"] += 1
        if isinstance(message, UpdateMessage):
            self._process_update(neighbor, message)
        elif isinstance(message, RouteRefreshMessage):
            self._process_route_refresh(neighbor)

    def _process_update(self, neighbor: Neighbor, update: UpdateMessage) -> None:
        if update.is_end_of_rib():
            self.stats["eor_received"] += 1
            return

        prov = self.provenance
        if prov is not None:
            prov.begin_update(
                neighbor,
                prefixes=len(update.nlri),
                withdrawn=len(update.withdrawn),
            )
        try:
            self._process_update_body(neighbor, update)
        finally:
            if prov is not None:
                prov.end_update()

    def _process_update_body(self, neighbor: Neighbor, update: UpdateMessage) -> None:
        prov = self.provenance
        prof = self.profiler

        # FRR parses the whole attribute block into struct attr first.
        if prof is not None:
            started = perf_counter()
            box = _AttrsBox(
                self.attr_pool.intern(FrrAttrs.from_wire(update.attributes))
            )
            prof.phase("decode", perf_counter() - started)
        else:
            box = _AttrsBox(
                self.attr_pool.intern(FrrAttrs.from_wire(update.attributes))
            )

        # Insertion point 1: BGP_RECEIVE_MESSAGE.  With nothing attached
        # the chain reduces to the no-op default, so the hot path skips
        # context construction and re-encoding the update entirely.
        if not self.hot_path or self.vmm.active(InsertionPoint.BGP_RECEIVE_MESSAGE):
            started = perf_counter() if prof is not None else 0.0
            ctx = ExecutionContext(
                self.host,
                InsertionPoint.BGP_RECEIVE_MESSAGE,
                neighbor=neighbor,
                route=box,
                message=update.encode(),
            )
            self.vmm.run(ctx, lambda: 0)
            if prof is not None:
                prof.phase("bgp_receive_message", perf_counter() - started)

        dirty: List[Prefix] = []
        for prefix in update.withdrawn:
            if self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None:
                dirty.append(prefix)
                if prov is not None:
                    prov.record_withdraw(prefix, neighbor)

        for prefix in update.nlri:
            if prof is not None:
                started = perf_counter()
                imported = self._import_route(neighbor, prefix, box.attrs)
                prof.phase("bgp_inbound_filter", perf_counter() - started)
            else:
                imported = self._import_route(neighbor, prefix, box.attrs)
            if imported:
                dirty.append(prefix)

        for prefix in dirty:
            self._run_decision(prefix)

    def process_update_batch(
        self, neighbor: Neighbor, updates: Sequence[UpdateMessage]
    ) -> None:
        """Import a vector of UPDATEs from one peer, amortizing the
        per-message costs of the sequential path:

        - the attribute block is parsed + interned once per distinct
          raw attribute wire within the batch (a full-table feed repeats
          the same block across consecutive NLRI chunks);
        - the BGP_INBOUND_FILTER dispatch is bound once for the whole
          batch via :meth:`VirtualMachineManager.runner` instead of
          probed per route;
        - the decision process (and the export encodes behind it, which
          hit the encode cache in bulk) runs once per dirty prefix at
          batch end instead of once per update touching it.

        Final Adj-RIB-In/Loc-RIB/Adj-RIB-Out state is identical to
        feeding the same updates through :meth:`receive_message` one by
        one; only transient downstream traffic collapses (an announce
        superseded within the same batch is never advertised).
        """
        prov = self.provenance
        prof = self.profiler
        intern = self.attr_pool.intern
        from_wire = FrrAttrs.from_wire
        receive_hot = self.hot_path and not self.vmm.active(
            InsertionPoint.BGP_RECEIVE_MESSAGE
        )
        import_run = self.vmm.runner(InsertionPoint.BGP_INBOUND_FILTER)
        attr_memo: Dict[bytes, FrrAttrs] = {}
        dirty: Dict[Prefix, None] = {}  # ordered set
        if prov is not None:
            prov.begin_update(
                neighbor,
                kind="batch",
                prefixes=sum(len(u.nlri) for u in updates),
                withdrawn=sum(len(u.withdrawn) for u in updates),
            )
        try:
            for update in updates:
                self.stats["messages_received"] += 1
                if update.is_end_of_rib():
                    self.stats["eor_received"] += 1
                    continue

                started = perf_counter() if prof is not None else 0.0
                wire = update._attrs_wire
                if wire is not None:
                    attrs = attr_memo.get(wire)
                    if attrs is None:
                        attrs = intern(from_wire(update.attributes))
                        attr_memo[wire] = attrs
                else:
                    attrs = intern(from_wire(update.attributes))
                box = _AttrsBox(attrs)
                if prof is not None:
                    prof.phase("decode", perf_counter() - started)

                if not receive_hot:
                    started = perf_counter() if prof is not None else 0.0
                    ctx = ExecutionContext(
                        self.host,
                        InsertionPoint.BGP_RECEIVE_MESSAGE,
                        neighbor=neighbor,
                        route=box,
                        message=update.encode(),
                    )
                    self.vmm.run(ctx, lambda: 0)
                    if prof is not None:
                        prof.phase("bgp_receive_message", perf_counter() - started)

                for prefix in update.withdrawn:
                    if self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None:
                        dirty[prefix] = None
                        if prov is not None:
                            prov.record_withdraw(prefix, neighbor)

                for prefix in update.nlri:
                    started = perf_counter() if prof is not None else 0.0
                    imported = self._import_route(
                        neighbor, prefix, box.attrs, run=import_run
                    )
                    if prof is not None:
                        prof.phase("bgp_inbound_filter", perf_counter() - started)
                    if imported:
                        dirty[prefix] = None

            # Bulk export: decisions during a batch defer their sends
            # into per-peer buffers, flushed as coalesced multi-NLRI
            # UPDATEs (same attribute blob -> one message).
            self._bulk_adv = {}
            self._bulk_wd = {}
            try:
                for prefix in dirty:
                    self._run_decision(prefix)
            finally:
                self._flush_bulk_export()
        finally:
            if prov is not None:
                prov.end_update()

    def _import_route(
        self, neighbor: Neighbor, prefix: Prefix, attrs: FrrAttrs, run=None
    ) -> bool:
        prov = self.provenance
        if prov is not None:
            prov.begin_route(prefix, neighbor)
        route = FrrRoute(prefix, neighbor, attrs)

        if neighbor.is_ebgp() and route.path_contains(self.asn):
            self.stats["loop_rejected"] += 1
            if prov is not None:
                prov.record_filter(prefix, "loop_rejected")
            return self._treat_as_withdraw(neighbor, prefix)

        # Insertion point 2: BGP_INBOUND_FILTER.
        ctx = ExecutionContext(
            self.host,
            InsertionPoint.BGP_INBOUND_FILTER,
            neighbor=neighbor,
            route=route,
            prefix=prefix,
        )
        if run is None:
            run = self.vmm.run
        verdict = run(ctx, lambda: self._native_import(ctx))
        route = ctx.route

        if verdict == FILTER_REJECT:
            self.stats["import_rejected"] += 1
            if prov is not None:
                prov.record_filter(prefix, "import_rejected")
            return self._treat_as_withdraw(neighbor, prefix)

        # Native origin validation, FRR style: browse the ROA trie on
        # every check.  Validity recorded, never used to discard.
        if self.roa_table is not None and neighbor.is_ebgp():
            validity = self._validate_browsing_trie(prefix, route.origin_asn())
            route.validity = validity
            self.validity_counters[RouteOriginValidity(validity).name] += 1

        self.adj_rib_in.update(neighbor.peer_address, route)
        return True

    def _validate_browsing_trie(self, prefix: Prefix, origin_asn: int) -> RouteOriginValidity:
        """FRRouting's historical pattern: walk the validated-ROA trie
        collecting every covering record, then test each (no early
        exit, no hashing) — the code path §3.4's extension beat."""
        table = self.roa_table
        if not isinstance(table, TrieRoaTable):
            return table.validate(prefix, origin_asn)
        covering = table.covering(prefix)  # full browse, allocates
        if not covering:
            return RouteOriginValidity.NOT_FOUND
        valid = False
        for roa in covering:
            if roa.authorizes(prefix, origin_asn):
                valid = True  # keep browsing: FRR checks all records
        return RouteOriginValidity.VALID if valid else RouteOriginValidity.INVALID

    def _native_import(self, ctx: ExecutionContext) -> int:
        route: FrrRoute = ctx.route
        neighbor = ctx.neighbor

        if self.route_reflector == "native" and neighbor.is_ibgp():
            if route.attrs.originator_id == self.router_id:
                return FILTER_REJECT
            if route.attrs.cluster_list and self.cluster_id in route.attrs.cluster_list:
                return FILTER_REJECT

        filtered = self.import_chain.evaluate(route, neighbor)
        if filtered is None:
            return FILTER_REJECT
        ctx.route = filtered
        return FILTER_ACCEPT

    def _treat_as_withdraw(self, neighbor: Neighbor, prefix: Prefix) -> bool:
        return self.adj_rib_in.withdraw(neighbor.peer_address, prefix) is not None

    def _process_route_refresh(self, neighbor: Neighbor) -> None:
        """RFC 2918: resend our full Adj-RIB-Out for this peer."""
        self.stats["route_refresh_received"] += 1
        for prefix in list(self.loc_rib.prefixes()):
            self._export_prefix(prefix, only_peers=[neighbor.peer_address])
        self._send_update(neighbor.peer_address, UpdateMessage.end_of_rib())

    # -- decision process --------------------------------------------------------

    def _decision_config(self) -> DecisionConfig:
        metric = self.igp.metric_to if self.igp is not None else None
        return DecisionConfig(
            always_compare_med=self.always_compare_med, igp_metric=metric
        )

    def _select_best(self, candidates: List[FrrRoute]) -> Optional[FrrRoute]:
        if not candidates:
            return None
        config = self._decision_config()
        prov = self.provenance
        if self.vmm.attached_codes(InsertionPoint.BGP_DECISION):
            best = candidates[0]
            for candidate in candidates[1:]:
                ctx = ExecutionContext(
                    self.host,
                    InsertionPoint.BGP_DECISION,
                    route=candidate,
                    best_route=best,
                    prefix=candidate.prefix,
                )
                if prov is None:
                    native = (
                        lambda c=candidate, b=best: 1
                        if compare_routes(c, b, config) < 0
                        else 2
                    )
                    if self.vmm.run(ctx, native) == 1:
                        best = candidate
                    continue
                # When explaining, the native default notes which RFC
                # 4271 ladder step decided — absent that note, the
                # verdict came from the extension chain.
                step_note: Dict[str, str] = {}
                def native(c=candidate, b=best, note=step_note):
                    verdict, step = compare_routes_explain(c, b, config)
                    note["step"] = step
                    return 1 if verdict < 0 else 2
                picked_new = self.vmm.run(ctx, native) == 1
                winner, loser = (
                    (candidate, best) if picked_new else (best, candidate)
                )
                prov.record_elimination(
                    candidate.prefix,
                    step_note.get("step", "extension"),
                    loser,
                    winner,
                    by="native" if "step" in step_note else "extension",
                )
                if picked_new:
                    best = candidate
            return best
        if prov is not None:
            if len(candidates) == 1:
                prov.record_elimination(
                    candidates[0].prefix, "only_candidate", None, candidates[0]
                )
                return candidates[0]
            prefix = candidates[0].prefix
            return best_route_explained(
                candidates,
                config,
                on_step=lambda step, eliminated, kept: prov.record_elimination(
                    prefix, step, eliminated, kept
                ),
            )
        return best_route(candidates, config)

    def _run_decision(self, prefix: Prefix) -> None:
        candidates = self.adj_rib_in.candidates(prefix)
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        prov = self.provenance
        prof = self.profiler
        phase = prov.begin_phase("decision", prefix) if prov is not None else None
        if prof is not None:
            started = perf_counter()
            best = self._select_best(candidates)
            prof.phase("bgp_decision", perf_counter() - started)
        else:
            best = self._select_best(candidates)
        previous = self.loc_rib.lookup(prefix)
        if best is previous:
            if phase is not None:
                prov.end_phase(phase, changed=False)
            return
        if best is None:
            self.loc_rib.remove(prefix)
        else:
            self.loc_rib.install(best)
        if phase is not None:
            prov.end_phase(phase, changed=True)
        self._export_prefix(prefix)

    # -- export path ----------------------------------------------------------------

    def _export_prefix(self, prefix: Prefix, only_peers: Optional[List[int]] = None) -> None:
        prov = self.provenance
        phase = prov.begin_phase("export", prefix) if prov is not None else None
        best = self.loc_rib.lookup(prefix)
        peers = only_peers if only_peers is not None else list(self.neighbors)
        for address in peers:
            if not self._established.get(address):
                continue
            neighbor = self.neighbors[address]
            if best is None:
                self._withdraw_from(neighbor, prefix)
                continue
            if best.source is not None and best.source.peer_address == address:
                self._withdraw_from(neighbor, prefix)
                continue
            prof = self.profiler
            if prof is not None:
                started = perf_counter()
                export_route = self._export_filter(best, neighbor)
                prof.phase("bgp_outbound_filter", perf_counter() - started)
            else:
                export_route = self._export_filter(best, neighbor)
            if export_route is None:
                if prov is not None:
                    prov.record_export(prefix, address, "suppress")
                self._withdraw_from(neighbor, prefix)
                continue
            export_route = self._apply_export_mechanics(export_route, neighbor)
            self.adj_rib_out.advertise(address, export_route)
            self._send_route(neighbor, export_route)
            if prov is not None:
                prov.record_export(prefix, address, "advertise")
        if phase is not None:
            prov.end_phase(phase)

    def _export_filter(self, route: FrrRoute, neighbor: Neighbor) -> Optional[FrrRoute]:
        ctx = ExecutionContext(
            self.host,
            InsertionPoint.BGP_OUTBOUND_FILTER,
            neighbor=neighbor,
            route=route,
            prefix=route.prefix,
        )
        verdict = self.vmm.run(ctx, lambda: self._native_export(ctx))
        if verdict == FILTER_REJECT:
            self.stats["export_rejected"] += 1
            return None
        return ctx.route

    def _native_export(self, ctx: ExecutionContext) -> int:
        route: FrrRoute = ctx.route
        neighbor = ctx.neighbor
        source = route.source

        if source is not None and source.is_ibgp() and neighbor.is_ibgp():
            if self.route_reflector == "native":
                if not (source.rr_client or neighbor.rr_client):
                    return FILTER_REJECT
                reflected = self._stamp_reflection(route)
                ctx.route = reflected
                route = reflected
            elif self.route_reflector == "extension":
                pass  # relaxed split horizon; extension code decides
            else:
                return FILTER_REJECT

        if route.attrs.communities is not None:
            if WellKnownCommunity.NO_ADVERTISE in route.attrs.communities:
                return FILTER_REJECT
            if (
                WellKnownCommunity.NO_EXPORT in route.attrs.communities
                and neighbor.is_ebgp()
            ):
                return FILTER_REJECT

        filtered = self.export_chain.evaluate(route, neighbor)
        if filtered is None:
            return FILTER_REJECT
        ctx.route = filtered
        return FILTER_ACCEPT

    def _stamp_reflection(self, route: FrrRoute) -> FrrRoute:
        attrs = route.attrs
        changes: Dict[str, object] = {}
        if attrs.originator_id is None:
            originator = (
                route.source.peer_router_id if route.source else self.router_id
            )
            changes["originator_id"] = originator
        changes["cluster_list"] = (self.cluster_id,) + (attrs.cluster_list or ())
        return route.with_frr_attrs(self.attr_pool.intern(attrs.replaced(**changes)))

    def _apply_export_mechanics(self, route: FrrRoute, neighbor: Neighbor) -> FrrRoute:
        # The rewrite is a pure function of (attribute set, session type,
        # whether the source is eBGP, nexthop_self): heavy attribute
        # sharing means the same rewrite repeats across thousands of
        # routes, so the hot path memoises the rewritten *interned*
        # FrrAttrs (immutable, safe to share) and skips the replaced()/
        # intern() round trip per route.
        attrs = route.attrs
        source_ebgp = route.source is not None and route.source.is_ebgp()
        if self.hot_path:
            key = (attrs, int(neighbor.session_type), source_ebgp, self.nexthop_self)
            cache = self._mechanics_cache
            rewritten = cache.get(key)
            if rewritten is None:
                rewritten = self._export_mechanics_attrs(attrs, neighbor, source_ebgp)
                if len(cache) >= 65536:  # fits a full-table shard's distinct sets
                    cache.clear()
                cache[key] = rewritten
        else:
            rewritten = self._export_mechanics_attrs(attrs, neighbor, source_ebgp)
        if rewritten is attrs:
            return route
        return route.with_frr_attrs(rewritten)

    def _export_mechanics_attrs(
        self, attrs: "FrrAttrs", neighbor: Neighbor, source_ebgp: bool
    ) -> "FrrAttrs":
        changes: Dict[str, object] = {}
        if neighbor.is_ebgp():
            path = attrs.as_path
            if path and path[0][0] == 2:  # AS_SEQUENCE
                head = (path[0][0], (self.asn,) + path[0][1])
                changes["as_path"] = (head,) + path[1:]
            else:
                changes["as_path"] = ((2, (self.asn,)),) + path
            changes["next_hop"] = self.local_address
            changes["local_pref"] = None
            changes["med"] = None
        else:
            if attrs.local_pref is None:
                changes["local_pref"] = 100
            if self.nexthop_self and source_ebgp:
                changes["next_hop"] = self.local_address
        if not changes:
            return attrs
        return self.attr_pool.intern(attrs.replaced(**changes))

    # -- encoding --------------------------------------------------------------------

    def _encode_attributes(self, route: FrrRoute, neighbor: Neighbor) -> bytes:
        # Re-advertising the same attribute set to N peers of the same
        # export class encodes once: FrrAttrs are interned and immutable,
        # so (attrs, session type, rr_client) fully determines the blob.
        # Constraint: BGP_ENCODE_MESSAGE extensions must be deterministic
        # in (attribute set, peer class) — true for the shipped GeoLoc
        # encoder, and for anything derived only from route attributes
        # and peer info.  Keying by the FrrAttrs object itself (not its
        # id) keeps the entry alive and makes the probe identity-fast.
        cache = None
        if self.hot_path:
            key = (route.attrs, int(neighbor.session_type), neighbor.rr_client)
            cache = self._encode_cache
            blob = cache.get(key)
            if blob is not None:
                return blob

        # Host -> wire conversion from the parsed struct, known codes only.
        native = b"".join(
            attribute.encode()
            for attribute in route.attrs.to_wire()
            if attribute.type_code in NATIVE_ENCODABLE
        )
        if not self.hot_path or self.vmm.active(InsertionPoint.BGP_ENCODE_MESSAGE):
            out_buffer = bytearray()
            ctx = ExecutionContext(
                self.host,
                InsertionPoint.BGP_ENCODE_MESSAGE,
                neighbor=neighbor,
                route=route,
                prefix=route.prefix,
                out_buffer=out_buffer,
            )
            self.vmm.run(ctx, lambda: 0)
            blob = native + bytes(out_buffer)
        else:
            blob = native
        if cache is not None:
            if len(cache) >= 65536:  # fits a full-table shard's distinct sets
                cache.clear()
            cache[key] = blob
        return blob

    #: Batch-scoped bulk-export buffers; non-None only while a
    #: process_update_batch decision sweep runs.
    _bulk_adv: Optional[Dict[int, Dict[bytes, List[Prefix]]]] = None
    _bulk_wd: Optional[Dict[int, List[Prefix]]] = None

    def _send_route(self, neighbor: Neighbor, route: FrrRoute) -> None:
        prof = self.profiler
        if prof is not None:
            started = perf_counter()
            attrs_blob = self._encode_attributes(route, neighbor)
            prof.phase("bgp_encode_message", perf_counter() - started)
        else:
            attrs_blob = self._encode_attributes(route, neighbor)
        bulk = self._bulk_adv
        if bulk is not None:
            groups = bulk.setdefault(neighbor.peer_address, {})
            groups.setdefault(attrs_blob, []).append(route.prefix)
            return
        body = (
            struct.pack("!H", 0)
            + struct.pack("!H", len(attrs_blob))
            + attrs_blob
            + route.prefix.encode()
        )
        self._send_raw(neighbor.peer_address, encode_header(MessageType.UPDATE, body))
        self.stats["updates_sent"] += 1

    def _withdraw_from(self, neighbor: Neighbor, prefix: Prefix) -> None:
        if self.adj_rib_out.withdraw(neighbor.peer_address, prefix) is None:
            return
        if self.provenance is not None:
            self.provenance.record_export(prefix, neighbor.peer_address, "withdraw")
        bulk = self._bulk_wd
        if bulk is not None:
            bulk.setdefault(neighbor.peer_address, []).append(prefix)
            return
        self._send_update(neighbor.peer_address, UpdateMessage(withdrawn=[prefix]))

    def _flush_bulk_export(self) -> None:
        """Emit the sends deferred by a batch decision sweep.

        Advertisements sharing one encoded attribute blob coalesce into
        multi-NLRI UPDATEs, chunked to the 4096-byte wire ceiling;
        withdrawals coalesce likewise.  Per-prefix content is exactly
        what the sequential path would have sent — only the message
        framing differs.
        """
        adv, wd = self._bulk_adv, self._bulk_wd
        self._bulk_adv = None
        self._bulk_wd = None
        for peer_address, prefixes in (wd or {}).items():
            for start in range(0, len(prefixes), 512):
                self._send_update(
                    peer_address,
                    UpdateMessage(withdrawn=prefixes[start : start + 512]),
                )
        for peer_address, groups in (adv or {}).items():
            for blob, prefixes in groups.items():
                head = struct.pack("!HH", 0, len(blob)) + blob
                room = max(1, (4096 - 19 - len(head)) // 5)
                for start in range(0, len(prefixes), room):
                    nlri = b"".join(
                        prefix.encode() for prefix in prefixes[start : start + room]
                    )
                    self._send_raw(
                        peer_address, encode_header(MessageType.UPDATE, head + nlri)
                    )
                    self.stats["updates_sent"] += 1

    def _send_update(self, peer_address: int, update: UpdateMessage) -> None:
        self._send_raw(peer_address, update.encode())
        self.stats["updates_sent"] += 1

    def _send_raw(self, peer_address: int, data: bytes) -> None:
        send_fn = self._send_fns.get(peer_address)
        if send_fn is not None:
            send_fn(data)

    # -- introspection ------------------------------------------------------------------

    def loc_rib_snapshot(self) -> Dict[Prefix, List[PathAttribute]]:
        return {
            route.prefix: sorted(route.attribute_list(), key=lambda a: a.type_code)
            for route in self.loc_rib.routes()
        }
