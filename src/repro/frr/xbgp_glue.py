"""PyFRR's xBGP glue: the thick one.

FRR-style internals store attributes parsed into host byte order, so
every helper call crossing the API converts between that form and the
neutral network-byte-order representation (``FrrAttrs.attr_to_wire`` /
``FrrAttrs.with_attr_wire``).  This file plus those conversion paths is
why the paper counted 589 added lines for FRRouting against 400 for
BIRD — and why ``add_attr`` needed host surgery: stock FRR had nowhere
to put attributes no standard defines (here: ``FrrAttrs.extra``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bgp.attributes import PathAttribute
from ..bgp.prefix import Prefix
from ..core.abi import pack_attr
from ..core.context import ExecutionContext
from ..core.host_interface import HostImplementation
from ..igp.spf import UNREACHABLE
from .attrs_intern import FrrAttrs
from .rib import FrrRoute

__all__ = ["FrrHost"]

_MISSING = object()


class _AttrsBox:
    """Mutable holder for the UPDATE-wide attribute set at the
    BGP_RECEIVE_MESSAGE point (FRR parses first, filters later)."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: FrrAttrs):
        self.attrs = attrs


class FrrHost(HostImplementation):
    """Glue between libxbgp helpers and PyFRR internals."""

    name = "frr"

    def __init__(self, daemon):
        self.daemon = daemon
        self.hot_path = getattr(daemon, "hot_path", True)

    # -- container plumbing ------------------------------------------------

    def _attrs_of(self, ctx: ExecutionContext) -> Optional[FrrAttrs]:
        container = ctx.route
        if isinstance(container, _AttrsBox):
            return container.attrs
        if isinstance(container, FrrRoute):
            return container.attrs
        return None

    def _replace_attrs(self, ctx: ExecutionContext, attrs: FrrAttrs) -> None:
        self._install_attrs(ctx, self.daemon.attr_pool.intern(attrs))

    def _install_attrs(self, ctx: ExecutionContext, interned: FrrAttrs) -> None:
        container = ctx.route
        if isinstance(container, _AttrsBox):
            container.attrs = interned
        elif isinstance(container, FrrRoute):
            ctx.route = container.with_frr_attrs(interned)

    # -- HostImplementation --------------------------------------------------

    def get_attr(self, ctx: ExecutionContext, code: int) -> Optional[PathAttribute]:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return None
        # Host -> neutral conversion on every call.
        return attrs.attr_to_wire(code)

    def get_attr_packed(self, ctx: ExecutionContext, code: int) -> Optional[bytes]:
        if not self.hot_path:
            return HostImplementation.get_attr_packed(self, ctx, code)
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return None
        # FrrAttrs are immutable and interned, so the helper struct for
        # a given code is computed once per attribute set, not once per
        # route sharing it.
        cache = attrs._packed_cache
        packed = cache.get(code, _MISSING)
        if packed is _MISSING:
            attribute = attrs.attr_to_wire(code)
            packed = (
                None
                if attribute is None
                else pack_attr(attribute.type_code, attribute.flags, attribute.value)
            )
            cache[code] = packed
        return packed

    def set_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return False
        if self.hot_path:
            # Same write applied to the same (interned) set: reuse the
            # interned result, skipping the wire parse and rebuild.
            key = (code, flags, value)
            interned = attrs._write_cache.get(key)
            if interned is None:
                try:
                    interned = self.daemon.attr_pool.intern(
                        attrs.with_attr_wire(code, flags, value)
                    )
                except (ValueError, IndexError):
                    return False
                attrs._write_cache[key] = interned
            self._install_attrs(ctx, interned)
            return True
        try:
            # Neutral -> host conversion (parse into struct attr form).
            self._replace_attrs(ctx, attrs.with_attr_wire(code, flags, value))
        except (ValueError, IndexError):
            return False
        return True

    def add_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None or attrs.has_attr(code):
            return False
        return self.set_attr(ctx, code, flags, value)

    def remove_attr(self, ctx: ExecutionContext, code: int) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return False
        updated, removed = attrs.without_attr(code)
        if removed:
            self._replace_attrs(ctx, updated)
        return removed

    def get_nexthop(self, ctx: ExecutionContext) -> Tuple[int, int, bool]:
        attrs = self._attrs_of(ctx)
        address = attrs.next_hop if attrs is not None and attrs.next_hop else 0
        if not address:
            return 0, UNREACHABLE, False
        metric = self.daemon.igp_metric(address)
        return address, metric, metric != UNREACHABLE

    def get_xtra(self, ctx: ExecutionContext, key: str) -> Optional[bytes]:
        return self.daemon.xtra.get(key)

    def rib_announce(self, ctx: ExecutionContext, prefix: Prefix, next_hop: int) -> bool:
        self.daemon.originate(prefix, next_hop=next_hop or None)
        return True

    def encode_route_attributes(self, ctx: ExecutionContext, route) -> bytes:
        from ..bgp.attributes import encode_attributes

        return encode_attributes(route.attribute_list())

    def log(self, message: str) -> None:
        self.daemon.log(message)
