"""PyFRR's xBGP glue: the thick one.

FRR-style internals store attributes parsed into host byte order, so
every helper call crossing the API converts between that form and the
neutral network-byte-order representation (``FrrAttrs.attr_to_wire`` /
``FrrAttrs.with_attr_wire``).  This file plus those conversion paths is
why the paper counted 589 added lines for FRRouting against 400 for
BIRD — and why ``add_attr`` needed host surgery: stock FRR had nowhere
to put attributes no standard defines (here: ``FrrAttrs.extra``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bgp.attributes import PathAttribute
from ..bgp.prefix import Prefix
from ..core.context import ExecutionContext
from ..core.host_interface import HostImplementation
from ..igp.spf import UNREACHABLE
from .attrs_intern import FrrAttrs
from .rib import FrrRoute

__all__ = ["FrrHost"]


class _AttrsBox:
    """Mutable holder for the UPDATE-wide attribute set at the
    BGP_RECEIVE_MESSAGE point (FRR parses first, filters later)."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: FrrAttrs):
        self.attrs = attrs


class FrrHost(HostImplementation):
    """Glue between libxbgp helpers and PyFRR internals."""

    name = "frr"

    def __init__(self, daemon):
        self.daemon = daemon

    # -- container plumbing ------------------------------------------------

    def _attrs_of(self, ctx: ExecutionContext) -> Optional[FrrAttrs]:
        container = ctx.route
        if isinstance(container, _AttrsBox):
            return container.attrs
        if isinstance(container, FrrRoute):
            return container.attrs
        return None

    def _replace_attrs(self, ctx: ExecutionContext, attrs: FrrAttrs) -> None:
        interned = self.daemon.attr_pool.intern(attrs)
        container = ctx.route
        if isinstance(container, _AttrsBox):
            container.attrs = interned
        elif isinstance(container, FrrRoute):
            ctx.route = container.with_frr_attrs(interned)

    # -- HostImplementation --------------------------------------------------

    def get_attr(self, ctx: ExecutionContext, code: int) -> Optional[PathAttribute]:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return None
        # Host -> neutral conversion on every call.
        return attrs.attr_to_wire(code)

    def set_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return False
        try:
            # Neutral -> host conversion (parse into struct attr form).
            self._replace_attrs(ctx, attrs.with_attr_wire(code, flags, value))
        except (ValueError, IndexError):
            return False
        return True

    def add_attr(self, ctx: ExecutionContext, code: int, flags: int, value: bytes) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None or attrs.has_attr(code):
            return False
        return self.set_attr(ctx, code, flags, value)

    def remove_attr(self, ctx: ExecutionContext, code: int) -> bool:
        attrs = self._attrs_of(ctx)
        if attrs is None:
            return False
        updated, removed = attrs.without_attr(code)
        if removed:
            self._replace_attrs(ctx, updated)
        return removed

    def get_nexthop(self, ctx: ExecutionContext) -> Tuple[int, int, bool]:
        attrs = self._attrs_of(ctx)
        address = attrs.next_hop if attrs is not None and attrs.next_hop else 0
        if not address:
            return 0, UNREACHABLE, False
        metric = self.daemon.igp_metric(address)
        return address, metric, metric != UNREACHABLE

    def get_xtra(self, ctx: ExecutionContext, key: str) -> Optional[bytes]:
        return self.daemon.xtra.get(key)

    def rib_announce(self, ctx: ExecutionContext, prefix: Prefix, next_hop: int) -> bool:
        self.daemon.originate(prefix, next_hop=next_hop or None)
        return True

    def encode_route_attributes(self, ctx: ExecutionContext, route) -> bytes:
        from ..bgp.attributes import encode_attributes

        return encode_attributes(route.attribute_list())

    def log(self, message: str) -> None:
        self.daemon.log(message)
