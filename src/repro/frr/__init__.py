"""PyFRR: the FRRouting-flavoured host implementation.

FRR-like internals: host-byte-order parsed attribute structs interned
through an attrhash pool, a browseable ROA trie, no native dynamic
attribute API.  Thick xBGP glue with per-call representation
conversion.
"""

from .attrs_intern import AttrPool, FrrAttrs
from .daemon import FrrDaemon
from .rib import FrrRoute
from .xbgp_glue import FrrHost

__all__ = ["AttrPool", "FrrAttrs", "FrrDaemon", "FrrRoute", "FrrHost"]
