"""PyFRR route objects: direct views over parsed attribute sets."""

from __future__ import annotations

from typing import List, Optional

from ..bgp.aspath import AsPath, AsPathSegment
from ..bgp.attributes import PathAttribute
from ..bgp.constants import AsPathSegmentType, AttrTypeCode, Origin, RouteOriginValidity
from ..bgp.peer import Neighbor
from ..bgp.prefix import Prefix
from ..bgp.rib import RouteView
from .attrs_intern import FrrAttrs

__all__ = ["FrrRoute"]


class FrrRoute(RouteView):
    """One route: prefix + source + interned parsed attribute set.

    Unlike :class:`repro.bird.rib.BirdRoute`, decision accessors read
    the parsed host-order fields directly — no byte parsing, no caching
    needed.  That asymmetry is the point: the two hosts really do store
    routes differently, and the same xBGP bytecode works on both.
    """

    __slots__ = ("prefix", "source", "attrs", "validity")

    def __init__(self, prefix: Prefix, source: Optional[Neighbor], attrs: FrrAttrs):
        self.prefix = prefix
        self.source = source
        self.attrs = attrs
        self.validity: Optional[RouteOriginValidity] = None

    # -- RouteView contract ---------------------------------------------

    def attribute(self, type_code: int) -> Optional[PathAttribute]:
        return self.attrs.attr_to_wire(type_code)

    def attribute_list(self) -> List[PathAttribute]:
        return self.attrs.to_wire()

    def with_attributes(self, attributes: List[PathAttribute]) -> "FrrRoute":
        return self.with_frr_attrs(FrrAttrs.from_wire(attributes))

    def with_frr_attrs(self, attrs: FrrAttrs) -> "FrrRoute":
        clone = FrrRoute(self.prefix, self.source, attrs)
        clone.validity = self.validity
        return clone

    # -- fast decision accessors (parsed fields, host order) ----------------

    def local_pref(self) -> int:
        value = self.attrs.local_pref
        return value if value is not None else 100

    def as_path(self) -> AsPath:
        return AsPath(
            AsPathSegment(AsPathSegmentType(kind), asns)
            for kind, asns in self.attrs.as_path
        )

    def as_path_length(self) -> int:
        length = 0
        for kind, asns in self.attrs.as_path:
            if kind in (AsPathSegmentType.AS_SET, AsPathSegmentType.AS_CONFED_SET):
                length += 1
            else:
                length += len(asns)
        return length

    def origin(self) -> int:
        value = self.attrs.origin
        return value if value is not None else Origin.INCOMPLETE

    def med(self) -> int:
        value = self.attrs.med
        return value if value is not None else 0

    def next_hop(self) -> int:
        value = self.attrs.next_hop
        return value if value is not None else 0

    def originator_or_router_id(self) -> int:
        if self.attrs.originator_id is not None:
            return self.attrs.originator_id
        return self.source.peer_router_id if self.source is not None else 0

    def cluster_list_length(self) -> int:
        return len(self.attrs.cluster_list or ())

    def origin_asn(self) -> int:
        path = self.attrs.as_path
        if not path:
            return 0
        kind, asns = path[-1]
        if kind != AsPathSegmentType.AS_SEQUENCE or not asns:
            return 0
        return asns[-1]

    def path_contains(self, asn: int) -> bool:
        return any(asn in asns for _, asns in self.attrs.as_path)

    def story_key(self):
        # FrrAttrs is interned and hashable; no need to re-serialize
        # the attribute set the way the generic RouteView key does.
        return (self.peer_address(), self.attrs)

    def __repr__(self) -> str:
        return f"FrrRoute({self.prefix}, from={self.source!r})"
