"""Ablation — workload shape knobs.

How the harness numbers respond to update packing density (NLRI per
UPDATE) and table size: sanity that the Fig. 4 relative measurements
are not artifacts of one packing choice.
"""

import pytest

from repro.sim.harness import ConvergenceHarness
from repro.workload import RibGenerator, build_updates


@pytest.mark.parametrize("density", [1, 8, 64])
def test_packing_density(benchmark, density, fig4_routes):
    routes = fig4_routes[:1200]

    def run():
        harness = ConvergenceHarness(
            "bird", "plain", "native", routes, max_prefixes_per_update=density
        )
        return harness.run()

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


def test_packing_reduces_message_count(benchmark, fig4_routes):
    routes = fig4_routes[:1200]
    sparse = build_updates(routes, next_hop=1, max_prefixes_per_update=1)
    dense = build_updates(routes, next_hop=1, max_prefixes_per_update=64)
    benchmark.pedantic(
        lambda: build_updates(routes, next_hop=1, max_prefixes_per_update=64),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    print(f"\nupdates: density=1 -> {len(sparse)}, density=64 -> {len(dense)}")
    assert len(dense) < len(sparse)


@pytest.mark.parametrize("size", [500, 2000])
def test_table_size_scaling(benchmark, size):
    routes = RibGenerator(n_routes=size, seed=99).generate()

    def run():
        return ConvergenceHarness("frr", "plain", "native", routes).run()

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
