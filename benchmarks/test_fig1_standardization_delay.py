"""Fig. 1 — CDF of the standardization delay of the last 40 BGP RFCs.

Regenerates the figure from the embedded dataset and checks the
paper's reading: median ≈ 3.5 years, tail approaching ten years.
"""

from repro.eval import fig1


def test_fig1_cdf(benchmark):
    points = benchmark(fig1.cdf_points)
    assert len(points) == 40
    stats = fig1.summary()

    print()
    print(fig1.render_table())

    # Paper: "the median delay before RFC publication is 3.5 years".
    assert 3.0 <= stats["median_years"] <= 4.2
    # Paper: "some features required up to ten years".
    assert stats["max_years"] >= 8.0
    # CDF sanity: monotone, complete.
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions) and fractions[-1] == 1.0
