"""Ablation — the §3.4 mechanism in isolation: trie browse vs hash probe.

The paper attributes the extension's win over native FRRouting to the
data structure: FRR browses a validated-ROA trie on every check, the
extension (like BIRD) probes a hash table.  This benchmark measures
exactly the per-check cost of the two stores on the same workload,
which is the crossover mechanism without the end-to-end dilution.
"""

import pytest

from repro.eval import ablation

CHECKS, ROAS = ablation.make_validation_workload(n=2000, valid_fraction=0.75, seed=7)


def test_trie_browse(benchmark):
    run = ablation.trie_check_fn(CHECKS, ROAS)
    benchmark(run)


def test_hash_probe(benchmark):
    run = ablation.hash_check_fn(CHECKS, ROAS)
    benchmark(run)


def test_hash_beats_trie(benchmark):
    """The mechanism claim: hash probing is faster than trie browsing."""
    import statistics
    import timeit

    trie = ablation.trie_check_fn(CHECKS, ROAS)
    hashed = ablation.hash_check_fn(CHECKS, ROAS)
    assert trie() == hashed()  # identical outcomes first

    trie_time = statistics.median(timeit.repeat(trie, number=5, repeat=5))
    hash_time = statistics.median(timeit.repeat(hashed, number=5, repeat=5))
    benchmark.pedantic(hashed, rounds=3, iterations=1, warmup_rounds=0)
    ratio = trie_time / hash_time
    print(f"\nper-check ratio trie/hash = {ratio:.2f}x over {len(CHECKS)} checks")
    assert ratio > 1.3, "trie browse should cost well over the hash probe"
