"""Fig. 4 (blue boxes) — route reflection: extension vs native.

Reproduces §3.2: the Fig. 3 testbed feeds a full synthetic table
through a route-reflector DUT; the measurement is the delay between
the first announced and last received prefix, native RFC 4456 vs the
two-bytecode xBGP program, over N interleaved runs.

Shape targets (EXPERIMENTS.md records the measured values):

* extension code is *slower* than native on both hosts (the paper's
  "within 20%" claim is carried by the ``pyext`` arm, which models
  compiled-eBPF execution; the ``jit`` arm additionally pays the
  Python-substrate bytecode-interpretation tax);
* the overhead is a bounded constant factor, not a blowup.
"""

import statistics

import pytest

from repro.eval import fig4
from repro.sim.harness import ConvergenceHarness


@pytest.mark.parametrize("implementation", ["frr", "bird"])
@pytest.mark.parametrize("engine", ["pyext", "jit"])
def test_fig4_route_reflection(benchmark, implementation, engine, fig4_routes, fig4_params):
    result = fig4.run_cell(
        implementation,
        "route_reflection",
        fig4_routes,
        roas=None,
        runs=fig4_params["runs"],
        engine=engine,
    )
    stats = result.stats()
    print()
    print(fig4.render_table([result], fig4_params["routes"], fig4_params["runs"]))

    # Give pytest-benchmark the extension arm for its own reporting.
    harness_factory = lambda: ConvergenceHarness(  # noqa: E731
        implementation, "route_reflection", "extension", fig4_routes, engine=engine
    )
    benchmark.pedantic(
        lambda: harness_factory().run(), rounds=2, iterations=1, warmup_rounds=0
    )

    # Shape: extension must not *beat* native RR by a real margin
    # (small negative medians are measurement noise around parity).
    assert stats["median"] > -25.0
    if engine == "pyext":
        # Models the paper's compiled-eBPF cost: within tens of percent
        # (paper: <20 %; FRR's conversion-heavy glue lands a bit above).
        assert stats["median"] < 60.0
    else:
        # Bytecode under the JIT translator: bounded, not a blowup.
        assert stats["median"] < 250.0


def test_extension_and_native_reflect_identically(benchmark, fig4_routes):
    """Correctness gate for the numbers above: both arms must do the
    same work (reflect every prefix)."""

    def both_arms():
        collected = {}
        for mode in ("native", "extension"):
            harness = ConvergenceHarness("frr", "route_reflection", mode, fig4_routes)
            harness.run()
            collected[mode] = harness.collector.prefixes
        return collected

    collected = benchmark.pedantic(both_arms, rounds=1, iterations=1, warmup_rounds=0)
    assert collected["native"] == collected["extension"]
    assert len(collected["native"]) == len(fig4_routes)
